"""NumPy implementations (forward + input-VJP) of the model-zoo layer ops.

The graph builders in :mod:`repro.models` record, for every node, its
``op_type`` and hyper-parameters (``meta["op_types"]`` / ``meta["op_attrs"]``).
This module turns those records into *executable* operations: a
:class:`NumericOp` bundles a batched NumPy forward function with the
vector-Jacobian product with respect to each input, which is exactly what the
execution backend needs to run both the forward pass and the gradient nodes
synthesized by :func:`repro.autodiff.make_training_graph`.

Two invariants matter for the predicted-vs-measured loop these ops close:

* **Byte-exact sizes** -- a node's output is a ``(batch, *shape)`` array of
  the builder's declared dtype, so ``value.nbytes`` equals the graph's
  declared ``memory`` and the executor's measured live bytes are directly
  comparable to the solver/simulator predictions.
* **Determinism** -- every op is a pure function of its inputs (parameters
  are fixed at binding time), so recomputing a rematerialized value yields a
  bit-identical array and plans can be checked against checkpoint-all
  execution with exact equality.

Convolutions are evaluated as ``K*K`` strided-slice contractions (no im2col
materialization); transposed convolutions reuse the convolution input-VJP as
their forward pass -- the two are exact adjoints, so gradient checks hold to
machine precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = ["NumericOp", "UnsupportedOpError", "SUPPORTED_OP_TYPES", "make_numeric_op"]

_BN_EPS = 1e-5


class UnsupportedOpError(ValueError):
    """The graph contains an op type the NumPy backend cannot execute."""


@dataclass
class NumericOp:
    """One executable operation: batched forward plus per-input VJP.

    ``forward(inputs)`` receives the parent values in ascending parent order
    (each ``(batch, *shape)``) and returns the node's output array.
    ``input_vjp(inputs, output, grad)`` returns one gradient array per input;
    ``output`` may be ``None`` when the training graph was built without
    consumer outputs (``grad_needs_consumer_output=False``), in which case
    ops that need it recompute it from ``inputs``.
    """

    op_type: str
    forward: Callable[[Sequence[np.ndarray]], np.ndarray]
    input_vjp: Callable[[Sequence[np.ndarray], Optional[np.ndarray], np.ndarray],
                        Tuple[np.ndarray, ...]]


# --------------------------------------------------------------------------- #
# Shared convolution/pooling plumbing
# --------------------------------------------------------------------------- #
def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _conv_pads(in_hw, out_hw, kernel, stride, padding) -> Tuple[int, int, int, int]:
    """Resolve (top, bottom, left, right) zero padding for a convolution."""
    h, w = in_hw
    oh, ow = out_hw
    kh, kw = kernel
    sh, sw = stride
    if padding == "same":
        th = max(0, (oh - 1) * sh + kh - h)
        tw = max(0, (ow - 1) * sw + kw - w)
        return th // 2, th - th // 2, tw // 2, tw - tw // 2
    if padding == "valid":
        return 0, 0, 0, 0
    p = int(padding)
    return p, p, p, p


def _conv2d_core(x: np.ndarray, w: np.ndarray, stride, pads, out_hw) -> np.ndarray:
    """``y[b,o] = sum_{c,i,j} w[o,c,i,j] * xpad[b,c,oh*sh+i,ow*sw+j]``."""
    co, _, kh, kw = w.shape
    oh, ow = out_hw
    sh, sw = stride
    ph0, ph1, pw0, pw1 = pads
    xp = np.pad(x, ((0, 0), (0, 0), (ph0, ph1), (pw0, pw1)))
    y = np.zeros((x.shape[0], co, oh, ow), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            xs = xp[:, :, i:i + sh * (oh - 1) + 1:sh, j:j + sw * (ow - 1) + 1:sw]
            y += np.einsum("bchw,oc->bohw", xs, w[:, :, i, j])
    return y


def _conv2d_input_vjp(g: np.ndarray, w: np.ndarray, stride, pads, in_hw) -> np.ndarray:
    """Exact adjoint of :func:`_conv2d_core` with respect to its input."""
    _, ci, kh, kw = w.shape
    oh, ow = g.shape[2], g.shape[3]
    sh, sw = stride
    ph0, ph1, pw0, pw1 = pads
    h, wd = in_hw
    gxp = np.zeros((g.shape[0], ci, h + ph0 + ph1, wd + pw0 + pw1), dtype=g.dtype)
    for i in range(kh):
        for j in range(kw):
            gxp[:, :, i:i + sh * (oh - 1) + 1:sh, j:j + sw * (ow - 1) + 1:sw] += \
                np.einsum("bohw,oc->bchw", g, w[:, :, i, j])
    return gxp[:, :, ph0:ph0 + h, pw0:pw0 + wd]


def _pool_layout(in_hw, out_hw, kernel, stride):
    """Right/bottom padding so that every output position has a full slice set.

    Pooling output sizes are ``max(1, dim // stride)`` (see
    ``layers.pool2d_output_shape``), so edge windows may be clamped; padding
    the input out to ``(oh - 1) * sh + kh`` makes the strided-slice stack
    rectangular, with the pad value chosen per op (``-inf`` for max, ``0``
    for average).
    """
    h, w = in_hw
    oh, ow = out_hw
    kh, kw = kernel
    sh, sw = stride
    return max(0, (oh - 1) * sh + kh - h), max(0, (ow - 1) * sw + kw - w)


def _pool_stack(xp: np.ndarray, kernel, stride, out_hw) -> np.ndarray:
    kh, kw = kernel
    sh, sw = stride
    oh, ow = out_hw
    slices = [xp[:, :, i:i + sh * (oh - 1) + 1:sh, j:j + sw * (ow - 1) + 1:sw]
              for i in range(kh) for j in range(kw)]
    return np.stack(slices, axis=0)  # (kh*kw, B, C, oh, ow)


def _pool_scatter(shape, kernel, stride, out_hw, contributions) -> np.ndarray:
    """Accumulate per-slice gradient contributions back onto the padded input."""
    kh, kw = kernel
    sh, sw = stride
    oh, ow = out_hw
    gxp = np.zeros(shape, dtype=contributions.dtype)
    idx = 0
    for i in range(kh):
        for j in range(kw):
            gxp[:, :, i:i + sh * (oh - 1) + 1:sh, j:j + sw * (ow - 1) + 1:sw] += \
                contributions[idx]
            idx += 1
    return gxp


# --------------------------------------------------------------------------- #
# Op constructors (one per builder op_type)
# --------------------------------------------------------------------------- #
def _weight(rng: np.random.Generator, shape, fan_in: int, dtype) -> np.ndarray:
    return (rng.standard_normal(shape) / np.sqrt(max(1, fan_in))).astype(dtype)


def _make_conv2d(rng, in_shapes, out_shape, attrs, dtype) -> NumericOp:
    ci, h, w0 = in_shapes[0]
    co, oh, ow = out_shape
    kernel = _pair(attrs.get("kernel", 3))
    stride = _pair(attrs.get("stride", 1))
    padding = attrs.get("padding", "same")
    pads = _conv_pads((h, w0), (oh, ow), kernel, stride, padding)
    w = _weight(rng, (co, ci) + kernel, ci * kernel[0] * kernel[1], dtype)
    b = (0.1 * rng.standard_normal(co)).astype(dtype) if attrs.get("bias", True) else None

    def forward(inputs):
        y = _conv2d_core(inputs[0], w, stride, pads, (oh, ow))
        if b is not None:
            y += b[None, :, None, None]
        return y

    def input_vjp(inputs, output, grad):
        return (_conv2d_input_vjp(grad, w, stride, pads, (h, w0)),)

    return NumericOp("conv2d", forward, input_vjp)


def _make_depthwise_conv2d(rng, in_shapes, out_shape, attrs, dtype) -> NumericOp:
    c, h, w0 = in_shapes[0]
    _, oh, ow = out_shape
    kernel = _pair(attrs.get("kernel", 3))
    stride = _pair(attrs.get("stride", 1))
    pads = _conv_pads((h, w0), (oh, ow), kernel, stride, attrs.get("padding", "same"))
    kh, kw = kernel
    sh, sw = stride
    w = _weight(rng, (c, kh, kw), kh * kw, dtype)
    b = (0.1 * rng.standard_normal(c)).astype(dtype) if attrs.get("bias", True) else None

    def forward(inputs):
        xp = np.pad(inputs[0], ((0, 0), (0, 0), (pads[0], pads[1]), (pads[2], pads[3])))
        y = np.zeros((inputs[0].shape[0], c, oh, ow), dtype=dtype)
        for i in range(kh):
            for j in range(kw):
                xs = xp[:, :, i:i + sh * (oh - 1) + 1:sh, j:j + sw * (ow - 1) + 1:sw]
                y += xs * w[None, :, i, j, None, None]
        if b is not None:
            y += b[None, :, None, None]
        return y

    def input_vjp(inputs, output, grad):
        gxp = np.zeros((grad.shape[0], c, h + pads[0] + pads[1], w0 + pads[2] + pads[3]),
                       dtype=dtype)
        for i in range(kh):
            for j in range(kw):
                gxp[:, :, i:i + sh * (oh - 1) + 1:sh, j:j + sw * (ow - 1) + 1:sw] += \
                    grad * w[None, :, i, j, None, None]
        return (gxp[:, :, pads[0]:pads[0] + h, pads[2]:pads[2] + w0],)

    return NumericOp("depthwise_conv2d", forward, input_vjp)


def _make_conv_transpose2d(rng, in_shapes, out_shape, attrs, dtype) -> NumericOp:
    ci, h, w0 = in_shapes[0]
    co, oh, ow = out_shape
    kernel = _pair(attrs.get("kernel", 2))
    stride = _pair(attrs.get("stride", 2))
    # A transposed convolution is the adjoint of a strided "same" convolution
    # mapping (co, oh, ow) -> (ci, h, w); implement forward/VJP by swapping
    # the convolution core and its input-VJP, which keeps them exact adjoints.
    pads = _conv_pads((oh, ow), (h, w0), kernel, stride, "same")
    w = _weight(rng, (ci, co) + kernel, ci * kernel[0] * kernel[1], dtype)
    b = (0.1 * rng.standard_normal(co)).astype(dtype) if attrs.get("bias", True) else None

    def forward(inputs):
        y = _conv2d_input_vjp(inputs[0], w, stride, pads, (oh, ow))
        if b is not None:
            y += b[None, :, None, None]
        return y

    def input_vjp(inputs, output, grad):
        return (_conv2d_core(grad, w, stride, pads, (h, w0)),)

    return NumericOp("conv_transpose2d", forward, input_vjp)


def _make_maxpool2d(rng, in_shapes, out_shape, attrs, dtype) -> NumericOp:
    c, h, w0 = in_shapes[0]
    _, oh, ow = out_shape
    kernel = _pair(attrs.get("kernel", 2))
    stride = _pair(attrs.get("stride", attrs.get("kernel", 2)))
    pad_h, pad_w = _pool_layout((h, w0), (oh, ow), kernel, stride)

    def _padded(x):
        return np.pad(x, ((0, 0), (0, 0), (0, pad_h), (0, pad_w)),
                      constant_values=-np.inf)

    def forward(inputs):
        stack = _pool_stack(_padded(inputs[0]), kernel, stride, (oh, ow))
        return np.ascontiguousarray(stack.max(axis=0))

    def input_vjp(inputs, output, grad):
        stack = _pool_stack(_padded(inputs[0]), kernel, stride, (oh, ow))
        winner = stack.argmax(axis=0)  # deterministic: first maximum wins
        k2 = kernel[0] * kernel[1]
        contributions = np.where(winner[None] == np.arange(k2)[:, None, None, None, None],
                                 grad[None], np.zeros((), dtype=dtype))
        gxp = _pool_scatter((grad.shape[0], c, h + pad_h, w0 + pad_w),
                            kernel, stride, (oh, ow), contributions)
        return (gxp[:, :, :h, :w0],)

    return NumericOp("maxpool2d", forward, input_vjp)


def _make_avgpool2d(rng, in_shapes, out_shape, attrs, dtype) -> NumericOp:
    c, h, w0 = in_shapes[0]
    _, oh, ow = out_shape
    kernel = _pair(attrs.get("kernel", 2))
    stride = _pair(attrs.get("stride", attrs.get("kernel", 2)))
    pad_h, pad_w = _pool_layout((h, w0), (oh, ow), kernel, stride)
    ones = np.pad(np.ones((1, 1, h, w0), dtype=dtype),
                  ((0, 0), (0, 0), (0, pad_h), (0, pad_w)))
    counts = _pool_stack(ones, kernel, stride, (oh, ow)).sum(axis=0)  # valid elems/window

    def forward(inputs):
        xp = np.pad(inputs[0], ((0, 0), (0, 0), (0, pad_h), (0, pad_w)))
        return np.ascontiguousarray(
            _pool_stack(xp, kernel, stride, (oh, ow)).sum(axis=0) / counts)

    def input_vjp(inputs, output, grad):
        k2 = kernel[0] * kernel[1]
        contributions = np.broadcast_to((grad / counts)[None],
                                        (k2,) + grad.shape).astype(dtype)
        gxp = _pool_scatter((grad.shape[0], c, h + pad_h, w0 + pad_w),
                            kernel, stride, (oh, ow), contributions)
        return (gxp[:, :, :h, :w0],)

    return NumericOp("avgpool2d", forward, input_vjp)


def _make_global_avgpool(rng, in_shapes, out_shape, attrs, dtype) -> NumericOp:
    _, h, w0 = in_shapes[0]

    def forward(inputs):
        return inputs[0].mean(axis=(2, 3), keepdims=True)

    def input_vjp(inputs, output, grad):
        scale = np.asarray(1.0 / (h * w0), dtype=dtype)
        return (np.broadcast_to(grad * scale, inputs[0].shape).astype(dtype),)

    return NumericOp("global_avgpool", forward, input_vjp)


def _make_upsample2d(rng, in_shapes, out_shape, attrs, dtype) -> NumericOp:
    factor = int(attrs.get("factor", 2))

    def forward(inputs):
        return inputs[0].repeat(factor, axis=2).repeat(factor, axis=3)

    def input_vjp(inputs, output, grad):
        b, c, oh, ow = grad.shape
        return (grad.reshape(b, c, oh // factor, factor, ow // factor, factor)
                .sum(axis=(3, 5)),)

    return NumericOp("upsample2d", forward, input_vjp)


def _make_relu(rng, in_shapes, out_shape, attrs, dtype) -> NumericOp:
    def forward(inputs):
        return np.maximum(inputs[0], np.zeros((), dtype=dtype))

    def input_vjp(inputs, output, grad):
        out = output if output is not None else forward(inputs)
        return (np.where(out > 0, grad, np.zeros((), dtype=dtype)),)

    return NumericOp("relu", forward, input_vjp)


def _make_batchnorm(rng, in_shapes, out_shape, attrs, dtype) -> NumericOp:
    channels = int(in_shapes[0][0])
    gamma = (1.0 + 0.1 * rng.standard_normal(channels)).astype(dtype)
    beta = (0.1 * rng.standard_normal(channels)).astype(dtype)

    def _reshape(v, ndim):
        return v.reshape((1, channels) + (1,) * (ndim - 2))

    def _stats(x):
        axes = (0,) + tuple(range(2, x.ndim))
        mu = x.mean(axis=axes, keepdims=True)
        var = x.var(axis=axes, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + np.asarray(_BN_EPS, dtype=dtype))
        return axes, (x - mu) * inv_std, inv_std

    def forward(inputs):
        x = inputs[0]
        _, xhat, _ = _stats(x)
        return (_reshape(gamma, x.ndim) * xhat + _reshape(beta, x.ndim)).astype(dtype)

    def input_vjp(inputs, output, grad):
        x = inputs[0]
        axes, xhat, inv_std = _stats(x)
        dxhat = grad * _reshape(gamma, x.ndim)
        dx = (dxhat - dxhat.mean(axis=axes, keepdims=True)
              - xhat * (dxhat * xhat).mean(axis=axes, keepdims=True)) * inv_std
        return (dx.astype(dtype),)

    return NumericOp("batchnorm", forward, input_vjp)


def _make_add(rng, in_shapes, out_shape, attrs, dtype) -> NumericOp:
    def forward(inputs):
        total = inputs[0].copy()
        for x in inputs[1:]:
            total += x
        return total

    def input_vjp(inputs, output, grad):
        return tuple(grad.copy() for _ in inputs)

    return NumericOp("add", forward, input_vjp)


def _make_concat(rng, in_shapes, out_shape, attrs, dtype) -> NumericOp:
    channel_counts = [int(s[0]) for s in in_shapes]
    boundaries = np.cumsum([0] + channel_counts)

    def forward(inputs):
        return np.concatenate(inputs, axis=1)

    def input_vjp(inputs, output, grad):
        return tuple(np.ascontiguousarray(grad[:, boundaries[i]:boundaries[i + 1]])
                     for i in range(len(inputs)))

    return NumericOp("concat", forward, input_vjp)


def _make_identity(rng, in_shapes, out_shape, attrs, dtype) -> NumericOp:
    def forward(inputs):
        return inputs[0]

    def input_vjp(inputs, output, grad):
        return (grad,)

    return NumericOp("identity", forward, input_vjp)


def _make_flatten(rng, in_shapes, out_shape, attrs, dtype) -> NumericOp:
    def forward(inputs):
        return np.ascontiguousarray(inputs[0]).reshape(inputs[0].shape[0], -1)

    def input_vjp(inputs, output, grad):
        return (grad.reshape(inputs[0].shape),)

    return NumericOp("flatten", forward, input_vjp)


def _make_dense(rng, in_shapes, out_shape, attrs, dtype) -> NumericOp:
    in_features = int(np.prod(in_shapes[0]))
    out_features = int(out_shape[0])
    w = _weight(rng, (out_features, in_features), in_features, dtype)
    b = (0.1 * rng.standard_normal(out_features)).astype(dtype) \
        if attrs.get("bias", True) else None

    def forward(inputs):
        flat = np.ascontiguousarray(inputs[0]).reshape(inputs[0].shape[0], -1)
        y = flat @ w.T
        if b is not None:
            y += b[None, :]
        return y

    def input_vjp(inputs, output, grad):
        return ((grad @ w).reshape(inputs[0].shape),)

    return NumericOp("dense", forward, input_vjp)


def _make_softmax_loss(rng, in_shapes, out_shape, attrs, dtype, batch_size) -> NumericOp:
    num_classes = int(np.prod(in_shapes[0]))
    labels = rng.integers(0, num_classes, size=batch_size)

    def _shifted(x):
        z = np.ascontiguousarray(x).reshape(x.shape[0], -1)
        return z - z.max(axis=1, keepdims=True)

    def _probs(x):
        e = np.exp(_shifted(x))
        return e / e.sum(axis=1, keepdims=True)

    def forward(inputs):
        # Stable log-softmax cross-entropy: never -log(0), even when the
        # winning logit dominates by hundreds (deep unnormalized nets).
        zs = _shifted(inputs[0])
        rows = np.arange(zs.shape[0])
        lse = np.log(np.exp(zs).sum(axis=1))
        return (lse - zs[rows, labels[:zs.shape[0]]]).reshape(-1, 1).astype(dtype)

    def input_vjp(inputs, output, grad):
        p = _probs(inputs[0])
        rows = np.arange(p.shape[0])
        gz = p * grad  # grad has shape (batch, 1); broadcasts over classes
        gz[rows, labels[:p.shape[0]]] -= grad[:, 0]
        return (gz.reshape(inputs[0].shape).astype(dtype),)

    return NumericOp("softmax_loss", forward, input_vjp)


_MAKERS: Dict[str, Callable[..., NumericOp]] = {
    "conv2d": _make_conv2d,
    "depthwise_conv2d": _make_depthwise_conv2d,
    "conv_transpose2d": _make_conv_transpose2d,
    "maxpool2d": _make_maxpool2d,
    "avgpool2d": _make_avgpool2d,
    "global_avgpool": _make_global_avgpool,
    "upsample2d": _make_upsample2d,
    "relu": _make_relu,
    "batchnorm": _make_batchnorm,
    "add": _make_add,
    "concat": _make_concat,
    "flatten": _make_flatten,
    "identity": _make_identity,
    "dense": _make_dense,
    "softmax_loss": _make_softmax_loss,
}

SUPPORTED_OP_TYPES = frozenset(_MAKERS)


def make_numeric_op(op_type: str, *, rng: np.random.Generator,
                    in_shapes: Sequence[Tuple[int, ...]],
                    out_shape: Tuple[int, ...],
                    attrs: Optional[dict] = None,
                    batch_size: int,
                    dtype: np.dtype) -> NumericOp:
    """Instantiate one executable op (parameters drawn from ``rng``).

    ``in_shapes``/``out_shape`` are *per-example* shapes as recorded by the
    graph builder; all runtime arrays carry a leading batch dimension.
    Raises :class:`UnsupportedOpError` for op types without a NumPy kernel.
    """
    if op_type not in _MAKERS:
        raise UnsupportedOpError(
            f"op type {op_type!r} has no NumPy implementation; "
            f"supported: {sorted(_MAKERS)}")
    in_shapes = [tuple(int(d) for d in s) for s in in_shapes]
    out_shape = tuple(int(d) for d in out_shape)
    attrs = dict(attrs or {})
    dtype = np.dtype(dtype)
    if op_type == "softmax_loss":
        return _make_softmax_loss(rng, in_shapes, out_shape, attrs, dtype, batch_size)
    return _MAKERS[op_type](rng, in_shapes, out_shape, attrs, dtype)
