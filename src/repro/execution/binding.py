"""Bind NumPy forward *and* backward functions to model-zoo graphs.

The toy builders in :mod:`repro.execution.ops` construct their graphs and
functions together.  Real workloads arrive the other way around: the model
zoo (:mod:`repro.models`) emits a :class:`~repro.core.dfgraph.DFGraph` whose
``meta`` records each layer's op type, hyper-parameters and shapes, and
:func:`repro.autodiff.make_training_graph` appends gradient nodes on top.
:func:`bind_numeric_graph` closes the loop by attaching an executable
function to every node of either graph:

* **forward nodes** get the :mod:`repro.execution.numeric_ops` kernel for
  their recorded op type, with deterministic seeded parameters;
* **gradient nodes** get the chain rule: ``g_i`` sums, over every forward
  consumer ``j`` of ``i``, the vector-Jacobian product of ``j`` evaluated at
  the saved activations the training graph declares as dependencies.  The
  dependency structure synthesized by ``make_training_graph`` guarantees all
  of those values (the consumer's inputs, optionally its output, and its
  incoming gradient) are live whenever ``g_i`` runs, so a rematerialization
  plan for the training graph is executable exactly as scheduled.

Outputs are ``(batch, *shape)`` arrays whose ``nbytes`` equal the graph's
declared per-node ``memory``, which is what makes the executor's *measured*
peak directly comparable to the solver's and simulator's *predicted* peaks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.dfgraph import DFGraph
from .numeric_ops import NumericOp, SUPPORTED_OP_TYPES, UnsupportedOpError, make_numeric_op
from .ops import NodeFunction, NumericGraph

__all__ = ["bind_numeric_graph", "bindable_op_types", "unsupported_op_types"]

_DTYPES = {2: np.float16, 4: np.float32, 8: np.float64}


def _layer_meta(graph: DFGraph):
    meta = graph.meta
    for key in ("op_types", "shapes", "batch_size", "dtype_bytes", "input_shape"):
        if key not in meta:
            raise UnsupportedOpError(
                f"graph {graph.name!r} carries no builder metadata ({key!r} missing); "
                "only graphs produced by repro.models builders (optionally passed "
                "through make_training_graph) can be bound to NumPy functions")
    op_types = list(meta["op_types"])
    op_attrs = list(meta.get("op_attrs", [{}] * len(op_types)))
    shapes = [tuple(int(d) for d in s) for s in meta["shapes"]]
    input_shape = tuple(int(d) for d in meta["input_shape"])
    batch_size = int(meta["batch_size"])
    dtype_bytes = int(meta["dtype_bytes"])
    if dtype_bytes not in _DTYPES:
        raise UnsupportedOpError(f"no NumPy dtype for dtype_bytes={dtype_bytes}")
    return op_types, op_attrs, shapes, input_shape, batch_size, np.dtype(_DTYPES[dtype_bytes])


def _layer_of(graph: DFGraph, node: int, num_layers: int) -> int:
    layer = graph.nodes[node].layer_id
    layer = node if layer is None else int(layer)
    if not (0 <= layer < num_layers):
        raise UnsupportedOpError(
            f"node {node} of {graph.name!r} maps to layer {layer}, but the builder "
            f"metadata only describes {num_layers} layers")
    return layer


def unsupported_op_types(graph: DFGraph) -> List[str]:
    """Op types of ``graph`` (forward part) without a NumPy kernel, sorted."""
    op_types = graph.meta.get("op_types")
    if op_types is None:
        return ["<no builder metadata>"]
    return sorted(set(op_types) - SUPPORTED_OP_TYPES)


def bindable_op_types() -> List[str]:
    """The op types the NumPy execution backend implements."""
    return sorted(SUPPORTED_OP_TYPES)


def bind_numeric_graph(graph: DFGraph, *, seed: int = 0) -> NumericGraph:
    """Attach an executable NumPy function to every node of ``graph``.

    ``graph`` is either a forward graph from a :class:`repro.models` builder
    or the training graph ``make_training_graph`` derives from one (detected
    via ``meta["n_forward"]``).  Parameters, the network input and the loss
    labels are drawn deterministically from ``seed``, so two binds of equal
    graphs produce bit-identical executions.

    Raises :class:`~repro.execution.numeric_ops.UnsupportedOpError` when the
    graph lacks builder metadata or uses an op without a NumPy kernel.
    """
    op_types, op_attrs, shapes, input_shape, batch, dtype = _layer_meta(graph)
    n_forward = int(graph.meta.get("n_forward", graph.size))
    rng = np.random.default_rng(seed)
    x0 = rng.standard_normal((batch,) + input_shape).astype(dtype)

    # --- forward nodes: one numeric op each, parameters in node order ----- #
    ops: Dict[int, NumericOp] = {}
    functions: Dict[int, NodeFunction] = {}
    fwd_shape: Dict[int, Tuple[int, ...]] = {}
    for node in range(n_forward):
        layer = _layer_of(graph, node, len(op_types))
        parents = graph.predecessors(node)
        in_shapes = ([shapes[_layer_of(graph, p, len(op_types))] for p in parents]
                     if parents else [input_shape])
        op = make_numeric_op(op_types[layer], rng=rng, in_shapes=in_shapes,
                             out_shape=shapes[layer], attrs=op_attrs[layer],
                             batch_size=batch, dtype=dtype)
        ops[node] = op
        fwd_shape[node] = (batch,) + shapes[layer]
        if parents:
            functions[node] = op.forward
        else:
            functions[node] = (lambda inputs, _op=op: _op.forward([x0]))

    if n_forward == graph.size:
        return NumericGraph(graph=graph, functions=functions)

    # --- gradient nodes: chain rule over the recorded dependency structure - #
    grad_index = graph.meta.get("grad_index")
    if not isinstance(grad_index, dict):
        raise UnsupportedOpError(
            f"graph {graph.name!r} has backward nodes but no meta['grad_index']")
    grad_of = {int(k): int(v) for k, v in grad_index.items()}
    loss_node = n_forward - 1

    for fwd in range(n_forward - 1, -1, -1):
        gid = grad_of[fwd]
        deps = graph.predecessors(gid)
        pos = {p: idx for idx, p in enumerate(deps)}
        users = [j for j in range(n_forward) if fwd in graph.predecessors(j)]

        if fwd == loss_node:
            # Seed of backpropagation: d(mean per-example loss)/d(loss vector).
            seed_value = np.full(fwd_shape[fwd], 1.0 / batch, dtype=dtype)
            functions[gid] = (lambda inputs, _v=seed_value: _v.copy())
        elif not users:
            # A forward value nothing consumes: its true gradient is zero.
            shape = fwd_shape[fwd]
            functions[gid] = (lambda inputs, _s=shape, _d=dtype: np.zeros(_s, dtype=_d))
        else:
            functions[gid] = _make_grad_fn(graph, fwd, users, pos, grad_of, ops, x0)
    return NumericGraph(graph=graph, functions=functions)


def _make_grad_fn(graph: DFGraph, fwd: int, users: Sequence[int],
                  pos: Dict[int, int], grad_of: Dict[int, int],
                  ops: Dict[int, NumericOp], x0: np.ndarray) -> NodeFunction:
    """Build ``g_fwd = sum_j VJP_j(saved activations, g_j)[input index of fwd]``."""
    plans = []
    for j in users:
        j_parents = graph.predecessors(j)
        input_positions = [pos[p] for p in j_parents]  # guaranteed by autodiff deps
        output_position = pos.get(j)  # None without grad_needs_consumer_output
        grad_position = pos[grad_of[j]]
        plans.append((ops[j], input_positions, j_parents.index(fwd),
                      output_position, grad_position))

    def grad_fn(inputs: Sequence[np.ndarray]) -> np.ndarray:
        total: Optional[np.ndarray] = None
        for op, input_positions, arg_index, output_position, grad_position in plans:
            op_inputs = [inputs[p] for p in input_positions] or [x0]
            output = inputs[output_position] if output_position is not None else None
            contribution = op.input_vjp(op_inputs, output,
                                        inputs[grad_position])[arg_index]
            total = contribution if total is None else total + contribution
        assert total is not None
        return total

    return grad_fn
