"""Interpretation of execution plans over NumPy tensors.

:func:`execute_plan` is the reproduction's stand-in for running the rewritten
static TensorFlow graph: it walks a plan's statements, invoking each node's
bound function when a ``compute`` statement is reached and discarding values on
``deallocate``.  It tracks the *actual* number of live tensor bytes so tests
can assert that a rematerialized plan really does run in less memory, and that
its outputs are numerically identical to checkpoint-all execution.

The executor implements the register-reuse contract documented in
:mod:`repro.core.plan`: a register holds at most one value, computing into a
register *replaces* its previous value (releasing those bytes), a node's
value is resident iff at least one register currently holds it, and the
executor raises :class:`~repro.core.simulator.PlanSimulationError` on exactly
the violations :func:`~repro.core.simulator.simulate_plan` rejects (compute
into a dead or foreign register, compute with a non-resident parent,
re-allocating a live register id, deallocating a dead register).  The one
accounting difference from the simulator is the *charge point*: the simulator
charges a register's bytes at ``allocate``, the executor at ``compute`` (when
the tensor materializes).  Plans lowered by Algorithm 1 allocate immediately
before the first compute of a register, so both report the same peak.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..core.plan import AllocateRegister, ComputeNode, DeallocateRegister, ExecutionPlan
from ..core.simulator import PlanSimulationError
from .ops import NumericGraph

__all__ = ["ExecutionResult", "execute_plan", "execute_checkpoint_all"]


@dataclass
class ExecutionResult:
    """Outcome of interpreting a plan (or reference execution) over NumPy tensors.

    Attributes
    ----------
    outputs:
        Mapping from node id to the *last* value computed for that node during
        execution (rematerialized nodes are recomputed; determinism makes every
        recomputation identical).
    peak_live_bytes:
        High-water mark of the summed ``nbytes`` of live tensors.
    num_compute:
        Total number of node evaluations performed.
    """

    outputs: Dict[int, np.ndarray]
    peak_live_bytes: int
    num_compute: int
    compute_counts: Dict[int, int] = field(default_factory=dict)

    def output_of(self, node_id: int) -> np.ndarray:
        return self.outputs[node_id]


def execute_plan(numeric: NumericGraph, plan: ExecutionPlan,
                 *, record_outputs: Optional[Sequence[int]] = None) -> ExecutionResult:
    """Interpret ``plan`` over the numeric graph's node functions.

    Parameters
    ----------
    record_outputs:
        Node ids whose (final) values should be retained in the result even if
        the plan deallocates them; defaults to every node.

    Raises
    ------
    PlanSimulationError
        On the same violations :func:`~repro.core.simulator.simulate_plan`
        rejects: compute into a dead register or one allocated for another
        node, compute while a parent's value is not resident, re-allocating a
        live register id, or deallocating a dead register.
    """
    graph = numeric.graph
    wanted = set(record_outputs) if record_outputs is not None else set(range(graph.size))

    register_values: Dict[int, np.ndarray] = {}   # registers holding a value
    register_nodes: Dict[int, int] = {}           # live (allocated) registers
    node_registers: Dict[int, list] = {}          # node -> registers holding its value
    recorded: Dict[int, np.ndarray] = {}
    counts: Dict[int, int] = {}

    live_bytes = 0
    peak = 0
    num_compute = 0

    for idx, stmt in enumerate(plan.statements):
        if isinstance(stmt, AllocateRegister):
            if stmt.register in register_nodes:
                raise PlanSimulationError(
                    f"statement {idx}: register %{stmt.register} already live")
            register_nodes[stmt.register] = stmt.node_id
        elif isinstance(stmt, ComputeNode):
            node = stmt.node_id
            if stmt.register not in register_nodes:
                raise PlanSimulationError(
                    f"statement {idx}: compute v{node} into dead register %{stmt.register}")
            if register_nodes[stmt.register] != node:
                raise PlanSimulationError(
                    f"statement {idx}: register %{stmt.register} allocated for node "
                    f"{register_nodes[stmt.register]} but computed with node {node}")
            parent_values = []
            for p in graph.predecessors(node):
                holders = node_registers.get(p)
                if not holders:
                    raise PlanSimulationError(
                        f"statement {idx}: compute v{node} but parent v{p} is not resident")
                parent_values.append(register_values[holders[-1]])
            value = np.asarray(numeric.functions[node](parent_values))
            previous = register_values.get(stmt.register)
            if previous is not None:
                # Recompute into a still-live register: the new value replaces
                # the old one, so the old bytes are released -- they must not
                # stay counted (this was the double-count bug).
                live_bytes -= previous.nbytes
            else:
                node_registers.setdefault(node, []).append(stmt.register)
            register_values[stmt.register] = value
            live_bytes += value.nbytes
            peak = max(peak, live_bytes)
            num_compute += 1
            counts[node] = counts.get(node, 0) + 1
            if node in wanted:
                recorded[node] = value
        elif isinstance(stmt, DeallocateRegister):
            if stmt.register not in register_nodes:
                raise PlanSimulationError(
                    f"statement {idx}: deallocate of dead register %{stmt.register}")
            node = register_nodes.pop(stmt.register)
            value = register_values.pop(stmt.register, None)
            if value is not None:
                live_bytes -= value.nbytes
                holders = node_registers[node]
                holders.remove(stmt.register)
                if not holders:
                    del node_registers[node]
        else:  # pragma: no cover - defensive
            raise PlanSimulationError(f"unknown statement {stmt!r}")

    return ExecutionResult(outputs=recorded, peak_live_bytes=int(peak),
                           num_compute=num_compute, compute_counts=counts)


def execute_checkpoint_all(numeric: NumericGraph) -> ExecutionResult:
    """Reference execution: evaluate every node once in topological order, keep everything."""
    graph = numeric.graph
    values: Dict[int, np.ndarray] = {}
    live_bytes = 0
    peak = 0
    for node in range(graph.size):
        parent_values = [values[p] for p in graph.predecessors(node)]
        value = np.asarray(numeric.functions[node](parent_values))
        values[node] = value
        live_bytes += value.nbytes
        peak = max(peak, live_bytes)
    return ExecutionResult(outputs=values, peak_live_bytes=int(peak),
                           num_compute=graph.size,
                           compute_counts={i: 1 for i in range(graph.size)})
