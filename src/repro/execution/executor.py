"""Interpretation of execution plans over NumPy tensors.

:func:`execute_plan` is the reproduction's stand-in for running the rewritten
static TensorFlow graph: it walks a plan's statements, invoking each node's
bound function when a ``compute`` statement is reached and discarding values on
``deallocate``.  It tracks the *actual* number of live tensor bytes so tests
can assert that a rematerialized plan really does run in less memory, and that
its outputs are numerically identical to checkpoint-all execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..core.plan import AllocateRegister, ComputeNode, DeallocateRegister, ExecutionPlan
from ..core.simulator import PlanSimulationError
from .ops import NumericGraph

__all__ = ["ExecutionResult", "execute_plan", "execute_checkpoint_all"]


@dataclass
class ExecutionResult:
    """Outcome of interpreting a plan (or reference execution) over NumPy tensors.

    Attributes
    ----------
    outputs:
        Mapping from node id to the *last* value computed for that node during
        execution (rematerialized nodes are recomputed; determinism makes every
        recomputation identical).
    peak_live_bytes:
        High-water mark of the summed ``nbytes`` of live tensors.
    num_compute:
        Total number of node evaluations performed.
    """

    outputs: Dict[int, np.ndarray]
    peak_live_bytes: int
    num_compute: int
    compute_counts: Dict[int, int] = field(default_factory=dict)

    def output_of(self, node_id: int) -> np.ndarray:
        return self.outputs[node_id]


def execute_plan(numeric: NumericGraph, plan: ExecutionPlan,
                 *, record_outputs: Optional[Sequence[int]] = None) -> ExecutionResult:
    """Interpret ``plan`` over the numeric graph's node functions.

    Parameters
    ----------
    record_outputs:
        Node ids whose (final) values should be retained in the result even if
        the plan deallocates them; defaults to every node.

    Raises
    ------
    PlanSimulationError
        If a compute statement runs while one of its parents' values is not
        live -- the numeric equivalent of a dependency violation.
    """
    graph = numeric.graph
    wanted = set(record_outputs) if record_outputs is not None else set(range(graph.size))

    register_values: Dict[int, np.ndarray] = {}
    register_nodes: Dict[int, int] = {}
    live_node_values: Dict[int, np.ndarray] = {}
    recorded: Dict[int, np.ndarray] = {}
    counts: Dict[int, int] = {}

    live_bytes = 0
    peak = 0
    num_compute = 0

    for idx, stmt in enumerate(plan.statements):
        if isinstance(stmt, AllocateRegister):
            register_nodes[stmt.register] = stmt.node_id
        elif isinstance(stmt, ComputeNode):
            node = stmt.node_id
            parent_values = []
            for p in graph.predecessors(node):
                if p not in live_node_values:
                    raise PlanSimulationError(
                        f"statement {idx}: node {node} computed but parent {p} has no live value"
                    )
                parent_values.append(live_node_values[p])
            value = np.asarray(numeric.functions[node](parent_values))
            register_values[stmt.register] = value
            live_node_values[node] = value
            live_bytes += value.nbytes
            peak = max(peak, live_bytes)
            num_compute += 1
            counts[node] = counts.get(node, 0) + 1
            if node in wanted:
                recorded[node] = value
        elif isinstance(stmt, DeallocateRegister):
            node = register_nodes.pop(stmt.register, None)
            value = register_values.pop(stmt.register, None)
            if value is not None:
                live_bytes -= value.nbytes
            if node is not None and node in live_node_values:
                # Only drop the node's live value if this register held it.
                if value is live_node_values.get(node):
                    del live_node_values[node]
        else:  # pragma: no cover - defensive
            raise PlanSimulationError(f"unknown statement {stmt!r}")

    return ExecutionResult(outputs=recorded, peak_live_bytes=int(peak),
                           num_compute=num_compute, compute_counts=counts)


def execute_checkpoint_all(numeric: NumericGraph) -> ExecutionResult:
    """Reference execution: evaluate every node once in topological order, keep everything."""
    graph = numeric.graph
    values: Dict[int, np.ndarray] = {}
    live_bytes = 0
    peak = 0
    for node in range(graph.size):
        parent_values = [values[p] for p in graph.predecessors(node)]
        value = np.asarray(numeric.functions[node](parent_values))
        values[node] = value
        live_bytes += value.nbytes
        peak = max(peak, live_bytes)
    return ExecutionResult(outputs=values, peak_live_bytes=int(peak),
                           num_compute=graph.size,
                           compute_counts={i: 1 for i in range(graph.size)})
