"""NumPy execution backend: interpret execution plans over real tensors.

The original Checkmate encodes execution plans back into static TensorFlow
graphs.  This package plays that role with NumPy: each graph node is bound to
a concrete tensor function, and :func:`execute_plan` interprets an
``allocate`` / ``compute`` / ``deallocate`` plan over those functions.  Its
main purpose in the reproduction is *verification* -- demonstrating that a
rematerialized schedule computes bit-identical results to the checkpoint-all
schedule while holding fewer tensors live.

Graphs become executable two ways:

* the toy builders :func:`make_numeric_chain` / :func:`make_numeric_dag`
  construct graph and functions together, and
* :func:`bind_numeric_graph` attaches NumPy forward functions -- and, for
  training graphs from :func:`repro.autodiff.make_training_graph`, backward
  (VJP chain-rule) functions -- to any model-zoo graph, so every registered
  preset can be lowered and run over real tensors.

:func:`build_execution_report` closes the paper's predicted-vs-measured loop:
it executes a solved schedule and cross-checks measured peak live bytes and
recompute counts against the simulator's predictions and the outputs against
checkpoint-all execution.
"""

from .binding import bind_numeric_graph, bindable_op_types, unsupported_op_types
from .executor import ExecutionResult, execute_checkpoint_all, execute_plan
from .numeric_ops import NumericOp, SUPPORTED_OP_TYPES, UnsupportedOpError, make_numeric_op
from .ops import NumericGraph, make_numeric_chain, make_numeric_dag
from .report import ExecutionReport, build_execution_report

__all__ = [
    "ExecutionResult",
    "ExecutionReport",
    "build_execution_report",
    "execute_checkpoint_all",
    "execute_plan",
    "bind_numeric_graph",
    "bindable_op_types",
    "unsupported_op_types",
    "NumericOp",
    "NumericGraph",
    "SUPPORTED_OP_TYPES",
    "UnsupportedOpError",
    "make_numeric_op",
    "make_numeric_chain",
    "make_numeric_dag",
]
