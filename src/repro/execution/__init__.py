"""NumPy execution backend: interpret execution plans over real tensors.

The original Checkmate encodes execution plans back into static TensorFlow
graphs.  This package plays that role with NumPy: each graph node is bound to
a concrete tensor function, and :func:`execute_plan` interprets an
``allocate`` / ``compute`` / ``deallocate`` plan over those functions.  Its
main purpose in the reproduction is *verification* -- demonstrating that a
rematerialized schedule computes bit-identical results to the checkpoint-all
schedule while holding fewer tensors live.
"""

from .executor import ExecutionResult, execute_checkpoint_all, execute_plan
from .ops import NumericGraph, make_numeric_chain, make_numeric_dag

__all__ = [
    "ExecutionResult",
    "execute_checkpoint_all",
    "execute_plan",
    "NumericGraph",
    "make_numeric_chain",
    "make_numeric_dag",
]
