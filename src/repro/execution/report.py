"""Predicted-vs-measured cross-check of an executed schedule.

The paper's validation loop solves for an ``(R, S)`` schedule under a memory
budget, lowers it, runs it, and checks that the run really stayed under the
budget while computing the same numbers.  :func:`build_execution_report`
performs that loop's verification half for one
:class:`~repro.core.schedule.ScheduledResult`:

* **memory** -- the executor's measured peak live bytes (plus the graph's
  constant input/parameter overhead) is compared against the plan replay of
  :func:`~repro.core.simulator.simulate_plan` and the schedule-level
  ``U``-recurrence prediction the solver reported;
* **compute** -- measured per-node (re)compute counts are compared against
  the plan's statement counts;
* **numerics** -- every recorded output is compared bit-for-bit against
  checkpoint-all execution of the same bound functions, and tensor sizes are
  checked against the graph's declared per-node memory.

``ExecutionReport.ok`` is the single verdict CI smoke jobs assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..core.schedule import ScheduledResult
from ..core.scheduler import generate_execution_plan
from ..core.simulator import simulate_plan
from .executor import ExecutionResult, execute_checkpoint_all, execute_plan
from .ops import NumericGraph

__all__ = ["ExecutionReport", "build_execution_report"]


@dataclass
class ExecutionReport:
    """Outcome of executing a solved schedule over NumPy tensors.

    ``measured_peak_bytes`` includes the graph's constant overhead (inputs
    plus parameters, paper Eq. 2) so it is directly comparable to the solver
    budget and to the simulator predictions, which account the same way.
    """

    strategy: str
    graph_name: str
    num_nodes: int
    budget: Optional[int]
    feasible: bool
    executed: bool
    solver_status: str
    constant_overhead: int
    # Predictions.
    predicted_schedule_peak: int = 0   # solver's U-recurrence peak for (R, S)
    predicted_plan_peak: int = 0       # simulate_plan replay of the lowered plan
    planned_num_compute: int = 0
    # Measurements.
    measured_peak_bytes: int = 0
    measured_num_compute: int = 0
    checkpoint_all_peak_bytes: int = 0
    # Cross-check verdicts.
    peak_matches_plan: bool = False
    peak_within_schedule: bool = False
    plan_matches_schedule: bool = False
    recompute_matches_plan: bool = False
    outputs_match: bool = False
    within_budget: Optional[bool] = None
    max_abs_error: float = float("inf")
    size_mismatched_nodes: List[int] = field(default_factory=list)
    compared_outputs: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """All cross-checks passed (and the budget, when one was given)."""
        return (self.executed and self.peak_matches_plan
                and self.peak_within_schedule and self.plan_matches_schedule
                and self.recompute_matches_plan and self.outputs_match
                and not self.size_mismatched_nodes
                and self.within_budget is not False)

    @property
    def memory_saving(self) -> float:
        """Measured peak as a fraction of the checkpoint-all peak (< 1 is a win)."""
        if self.checkpoint_all_peak_bytes <= 0:
            return float("nan")
        return self.measured_peak_bytes / self.checkpoint_all_peak_bytes

    def to_dict(self) -> dict:
        """JSON-safe rendering (the ``POST /v1/execute`` result payload)."""
        return {
            "strategy": self.strategy,
            "graph_name": self.graph_name,
            "num_nodes": int(self.num_nodes),
            "budget": None if self.budget is None else int(self.budget),
            "feasible": bool(self.feasible),
            "executed": bool(self.executed),
            "solver_status": self.solver_status,
            "constant_overhead": int(self.constant_overhead),
            "predicted_schedule_peak": int(self.predicted_schedule_peak),
            "predicted_plan_peak": int(self.predicted_plan_peak),
            "planned_num_compute": int(self.planned_num_compute),
            "measured_peak_bytes": int(self.measured_peak_bytes),
            "measured_num_compute": int(self.measured_num_compute),
            "checkpoint_all_peak_bytes": int(self.checkpoint_all_peak_bytes),
            "peak_matches_plan": bool(self.peak_matches_plan),
            "peak_within_schedule": bool(self.peak_within_schedule),
            "plan_matches_schedule": bool(self.plan_matches_schedule),
            "recompute_matches_plan": bool(self.recompute_matches_plan),
            "outputs_match": bool(self.outputs_match),
            "within_budget": self.within_budget,
            "max_abs_error": float(self.max_abs_error),
            "size_mismatched_nodes": [int(n) for n in self.size_mismatched_nodes],
            "compared_outputs": int(self.compared_outputs),
            "error": self.error,
            "ok": self.ok,
        }

    def summary(self) -> str:
        """One-paragraph human rendering (what ``repro execute`` prints)."""
        if not self.executed:
            return (f"{self.strategy} on {self.graph_name}: NOT EXECUTED "
                    f"({self.error or self.solver_status})")
        budget = "unbounded" if self.budget is None else f"{self.budget:,} B"
        lines = [
            f"{self.strategy} on {self.graph_name} ({self.num_nodes} nodes), "
            f"budget {budget}:",
            f"  measured peak   {self.measured_peak_bytes:,} B "
            f"(plan predicted {self.predicted_plan_peak:,} B, schedule "
            f"{self.predicted_schedule_peak:,} B, checkpoint-all "
            f"{self.checkpoint_all_peak_bytes:,} B)",
            f"  computes        {self.measured_num_compute} "
            f"(plan {self.planned_num_compute}, once-each {self.num_nodes})",
            f"  outputs         {self.compared_outputs} compared, "
            f"max |error| {self.max_abs_error:.3g}",
            f"  verdict         {'OK' if self.ok else 'MISMATCH'}"
            + ("" if self.within_budget is None
               else f" (within budget: {self.within_budget})"),
        ]
        return "\n".join(lines)


def build_execution_report(
    numeric: NumericGraph,
    result: ScheduledResult,
    *,
    record_outputs: Optional[Sequence[int]] = None,
) -> ExecutionReport:
    """Execute ``result``'s plan over ``numeric`` and cross-check everything.

    Infeasible results (or results without matrices) come back with
    ``executed=False`` and the solver status in ``error``; feasible results
    whose plan was not lowered (``generate_plan=False`` solves) are lowered
    here from the ``(R, S)`` matrices.

    ``record_outputs`` restricts which node outputs are retained and compared
    against checkpoint-all execution (default: every node the plan computes).
    """
    graph = numeric.graph
    report = ExecutionReport(
        strategy=result.strategy,
        graph_name=graph.name,
        num_nodes=graph.size,
        budget=None if result.budget is None else int(result.budget),
        feasible=result.feasible,
        executed=False,
        solver_status=result.solver_status,
        constant_overhead=graph.constant_overhead,
        predicted_schedule_peak=int(result.peak_memory),
    )
    if not result.feasible or result.matrices is None:
        report.error = f"no feasible schedule to execute ({result.solver_status})"
        return report

    plan = result.plan
    if plan is None:
        plan = generate_execution_plan(graph, result.matrices)

    trace = simulate_plan(graph, plan)
    measured = execute_plan(numeric, plan, record_outputs=record_outputs)
    reference = execute_checkpoint_all(numeric)

    report.executed = True
    report.predicted_plan_peak = int(trace.peak_memory)
    report.planned_num_compute = plan.total_computations()
    report.measured_peak_bytes = int(measured.peak_live_bytes + graph.constant_overhead)
    report.measured_num_compute = measured.num_compute
    report.checkpoint_all_peak_bytes = int(reference.peak_live_bytes
                                           + graph.constant_overhead)

    report.peak_matches_plan = report.measured_peak_bytes == report.predicted_plan_peak
    # The schedule-level U-recurrence prediction is an upper bound on the
    # lowered plan: un-hoisted plans mirror the U accounting exactly, and the
    # §4.9 deallocation code motion can only lower the high-water mark.  A
    # measured peak above it means the lowering (not just the replay) broke.
    report.peak_within_schedule = (
        report.measured_peak_bytes <= report.predicted_schedule_peak)
    # Lowering consistency: the plan must (re)compute exactly what the (R, S)
    # schedule decided -- catches plans that drifted from their matrices.
    scheduled_counts = {
        node: int(count)
        for node, count in enumerate(result.matrices.recomputation_counts())
        if count
    }
    report.plan_matches_schedule = plan.compute_counts() == scheduled_counts
    report.recompute_matches_plan = (
        measured.num_compute == report.planned_num_compute
        and measured.compute_counts == plan.compute_counts())
    report.within_budget = (None if result.budget is None
                            else report.measured_peak_bytes <= result.budget)
    report.size_mismatched_nodes = [
        node for node, value in reference.outputs.items()
        if value.nbytes != graph.memory(node)
    ]
    report.outputs_match, report.max_abs_error, report.compared_outputs = \
        _compare_outputs(measured, reference)
    return report


def _compare_outputs(measured: ExecutionResult, reference: ExecutionResult):
    """Bit-for-bit comparison of every recorded output against the reference."""
    compared = 0
    max_err = 0.0
    exact = True
    for node, value in measured.outputs.items():
        ref = reference.outputs.get(node)
        if ref is None:  # pragma: no cover - reference computes every node
            continue
        compared += 1
        if value.shape != ref.shape or value.dtype != ref.dtype:
            exact = False
            max_err = float("inf")
            continue
        if not np.array_equal(value, ref):
            # Only mismatching tensors pay for the float64 upcast + diff;
            # the expected (bit-equal) path contributes max_err = 0.
            exact = False
            diff = np.abs(np.asarray(value, dtype=np.float64)
                          - np.asarray(ref, dtype=np.float64))
            if diff.size:
                max_err = max(max_err, float(diff.max()))
    return exact and compared > 0, max_err, compared
