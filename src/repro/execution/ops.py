"""Numeric graphs: data-flow graphs whose nodes carry executable NumPy ops.

A :class:`NumericGraph` pairs a :class:`~repro.core.dfgraph.DFGraph` with a
function per node.  Builders are provided for a dense chain (mat-mul + tanh
stack) and a random skip-connected DAG; both are deterministic given a seed so
tests can compare rematerialized and checkpoint-all execution exactly.

These toy builders construct graph and functions together; real model-zoo
graphs (and the training graphs ``make_training_graph`` derives from them)
become :class:`NumericGraph` instances through
:func:`repro.execution.bind_numeric_graph`, which reconstructs each layer's
recorded op type as a NumPy kernel and synthesizes gradient-node functions
from per-op vector-Jacobian products.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..core.dfgraph import DFGraph, NodeInfo

__all__ = ["NumericGraph", "make_numeric_chain", "make_numeric_dag"]

NodeFunction = Callable[[Sequence[np.ndarray]], np.ndarray]


@dataclass
class NumericGraph:
    """A data-flow graph with an executable function bound to every node.

    ``functions[i]`` receives the values of node ``i``'s parents (in ascending
    parent order) and returns node ``i``'s output array.  Source nodes receive
    an empty sequence.
    """

    graph: DFGraph
    functions: Dict[int, NodeFunction]

    def __post_init__(self) -> None:
        missing = [i for i in range(self.graph.size) if i not in self.functions]
        if missing:
            raise ValueError(f"missing functions for nodes {missing}")


def _weight(rng: np.random.Generator, shape) -> np.ndarray:
    return rng.standard_normal(shape).astype(np.float64) / np.sqrt(shape[0])


def make_numeric_chain(num_layers: int = 6, width: int = 16, *, seed: int = 0) -> NumericGraph:
    """A linear stack of ``x -> tanh(W x)`` layers with a final sum reduction.

    The first node generates the (fixed, seeded) input activation; the last
    node reduces to a scalar so the chain has a natural "loss" sink.
    """
    rng = np.random.default_rng(seed)
    x0 = rng.standard_normal((width,)).astype(np.float64)
    weights = [_weight(rng, (width, width)) for _ in range(num_layers)]

    nodes: List[NodeInfo] = []
    deps: Dict[int, List[int]] = {}
    functions: Dict[int, NodeFunction] = {}

    nodes.append(NodeInfo(name="input", cost=1.0, memory=x0.nbytes))
    deps[0] = []
    functions[0] = lambda inputs, _x=x0: _x.copy()

    for layer in range(num_layers):
        idx = layer + 1
        w = weights[layer]
        nodes.append(NodeInfo(name=f"layer{layer + 1}", cost=float(2 * width * width),
                              memory=int(width * 8)))
        deps[idx] = [idx - 1]
        functions[idx] = (lambda inputs, _w=w: np.tanh(_w @ inputs[0]))

    sink = num_layers + 1
    nodes.append(NodeInfo(name="loss", cost=float(width), memory=8))
    deps[sink] = [sink - 1]
    functions[sink] = lambda inputs: np.asarray(inputs[0].sum())

    graph = DFGraph(nodes=nodes, deps=deps, name=f"numeric-chain-{num_layers}")
    return NumericGraph(graph=graph, functions=functions)


def make_numeric_dag(num_nodes: int = 10, width: int = 8, *, skip_prob: float = 0.35,
                     seed: int = 0) -> NumericGraph:
    """A random DAG of mat-mul / add / tanh nodes with occasional skip edges.

    Node ``0`` is the seeded input; every later node consumes its predecessor
    and, with probability ``skip_prob``, one earlier node (added element-wise
    after a linear map), producing a graph with residual-style structure.
    """
    rng = np.random.default_rng(seed)
    x0 = rng.standard_normal((width,)).astype(np.float64)

    nodes: List[NodeInfo] = [NodeInfo(name="input", cost=1.0, memory=x0.nbytes)]
    deps: Dict[int, List[int]] = {0: []}
    functions: Dict[int, NodeFunction] = {0: lambda inputs, _x=x0: _x.copy()}

    for idx in range(1, num_nodes):
        parents = [idx - 1]
        if idx > 1 and rng.random() < skip_prob:
            parents.append(int(rng.integers(0, idx - 1)))
        parents = sorted(set(parents))
        w = _weight(rng, (width, width))
        nodes.append(NodeInfo(name=f"node{idx}", cost=float(2 * width * width),
                              memory=int(width * 8)))
        deps[idx] = parents

        if len(parents) == 1:
            functions[idx] = (lambda inputs, _w=w: np.tanh(_w @ inputs[0]))
        else:
            functions[idx] = (lambda inputs, _w=w: np.tanh(_w @ inputs[0] + inputs[1]))

    graph = DFGraph(nodes=nodes, deps=deps, name=f"numeric-dag-{num_nodes}")
    return NumericGraph(graph=graph, functions=functions)
