"""Typed metrics instruments with Prometheus text exposition (zero-dep).

:class:`MetricsRegistry` unifies the solve stack's scattered counters into
three instrument types -- :class:`Counter` (monotone), :class:`Gauge`
(set-to-value) and :class:`Histogram` (cumulative buckets + sum + count) --
each with optional label dimensions, and renders them in the Prometheus text
exposition format (``/v1/metrics?format=prometheus``).

Two complementary paths feed the exposition:

* **Instruments** registered here and updated at instrumentation points
  (phase latency histograms via the tracer's span hook, HTTP request
  counters, job lifecycle counters);
* **Snapshot flattening** (:func:`flatten_numeric`): the daemon's existing
  nested JSON metrics payload (``JobQueue.metrics()`` -- plan cache,
  formulation cache, warm-start counters, latency quantiles...) is walked at
  scrape time and every numeric leaf becomes one sample, so *every* counter
  in ``SolveService.statistics()`` is scrapeable without double-booking any
  state.

:func:`validate_prometheus_text` is the "simple line-format checker" CI's
observability-smoke job runs against a live scrape: it verifies line syntax,
label escaping and histogram bucket monotonicity with stdlib only.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics_registry",
    "set_metrics_registry",
    "flatten_numeric",
    "validate_prometheus_text",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram buckets for solve-stack latencies: 100us .. 60s, roughly
#: geometric -- wide enough for both a cache hit and a cold exact ILP.
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    f = float(value)
    return repr(int(f)) if f.is_integer() and abs(f) < 1e15 else repr(f)


def _labels_text(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    inner = ",".join(f'{n}="{_escape_label_value(v)}"'
                     for n, v in zip(labelnames, labelvalues))
    return "{" + inner + "}"


class _Instrument:
    """Shared machinery: a name, fixed label dimensions, per-labelset state."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",  # noqa: A002
                 labelnames: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._values: Dict[Tuple[str, ...], float] = {}

    def _key(self, labels: dict) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[n]) for n in self.labelnames)

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def samples(self) -> List[Tuple[str, Tuple[str, ...], float]]:
        """``(suffix, labelvalues, value)`` rows for exposition."""
        with self._lock:
            return [("", key, val) for key, val in sorted(self._values.items())]


class Counter(_Instrument):
    """Monotonically increasing count (e.g. requests, solver calls)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount


class Gauge(_Instrument):
    """A value that can go up and down (queue depth, cache entries)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)


class Histogram(_Instrument):
    """Cumulative-bucket histogram (Prometheus semantics: le = less-or-equal).

    Per label set it keeps one count per bucket plus ``sum`` and ``count``;
    exposition emits ``<name>_bucket{le=...}`` (cumulative, ending in
    ``+Inf``), ``<name>_sum`` and ``<name>_count``.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",  # noqa: A002
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(nxt <= prev for nxt, prev in zip(bounds[1:], bounds)):
            raise ValueError("buckets must be non-empty and strictly increasing")
        self.buckets = bounds
        self._counts: Dict[Tuple[str, ...], List[float]] = {}

    def observe(self, value: float, **labels) -> None:
        self.observe_at(self._key(labels), float(value))

    def observe_at(self, labelvalues: Tuple[str, ...], value: float) -> None:
        """Fast-path observe for hot callers holding a pre-built label tuple.

        Skips the kwargs packing and name validation of :meth:`observe`; the
        tuple must match ``labelnames`` positionally (checked once per new
        label set, when its state is first allocated).
        """
        self.observe_many_at(((labelvalues, value),))

    def observe_many_at(self, pairs) -> None:
        """Observe ``(labelvalues, value)`` pairs under one lock acquisition.

        The tracer's span hook feeds a whole flushed trace through here at
        once, so a batch of spans costs one lock round-trip, not one per
        span.
        """
        buckets = self.buckets
        num_buckets = len(buckets)
        with self._lock:
            for labelvalues, value in pairs:
                state = self._counts.get(labelvalues)
                if state is None:
                    if len(labelvalues) != len(self.labelnames):
                        raise ValueError(
                            f"metric {self.name!r} takes "
                            f"{len(self.labelnames)} label values, "
                            f"got {labelvalues!r}")
                    # One slot per finite bucket + [inf-count, sum, count].
                    state = self._counts[labelvalues] = [0.0] * (num_buckets + 3)
                for i, bound in enumerate(buckets):
                    if value <= bound:
                        state[i] += 1.0
                        break
                else:
                    state[num_buckets] += 1.0
                state[-2] += value
                state[-1] += 1.0

    def snapshot(self, **labels):
        """``(cumulative_bucket_counts, sum, count)`` for one label set."""
        key = self._key(labels)
        with self._lock:
            state = self._counts.get(key)
            if state is None:
                return [0.0] * (len(self.buckets) + 1), 0.0, 0.0
            raw = list(state)
        cumulative = []
        running = 0.0
        for c in raw[: len(self.buckets) + 1]:
            running += c
            cumulative.append(running)
        return cumulative, raw[-2], raw[-1]

    def samples(self) -> List[Tuple[str, Tuple[str, ...], float]]:
        rows: List[Tuple[str, Tuple[str, ...], float]] = []
        with self._lock:
            items = [(key, list(state)) for key, state in
                     sorted(self._counts.items())]
        for key, raw in items:
            running = 0.0
            for bound, count in zip(self.buckets, raw):
                running += count
                rows.append((f'_bucket|le={_format_value(bound)}', key, running))
            running += raw[len(self.buckets)]
            rows.append(('_bucket|le=+Inf', key, running))
            rows.append(("_sum", key, raw[-2]))
            rows.append(("_count", key, raw[-1]))
        return rows


class MetricsRegistry:
    """Named instruments with get-or-create semantics plus text exposition.

    ``counter``/``gauge``/``histogram`` return the existing instrument when
    one of the same name, type and labels is already registered, so separate
    modules can reference one instrument without import-order coupling.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: "Dict[str, _Instrument]" = {}

    def _get_or_create(self, cls, name: str, help: str,  # noqa: A002
                       labelnames: Sequence[str], **kwargs) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or \
                        existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}")
                return existing
            instrument = cls(name, help, labelnames, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "",  # noqa: A002
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",  # noqa: A002
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",  # noqa: A002
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    def instruments(self) -> List[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()

    # ------------------------------------------------------------------ #
    # Exposition
    # ------------------------------------------------------------------ #
    def render_prometheus(
        self,
        extra_numeric: Optional[Dict[str, float]] = None,
    ) -> str:
        """The Prometheus text format (version 0.0.4) of every instrument.

        ``extra_numeric`` maps pre-flattened sample names (see
        :func:`flatten_numeric`) to values; they are emitted as gauges, which
        is how the daemon folds its JSON metrics snapshot into the scrape.
        """
        lines: List[str] = []
        for inst in sorted(self.instruments(), key=lambda i: i.name):
            if inst.help:
                # HELP text escapes backslash and newline (exposition 0.0.4).
                escaped = inst.help.replace("\\", r"\\").replace("\n", r"\n")
                lines.append(f"# HELP {inst.name} {escaped}")
            lines.append(f"# TYPE {inst.name} {inst.kind}")
            for suffix, labelvalues, value in inst.samples():
                extra_label = None
                if "|" in suffix:
                    suffix, extra_label = suffix.split("|", 1)
                names = list(inst.labelnames)
                values = list(labelvalues)
                if extra_label is not None:
                    k, v = extra_label.split("=", 1)
                    names.append(k)
                    values.append(v)
                lines.append(f"{inst.name}{suffix}"
                             f"{_labels_text(names, values)} "
                             f"{_format_value(value)}")
        if extra_numeric:
            for name in sorted(extra_numeric):
                if not _NAME_RE.match(name):
                    continue
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_format_value(extra_numeric[name])}")
        return "\n".join(lines) + "\n"


def _sanitize_name(part: str) -> str:
    return re.sub(r"[^a-zA-Z0-9_]", "_", part)


def flatten_numeric(payload, prefix: str = "repro") -> Dict[str, float]:
    """Flatten a nested JSON-ish dict to ``{metric_name: float}`` samples.

    Dict keys join the prefix with ``_``; booleans become 0/1; ``None`` and
    non-numeric leaves (strings, lists) are skipped.  This is how the
    daemon's existing ``/v1/metrics`` JSON payload -- every counter in
    ``SolveService.statistics()`` included -- becomes scrapeable without
    re-plumbing each counter individually.
    """
    out: Dict[str, float] = {}

    def walk(node, name: str) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                walk(value, f"{name}_{_sanitize_name(str(key))}")
        elif isinstance(node, bool):
            out[name] = 1.0 if node else 0.0
        elif isinstance(node, (int, float)):
            out[name] = float(node)

    walk(payload, _sanitize_name(prefix))
    return out


# --------------------------------------------------------------------------- #
# Exposition-format checking (used by tests and the CI smoke job)
# --------------------------------------------------------------------------- #
_LABEL_PAIR_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$')


def _parse_sample_line(line: str, lineno: int):
    """``(name, raw_labels_or_None, value_text)`` of one exposition line.

    Quote-aware: a ``}`` inside a quoted label value (legal in the format,
    e.g. ``route="/v1/jobs/{id}"``) does not terminate the label block.
    """
    match = re.match(r"[a-zA-Z_:][a-zA-Z0-9_:]*", line)
    if not match:
        raise ValueError(f"line {lineno}: malformed sample: {line!r}")
    name = match.group(0)
    rest = line[match.end():]
    raw_labels = None
    if rest.startswith("{"):
        in_quotes = False
        escaped = False
        end = -1
        for i, ch in enumerate(rest[1:], 1):
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_quotes = not in_quotes
            elif ch == "}" and not in_quotes:
                end = i
                break
        if end < 0:
            raise ValueError(f"line {lineno}: unterminated label block: {line!r}")
        raw_labels = rest[1:end]
        rest = rest[end + 1:]
    parts = rest.split()
    if len(parts) not in (1, 2):  # value [timestamp]
        raise ValueError(f"line {lineno}: malformed sample: {line!r}")
    if len(parts) == 2 and not re.fullmatch(r"-?[0-9]+", parts[1]):
        raise ValueError(f"line {lineno}: malformed timestamp: {line!r}")
    return name, raw_labels, parts[0]


def validate_prometheus_text(text: str) -> Dict[str, int]:
    """Strictly parse Prometheus text exposition; raise ``ValueError`` on any
    malformed line; return ``{metric_name: sample_count}``.

    Checks, per line: sample syntax (name, optional escaped label set, float
    value), and per histogram: ``_bucket`` series monotone non-decreasing in
    ``le`` with a trailing ``+Inf`` bucket equal to ``_count``.
    """
    samples: Dict[str, int] = {}
    buckets: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip() or line.startswith("#"):
            continue
        name, raw_labels, value_text = _parse_sample_line(line, lineno)
        labels: Dict[str, str] = {}
        if raw_labels:
            for pair in _split_label_pairs(raw_labels, lineno):
                if not _LABEL_PAIR_RE.match(pair):
                    raise ValueError(f"line {lineno}: bad label pair {pair!r}")
                key, value = pair.split("=", 1)
                labels[key] = value[1:-1]
        try:
            value = float(value_text.replace("+Inf", "inf")
                          .replace("-Inf", "-inf").replace("NaN", "nan"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value {value_text!r}") from None
        samples[name] = samples.get(name, 0) + 1

        if name.endswith("_bucket") and "le" in labels:
            base = name[: -len("_bucket")]
            rest = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            le = math.inf if labels["le"] == "+Inf" else float(labels["le"])
            buckets.setdefault((base, rest), []).append((le, value))
        elif name.endswith("_count"):
            base = name[: -len("_count")]
            counts[(base, tuple(sorted(labels.items())))] = value

    for (base, rest), series in buckets.items():
        series.sort(key=lambda pair: pair[0])
        for (le_a, v_a), (le_b, v_b) in zip(series, series[1:]):
            if v_b < v_a:
                raise ValueError(
                    f"histogram {base!r}: bucket counts not monotone "
                    f"(le={le_a} -> {v_a}, le={le_b} -> {v_b})")
        if series[-1][0] != math.inf:
            raise ValueError(f"histogram {base!r}: missing le=\"+Inf\" bucket")
        total = counts.get((base, rest))
        if total is not None and series[-1][1] != total:
            raise ValueError(
                f"histogram {base!r}: +Inf bucket {series[-1][1]} != "
                f"count {total}")
    return samples


def _split_label_pairs(raw: str, lineno: int) -> Iterable[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    pairs: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for ch in raw:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\":
            current.append(ch)
            escaped = True
        elif ch == '"':
            current.append(ch)
            in_quotes = not in_quotes
        elif ch == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
        else:
            current.append(ch)
    if in_quotes:
        raise ValueError(f"line {lineno}: unterminated label quote")
    if current:
        pairs.append("".join(current))
    return [p for p in pairs if p]


_registry = MetricsRegistry()
_registry_lock = threading.Lock()


def get_metrics_registry() -> MetricsRegistry:
    """The process-wide registry the solve stack's instruments live in."""
    return _registry


def set_metrics_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous one."""
    global _registry
    with _registry_lock:
        previous, _registry = _registry, registry
        return previous
