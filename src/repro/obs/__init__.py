"""Zero-dependency observability for the solve stack.

Three pieces, wired together here:

* :mod:`repro.obs.trace` -- nestable, thread-aware spans with per-request
  trace IDs, a bounded in-memory store, and Chrome-trace / waterfall export;
* :mod:`repro.obs.metrics` -- typed Counter/Gauge/Histogram instruments with
  Prometheus text exposition;
* :mod:`repro.obs.logging` -- structured JSON logging with trace-ID
  correlation.

:func:`install_phase_histograms` bridges the first two: every finished span
feeds a per-phase latency histogram, so enabling tracing automatically
populates ``repro_phase_seconds`` in the Prometheus scrape.
"""

from __future__ import annotations

from .logging import JsonFormatter, configure_logging, get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_LATENCY_BUCKETS,
    flatten_numeric,
    get_metrics_registry,
    set_metrics_registry,
    validate_prometheus_text,
)
from .trace import (
    Span,
    TraceStore,
    Tracer,
    chrome_trace,
    format_waterfall,
    get_tracer,
    set_tracer,
    span_tree,
    spans_from_tree,
)

__all__ = [
    "Span",
    "TraceStore",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "chrome_trace",
    "span_tree",
    "spans_from_tree",
    "format_waterfall",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_metrics_registry",
    "set_metrics_registry",
    "flatten_numeric",
    "validate_prometheus_text",
    "JsonFormatter",
    "configure_logging",
    "get_logger",
    "install_phase_histograms",
]


def install_phase_histograms(tracer=None, registry=None) -> None:
    """Feed every finished span into a per-phase latency histogram.

    Installs a ``tracer.on_span_end`` hook that observes each span's
    duration in ``repro_phase_seconds{phase=<span name>}`` in ``registry``.
    Idempotent in effect: re-installing simply rebinds the hook.
    """
    tracer = tracer if tracer is not None else get_tracer()
    registry = registry if registry is not None else get_metrics_registry()
    histogram = registry.histogram(
        "repro_phase_seconds",
        "Latency of each traced phase of the solve stack, by span name.",
        labelnames=("phase",),
    )

    observe_many_at = histogram.observe_many_at

    def _observe(pairs) -> None:
        observe_many_at([((name,), duration_s) for name, duration_s in pairs])

    tracer.on_span_end = _observe
