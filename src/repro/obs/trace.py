"""Span tracing: where the time goes *inside* a solve.

A :class:`Tracer` records nestable, thread-aware spans -- named intervals on
the monotonic clock with attributes, a per-request trace id and a parent
link -- into a bounded in-memory :class:`TraceStore`.  The daemon turns the
store into ``/v1/trace/{job_id}`` span trees and Chrome trace-event JSON
(loadable in ``chrome://tracing`` / Perfetto); the ``repro trace`` CLI prints
the same spans as a text waterfall.

Design constraints, in order:

**Off means free.**  Tracing is disabled by default and every instrumentation
point is a single ``tracer.span(...)`` call that returns a shared no-op
context manager when disabled -- one attribute check, no allocation.  The
perf harness (``benchmarks/perf_formulation.py --pr7``) asserts the *enabled*
overhead stays under 2% on a warm sweep, so the enabled path is lean too:
span ids are counter ints (no uuid), timestamps are two ``perf_counter``
calls, and recording is one list append under a short lock.

**Threads are first class.**  The current trace/span is thread-local;
:meth:`Tracer.current_context` / :meth:`Tracer.context` carry it across an
explicit handoff (the job queue propagates the submitting request's trace id
into the worker thread), and every span records the thread it ran on, so a
Chrome trace shows HTTP handler and solver worker on separate tracks.

**Bounded memory.**  Finished spans live in the :class:`TraceStore`, an LRU
of the most recent ``max_traces`` trace ids with a per-trace span cap --
a long-lived daemon never accumulates unbounded trace data.
"""

from __future__ import annotations

import itertools
import os
import random
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Span",
    "TraceStore",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "chrome_trace",
    "span_tree",
    "spans_from_tree",
    "format_waterfall",
]


class Span:
    """One finished, named interval of a trace (immutable once recorded)."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start_s",
                 "end_s", "thread_id", "thread_name", "attributes")

    def __init__(self, name: str, trace_id: str, span_id: int,
                 parent_id: Optional[int], start_s: float, end_s: float,
                 thread_id: int, thread_name: str,
                 attributes: Optional[dict]) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s = end_s
        self.thread_id = thread_id
        self.thread_name = thread_name
        self.attributes = attributes

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "attributes": self.attributes or {},
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.name!r}, {self.duration_s * 1e3:.3f} ms, "
                f"trace={self.trace_id})")


class TraceStore:
    """Bounded LRU of finished spans keyed by trace id (thread-safe).

    Spans arrive as plain tuples (``Span.__init__`` argument order) and are
    only materialized into :class:`Span` objects when read: recording is the
    hot path (one tuple and one list append per span), reading happens once
    per trace render.
    """

    def __init__(self, max_traces: int = 256,
                 max_spans_per_trace: int = 4096) -> None:
        self.max_traces = int(max_traces)
        self.max_spans_per_trace = int(max_spans_per_trace)
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, List[tuple]]" = OrderedDict()
        self._dropped_spans = 0

    def add(self, span_row: tuple) -> None:
        """Record one finished span row ``(name, trace_id, span_id, ...)``."""
        self.add_many((span_row,))

    def add_many(self, span_rows) -> None:
        """Record a batch of rows under one lock (the tracer's flush path)."""
        with self._lock:
            for span_row in span_rows:
                rows = self._traces.get(span_row[1])
                if rows is None:
                    rows = []
                    self._traces[span_row[1]] = rows
                    while len(self._traces) > self.max_traces:
                        self._traces.popitem(last=False)
                if len(rows) >= self.max_spans_per_trace:
                    self._dropped_spans += 1
                    continue
                rows.append(span_row)

    def spans(self, trace_id: str) -> List[Span]:
        """All finished spans of one trace, in start order (copy)."""
        with self._lock:
            rows = list(self._traces.get(trace_id, ()))
        return sorted((Span(*row) for row in rows), key=lambda s: s.start_s)

    def pop_rows(self, trace_id: str) -> List[tuple]:
        """Remove and return one trace's raw span rows.

        The worker-process export path: a solver worker records its spans
        locally, pops the rows, and ships them to the parent process (which
        grafts them into the submitting request's trace via
        :meth:`Tracer.graft_rows`).  Raw tuples, not :class:`Span` objects --
        they are about to cross a pickle boundary.
        """
        with self._lock:
            return self._traces.pop(trace_id, [])

    def trace_ids(self) -> List[str]:
        with self._lock:
            return list(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "traces": len(self._traces),
                "max_traces": self.max_traces,
                "spans": sum(len(v) for v in self._traces.values()),
                "dropped_spans": self._dropped_spans,
            }

    def phase_totals(self, trace_id: str) -> Dict[str, float]:
        """Total seconds per span name for one trace (the job "phases" view)."""
        totals: Dict[str, float] = {}
        for span in self.spans(trace_id):
            totals[span.name] = totals.get(span.name, 0.0) + span.duration_s
        return totals


class _NoopSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set_attribute(self, key: str, value) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager for one live span (allocated only when recording)."""

    __slots__ = ("_tracer", "name", "attributes", "trace_id", "span_id",
                 "parent_id", "start_s", "_is_root")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: Optional[dict]) -> None:
        self._tracer = tracer
        self.name = name
        self.attributes = attributes

    def set_attribute(self, key: str, value) -> None:
        if self.attributes is None:
            self.attributes = {}
        self.attributes[key] = value

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        tls = tracer._tls
        trace_id = getattr(tls, "trace_id", None)
        if trace_id is None:
            # Root span: open a new trace (honoring the sample rate).
            if not tracer._sampled():
                tls.trace_id = _NOT_SAMPLED
                tls.parent_id = None
                self.trace_id = _NOT_SAMPLED
                self._is_root = True
                return self
            trace_id = tracer.new_trace_id()
            tls.trace_id = trace_id
            tls.parent_id = None
            self._is_root = True
        else:
            self._is_root = False
        self.trace_id = trace_id
        if trace_id is _NOT_SAMPLED:
            return self
        self.span_id = next(tracer._ids)
        self.parent_id = tls.parent_id
        tls.parent_id = self.span_id
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        tracer = self._tracer
        tls = tracer._tls
        if self.trace_id is _NOT_SAMPLED:
            if self._is_root:
                tls.trace_id = None
            return
        end_s = time.perf_counter()
        tls.parent_id = self.parent_id
        thread_info = getattr(tls, "thread_info", None)
        if thread_info is None:
            thread = threading.current_thread()
            thread_info = tls.thread_info = (thread.ident or 0, thread.name)
        # Finished spans buffer on the owning thread and flush in one batch
        # when the thread's root span (or an attached context) closes: one
        # store lock round-trip and one metrics-hook walk per trace, not per
        # span, keeps the per-span cost down on cache-hit-speed solves.
        buffer = getattr(tls, "buffer", None)
        if buffer is None:
            buffer = tls.buffer = []
        buffer.append((self.name, self.trace_id, self.span_id, self.parent_id,
                       self.start_s, end_s, thread_info[0], thread_info[1],
                       self.attributes))
        if self._is_root:
            tls.trace_id = None
            tracer._flush(buffer)


#: Sentinel trace id marking a sampled-out trace on the current thread: child
#: spans see it and skip recording without re-rolling the sampling decision.
_NOT_SAMPLED = "<not-sampled>"


class _Context:
    """Attach an existing trace id to the current thread (worker handoff)."""

    __slots__ = ("_tracer", "_trace_id", "_parent_id", "_saved")

    def __init__(self, tracer: "Tracer", trace_id: str,
                 parent_id: Optional[int]) -> None:
        self._tracer = tracer
        self._trace_id = trace_id
        self._parent_id = parent_id

    def __enter__(self) -> "_Context":
        tls = self._tracer._tls
        self._saved = (getattr(tls, "trace_id", None),
                       getattr(tls, "parent_id", None))
        tls.trace_id = self._trace_id
        tls.parent_id = self._parent_id
        return self

    def __exit__(self, *exc) -> None:
        tracer = self._tracer
        tls = tracer._tls
        buffer = getattr(tls, "buffer", None)
        if buffer:
            # The attached trace's root lives on another thread and cannot
            # flush this thread's buffer, so the handoff scope does.
            tracer._flush(buffer)
        tls.trace_id, tls.parent_id = self._saved


class Tracer:
    """Thread-aware span tracer with an on/off switch and trace sampling.

    ``enabled`` gates everything: while ``False`` (the default),
    :meth:`span` returns one shared no-op context manager -- the cost of an
    instrumentation point is a method call and an attribute check.  When
    enabled, each *root* span starts a new trace (recorded with probability
    ``sample_rate``); nested spans attach to the thread's current trace.
    """

    def __init__(self, store: Optional[TraceStore] = None) -> None:
        self.store = store if store is not None else TraceStore()
        self._enabled = False
        self._sample_rate = 1.0
        self._tls = threading.local()
        self._ids = itertools.count(1)
        self._trace_seq = itertools.count(1)
        self._rng = random.Random(os.getpid())
        #: Optional ``callable(pairs)`` invoked with batches of
        #: ``(name, duration_s)`` tuples as finished spans flush (a whole
        #: trace arrives in one call).  The metrics bridge feeds per-phase
        #: latency histograms from here; batching keeps the per-span cost of
        #: the hook to one small tuple.
        self.on_span_end = None

    # ------------------------------------------------------------------ #
    # Switches
    # ------------------------------------------------------------------ #
    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def sample_rate(self) -> float:
        return self._sample_rate

    def enable(self, sample_rate: float = 1.0) -> "Tracer":
        if not (0.0 <= sample_rate <= 1.0):
            raise ValueError("sample_rate must be in [0, 1]")
        self._sample_rate = float(sample_rate)
        self._enabled = True
        return self

    def disable(self) -> "Tracer":
        self._enabled = False
        return self

    def _sampled(self) -> bool:
        rate = self._sample_rate
        return rate >= 1.0 or self._rng.random() < rate

    def _flush(self, buffer: List[tuple]) -> None:
        """Drain one thread's finished-span buffer into the store + hook."""
        self.store.add_many(buffer)
        hook = self.on_span_end
        if hook is not None:
            hook([(row[0], row[5] - row[4]) for row in buffer])
        del buffer[:]

    # ------------------------------------------------------------------ #
    # Span creation
    # ------------------------------------------------------------------ #
    def span(self, name: str, **attributes):
        """Context manager timing one named span (no-op while disabled)."""
        if not self._enabled:
            return _NOOP_SPAN
        return _ActiveSpan(self, name, attributes or None)

    def record_span(self, name: str, trace_id: str, start_s: float,
                    end_s: float, parent_id: Optional[int] = None,
                    **attributes) -> None:
        """Record an already-measured interval (e.g. queue wait) directly.

        ``start_s``/``end_s`` must come from ``time.perf_counter()`` so the
        span shares the clock of every context-manager span.
        """
        if not self._enabled or trace_id is _NOT_SAMPLED:
            return
        tls = self._tls
        thread_info = getattr(tls, "thread_info", None)
        if thread_info is None:
            thread = threading.current_thread()
            thread_info = tls.thread_info = (thread.ident or 0, thread.name)
        start_s, end_s = float(start_s), float(end_s)
        row = (name, trace_id, next(self._ids), parent_id, start_s, end_s,
               thread_info[0], thread_info[1], attributes or None)
        if getattr(tls, "trace_id", None) == trace_id:
            # Recording into this thread's own active trace: buffer alongside
            # the live spans; the root/context exit flushes the batch.
            buffer = getattr(tls, "buffer", None)
            if buffer is None:
                buffer = tls.buffer = []
            buffer.append(row)
            return
        self.store.add(row)
        hook = self.on_span_end
        if hook is not None:
            hook(((name, end_s - start_s),))

    def record_child_span(self, name: str, start_s: float, end_s: float,
                          **attributes) -> bool:
        """Buffer a pre-measured span under the thread's current span.

        The cheapest way to record an interval from inside an active trace
        (no context tuple, no trace-id comparison): one tuple and one list
        append.  Returns ``False`` -- recording nothing -- when the thread
        has no active trace, so callers can fall back to opening one;
        sampled-out traces swallow the span and still return ``True``.
        """
        if not self._enabled:
            return True
        tls = self._tls
        trace_id = getattr(tls, "trace_id", None)
        if trace_id is None:
            return False
        if trace_id is _NOT_SAMPLED:
            return True
        thread_info = getattr(tls, "thread_info", None)
        if thread_info is None:
            thread = threading.current_thread()
            thread_info = tls.thread_info = (thread.ident or 0, thread.name)
        buffer = getattr(tls, "buffer", None)
        if buffer is None:
            buffer = tls.buffer = []
        buffer.append((name, trace_id, next(self._ids), tls.parent_id,
                       start_s, end_s, thread_info[0], thread_info[1],
                       attributes or None))
        return True

    def graft_rows(self, rows: List[tuple], trace_id: str,
                   parent_id: Optional[int] = None,
                   offset_s: float = 0.0) -> int:
        """Attach span rows recorded in *another process* to a local trace.

        Rows come from the remote tracer's :meth:`TraceStore.pop_rows`.
        Span ids are remapped onto this tracer's id counter (remote counters
        collide with local ones), parent links are rewritten through the
        same mapping -- remote roots (``parent_id is None``) and orphans
        attach under ``parent_id`` -- and timestamps are shifted by
        ``offset_s``, the caller's estimate of the clock skew between the
        remote ``perf_counter()`` and the local one (``perf_counter`` is
        per-process; see the process backend for the wall-clock-anchor
        rebasing).  Returns the number of spans grafted.
        """
        if not self._enabled or not rows:
            return 0
        mapping: Dict[int, int] = {}
        for row in rows:
            mapping[row[2]] = next(self._ids)
        grafted = []
        for (name, _tid, span_id, old_parent, start_s, end_s,
             thread_id, thread_name, attrs) in rows:
            new_parent = (mapping.get(old_parent, parent_id)
                          if old_parent is not None else parent_id)
            grafted.append((name, trace_id, mapping[span_id], new_parent,
                            start_s + offset_s, end_s + offset_s,
                            thread_id, thread_name, attrs))
        self.store.add_many(grafted)
        hook = self.on_span_end
        if hook is not None:
            hook([(row[0], row[5] - row[4]) for row in grafted])
        return len(grafted)

    # ------------------------------------------------------------------ #
    # Trace identity and cross-thread propagation
    # ------------------------------------------------------------------ #
    def new_trace_id(self) -> str:
        return f"{os.getpid():x}-{next(self._trace_seq):08x}"

    def current_trace_id(self) -> Optional[str]:
        """The trace id active on this thread (``None`` outside any span)."""
        trace_id = getattr(self._tls, "trace_id", None)
        return None if trace_id is _NOT_SAMPLED else trace_id

    def thread_has_trace(self) -> bool:
        """True inside any root span on this thread, *including* sampled-out
        ones -- lets callers avoid opening a fresh trace that the sampler
        already declined."""
        return getattr(self._tls, "trace_id", None) is not None

    def current_context(self) -> Optional[Tuple[str, Optional[int]]]:
        """``(trace_id, parent_span_id)`` to hand to another thread."""
        trace_id = self.current_trace_id()
        if trace_id is None:
            return None
        return trace_id, getattr(self._tls, "parent_id", None)

    def context(self, trace_id: str, parent_id: Optional[int] = None):
        """Attach ``trace_id`` to the current thread for a ``with`` block."""
        return _Context(self, trace_id, parent_id)


_tracer = Tracer()
_tracer_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer every instrumentation point consults."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer (tests / isolation); returns the old one."""
    global _tracer
    with _tracer_lock:
        previous, _tracer = _tracer, tracer
        return previous


# --------------------------------------------------------------------------- #
# Export: span trees, Chrome trace events, text waterfalls
# --------------------------------------------------------------------------- #
def span_tree(spans: List[Span]) -> List[dict]:
    """Nest spans by parent link: a list of root dicts with ``children``."""
    nodes: Dict[int, dict] = {}
    for span in sorted(spans, key=lambda s: s.start_s):
        node = span.to_dict()
        node["children"] = []
        nodes[span.span_id] = node
    roots: List[dict] = []
    for span_id, node in nodes.items():
        parent_id = node["parent_id"]
        # A parent outside this span list (e.g. pruned by the store bound)
        # degrades gracefully: the orphan becomes a root.
        parent = nodes.get(parent_id) if parent_id is not None else None
        (parent["children"] if parent is not None else roots).append(node)
    return roots


def spans_from_tree(tree: List[dict], trace_id: str = "remote") -> List[Span]:
    """Rebuild flat :class:`Span` objects from a :func:`span_tree` payload.

    The inverse of the wire direction: ``repro trace <job-id> --server`` gets
    a nested tree from ``/v1/trace/{job_id}`` and flattens it back to spans so
    the same waterfall / Chrome-trace renderers work on remote traces.
    """
    spans: List[Span] = []

    def walk(node: dict) -> None:
        spans.append(Span(
            node["name"], trace_id, node["span_id"], node.get("parent_id"),
            node["start_s"], node["start_s"] + node["duration_s"],
            node.get("thread_id", 0), str(node.get("thread_name", "?")),
            node.get("attributes") or None))
        for child in node.get("children", ()):
            walk(child)

    for root in tree:
        walk(root)
    return sorted(spans, key=lambda s: s.start_s)


def chrome_trace(spans: List[Span]) -> dict:
    """Chrome trace-event JSON (the ``chrome://tracing`` / Perfetto format).

    Every span becomes one complete ("ph": "X") event; thread names are
    attached as metadata events so the viewer labels each track.  Timestamps
    are microseconds on the shared monotonic clock.
    """
    pid = os.getpid()
    events = []
    threads = {}
    for span in sorted(spans, key=lambda s: s.start_s):
        threads.setdefault(span.thread_id, span.thread_name)
        events.append({
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": span.start_s * 1e6,
            "dur": span.duration_s * 1e6,
            "pid": pid,
            "tid": span.thread_id,
            "args": dict(span.attributes or {},
                         trace_id=span.trace_id, span_id=span.span_id),
        })
    meta = [{"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
             "args": {"name": name}} for tid, name in sorted(threads.items())]
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def format_waterfall(spans: List[Span], *, width: int = 40) -> str:
    """Render one trace as an indented text waterfall with duration bars."""
    if not spans:
        return "(no spans recorded)"
    t0 = min(s.start_s for s in spans)
    t1 = max(s.end_s for s in spans)
    total = max(t1 - t0, 1e-12)
    lines = [f"trace {spans[0].trace_id}: {len(spans)} spans, "
             f"{total * 1e3:.2f} ms total"]

    def emit(node: dict, depth: int) -> None:
        start = node["start_s"] - t0
        dur = node["duration_s"]
        left = int(width * start / total)
        bar = max(1, int(round(width * dur / total)))
        gauge = " " * left + "#" * min(bar, width - left)
        label = "  " * depth + node["name"]
        attrs = node["attributes"]
        suffix = (" " + " ".join(f"{k}={v}" for k, v in attrs.items())
                  if attrs else "")
        lines.append(f"  {label:<28} {dur * 1e3:9.3f} ms |{gauge:<{width}}|"
                     f"{suffix}")
        for child in node["children"]:
            emit(child, depth + 1)

    for root in span_tree(spans):
        emit(root, 0)
    return "\n".join(lines)
