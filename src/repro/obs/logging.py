"""Structured JSON logging with trace-ID correlation (stdlib ``logging``).

Every record is one JSON object per line -- ``ts``, ``level``, ``logger``,
``message``, ``thread``, plus the current trace ID (when a traced span is
active on the emitting thread) and any ``extra={...}`` fields -- so a worker
thread failure in the daemon is attributable to the request trace that
caused it.
"""

from __future__ import annotations

import json
import logging
import threading
from typing import Optional

from .trace import get_tracer

__all__ = ["JsonFormatter", "configure_logging", "get_logger"]

#: Attributes present on every LogRecord; anything else came in via extra=.
_STANDARD_ATTRS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__) | {
        "message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """Format records as single-line JSON with trace correlation."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
            "thread": record.threadName,
        }
        trace_id = get_tracer().current_trace_id()
        if trace_id is not None:
            payload["trace_id"] = trace_id
        for key, value in record.__dict__.items():
            if key not in _STANDARD_ATTRS and not key.startswith("_"):
                try:
                    json.dumps(value)
                except (TypeError, ValueError):
                    value = repr(value)
                payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_type"] = record.exc_info[0].__name__
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, separators=(",", ":"))


_configure_lock = threading.Lock()
_configured = False


def configure_logging(level: int = logging.INFO,
                      stream=None) -> logging.Logger:
    """Install a JSON handler on the ``repro`` logger (idempotent).

    Only the ``repro.*`` hierarchy is touched -- the root logger and any
    host application logging config are left alone.
    """
    global _configured
    logger = logging.getLogger("repro")
    with _configure_lock:
        if _configured and stream is None:
            return logger
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
        handler = logging.StreamHandler(stream)
        handler.setFormatter(JsonFormatter())
        logger.addHandler(handler)
        logger.setLevel(level)
        logger.propagate = False
        _configured = True
    return logger


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``).

    Safe to call before :func:`configure_logging`; un-configured loggers
    follow normal stdlib propagation (silent by default under pytest).
    """
    return logging.getLogger(f"repro.{name}" if name else "repro")
