"""Pure structural analyses over :class:`~repro.core.dfgraph.DFGraph`.

Everything in this module is read-only: the functions inspect a graph and
return facts about it (liveness intervals, reachability sets, structural
digests, repeated-segment groupings).  The transforms in
:mod:`repro.analysis.passes` and the diagnostics in
:mod:`repro.analysis.lint` are both built on these analyses, so a fact is
computed once and interpreted twice -- once to rewrite, once to warn.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Set, Tuple

import numpy as np

from ..core.dfgraph import DFGraph
from ..core.graph_utils import articulation_points

__all__ = [
    "liveness_intervals",
    "live_roots",
    "reachable_from",
    "live_node_mask",
    "dead_nodes",
    "structural_graph_hash",
    "isomorphic_segment_groups",
]


def liveness_intervals(graph: DFGraph) -> np.ndarray:
    """Per-node ``[definition, last_use]`` stage intervals, shape ``(n, 2)``.

    Under the canonical one-node-per-stage reading of the topological order
    (the checkpoint-all schedule), node ``i`` is defined at stage ``i`` and
    must stay resident until its highest-numbered consumer runs; a node with
    no consumers dies in its own stage.  This is the interval the paper's
    memory recurrence integrates over, and the last-use column is what the
    fusion pass consults to prove a zero-cost chain never outlives its head.
    """
    n = graph.size
    intervals = np.empty((n, 2), dtype=np.int64)
    for i in range(n):
        users = graph.successors(i)
        intervals[i, 0] = i
        intervals[i, 1] = max(users) if users else i
    return intervals


def live_roots(graph: DFGraph) -> List[int]:
    """The nodes whose values a training step must actually produce.

    The terminal node (the loss on a forward graph, the final gradient on a
    training graph) is always a root; on training graphs every backward sink
    is one too -- each is a parameter gradient the optimizer step consumes,
    even though nothing inside the graph reads it.  Forward sinks other than
    the terminal are *not* roots: a forward value nobody consumes cannot
    influence the loss and is exactly what dead-node elimination removes.
    """
    if graph.size == 0:
        return []
    roots: Set[int] = {graph.terminal_node}
    for i in graph.sinks():
        if graph.nodes[i].is_backward:
            roots.add(i)
    return sorted(roots)


def reachable_from(graph: DFGraph, roots: Iterable[int]) -> Set[int]:
    """``roots`` plus every transitive ancestor of a root.

    This is the set of nodes whose values can influence at least one root --
    the complement is dead code.  Ancestor-closed by construction: every
    parent of a reachable node is reachable, which is what lets dead-node
    elimination drop the complement without breaking any dependency of a
    kept node.
    """
    seen: Set[int] = set()
    stack = [r for r in roots if 0 <= r < graph.size]
    while stack:
        cur = stack.pop()
        if cur in seen:
            continue
        seen.add(cur)
        stack.extend(graph.predecessors(cur))
    return seen


def live_node_mask(graph: DFGraph) -> np.ndarray:
    """Boolean mask of nodes reachable from :func:`live_roots` (length ``n``)."""
    mask = np.zeros(graph.size, dtype=bool)
    for i in reachable_from(graph, live_roots(graph)):
        mask[i] = True
    return mask


def dead_nodes(graph: DFGraph) -> List[int]:
    """Nodes whose value cannot influence the loss or any gradient output."""
    return [int(i) for i in np.flatnonzero(~live_node_mask(graph))]


_STRUCTURAL_HASH_ATTR = "_repro_structural_hash"


def structural_graph_hash(graph: DFGraph) -> str:
    """SHA-256 digest of what a *solver* sees: costs, memories, edges, overhead.

    Deliberately narrower than
    :func:`~repro.service.hashing.graph_content_hash`: node names, layer ids,
    the graph name and the free-form ``meta`` mapping are all excluded,
    because none of them enter the MILP's objective, constraint matrix or
    bounds.  Two graphs with equal structural hashes therefore compile to
    byte-identical formulation arrays -- this is the key the
    :class:`~repro.solvers.compiled.FormulationCache` shares compiled blocks
    under, so the same residual stage rebuilt with different layer names (or
    different ``op_attrs``) compiles exactly once per process.

    Plans keep using the full content hash: ``op_attrs`` *do* change what an
    executed schedule computes, just not which schedule is optimal.

    Floats go through ``repr`` (shortest round-trip form), matching the
    content hash's convention: bit-equal costs hash equally, any perturbation
    changes the digest.  The digest is memoized on the instance -- every
    field it covers is immutable after ``__post_init__``.
    """
    cached = graph.__dict__.get(_STRUCTURAL_HASH_ATTR)
    if cached is not None:
        return cached
    payload = {
        "format": "repro.dfgraph-structural/v1",
        "nodes": [
            [repr(float(v.cost)), int(v.memory), bool(v.is_backward)]
            for v in graph.nodes
        ],
        "deps": [list(graph.deps[j]) for j in range(graph.size)],
        "input_memory": int(graph.input_memory),
        "parameter_memory": int(graph.parameter_memory),
    }
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(encoded.encode("utf-8")).hexdigest()
    graph.__dict__[_STRUCTURAL_HASH_ATTR] = digest
    return digest


def isomorphic_segment_groups(graph: DFGraph) -> Dict[str, List[Tuple[int, ...]]]:
    """Group the forward pass's articulation-point segments by structural hash.

    The forward subgraph is cut at its articulation points -- the same cut
    vertices the ``AP`` baselines checkpoint at (paper Appendix B.1) -- into
    contiguous segments, each spanning two consecutive cut vertices
    inclusively.  Segments whose induced subgraphs have equal
    :func:`structural_graph_hash` are isomorphic as far as any solver is
    concerned: same costs, memories and internal wiring.  Repeated residual
    blocks and repeated stages land in one group, which is how the analysis
    statistics quantify "how much of this model is copy-pasted structure".

    Returns a mapping ``digest -> [segment, ...]`` with each segment a tuple
    of original node ids; only digests with at least one segment appear, and
    groups with two or more members are the repeated blocks.
    """
    forward = graph.forward_nodes()
    if len(forward) < 3:
        return {}
    cuts = articulation_points(graph, restrict_to=forward)
    boundaries = sorted(set(cuts) | {forward[0], forward[-1]})
    if len(boundaries) < 2:
        return {}
    forward_set = set(forward)
    groups: Dict[str, List[Tuple[int, ...]]] = {}
    for lo, hi in zip(boundaries, boundaries[1:]):
        segment = tuple(i for i in range(lo, hi + 1) if i in forward_set)
        if len(segment) < 2:
            continue
        digest = structural_graph_hash(graph.induced_subgraph(segment))
        groups.setdefault(digest, []).append(segment)
    return groups
