"""Static analysis over :class:`~repro.core.dfgraph.DFGraph`: passes + linting.

This package is the graph-level counterpart of the compiled-formulation work
in :mod:`repro.solvers.compiled`: instead of making one MILP compile fast, it
makes the MILP *smaller* before it is ever compiled, and it checks graphs for
structural defects before solver time is spent on them.

Three layers, mirroring a classic compiler pipeline:

* :mod:`repro.analysis.analyses` -- pure, side-effect-free analyses
  (liveness/last-use intervals, reachability from the loss and gradient
  outputs, structural hashing, isomorphic-segment detection).  Nothing here
  mutates or rebuilds a graph.
* :mod:`repro.analysis.passes` -- verified transforms driven by a fixed-point
  :class:`~repro.analysis.passes.PassManager`: dead-node elimination and
  zero-cost chain fusion, each emitting a :class:`~repro.analysis.passes.NodeProvenance`
  so schedules solved on the optimized graph decode back onto the original
  one, stage for stage.
* :mod:`repro.analysis.lint` -- a structured-diagnostics linter
  (severity/code/node locus) surfaced as ``repro lint``, ``POST /v1/lint``
  and a warn-only pre-solve hook inside
  :class:`~repro.service.solve.SolveService`.
"""

from .analyses import (
    dead_nodes,
    isomorphic_segment_groups,
    live_node_mask,
    live_roots,
    liveness_intervals,
    reachable_from,
    structural_graph_hash,
)
from .lint import Diagnostic, LintReport, lint_graph, lint_graph_cached
from .passes import (
    DeadNodeElimination,
    NodeProvenance,
    OptimizationResult,
    PassManager,
    ZeroCostChainFusion,
    optimize_graph,
)

__all__ = [
    "Diagnostic",
    "DeadNodeElimination",
    "LintReport",
    "NodeProvenance",
    "OptimizationResult",
    "PassManager",
    "ZeroCostChainFusion",
    "dead_nodes",
    "isomorphic_segment_groups",
    "lint_graph",
    "lint_graph_cached",
    "live_node_mask",
    "live_roots",
    "liveness_intervals",
    "optimize_graph",
    "reachable_from",
    "structural_graph_hash",
]
