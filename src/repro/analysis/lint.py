"""Structured graph diagnostics: severity / code / node locus.

The linter turns the analyses into actionable findings *before* solver time
is spent: a malformed graph fails fast with an ``error``, a suspicious one
solves anyway but explains itself through ``warning``/``info`` diagnostics.
Surfaced three ways: the ``repro lint`` CLI verb, ``POST /v1/lint`` on the
serve daemon, and a warn-only hook inside
:meth:`~repro.service.solve.SolveService.solve` (memoized by content hash, so
a sweep lints each graph once, not once per cell).

Diagnostic codes
----------------

====  ========  ===========================================================
code  severity  meaning
====  ========  ===========================================================
G001  warning   empty graph (no nodes; nothing to solve)
R001  warning   node unreachable from the loss / gradient outputs (dead)
M001  error     ``meta['grad_index']``/``n_forward`` inconsistent with the
                graph (bad range, non-backward target, wrong count)
M002  error     positional op metadata (``op_types``/``op_attrs``/
                ``shapes``/``flops``/``params``) has the wrong length
C001  error     non-finite cost or memory (NaN/inf survives the
                constructor's sign check but poisons the MILP)
C002  info      zero-cost single-input node -- a fusion candidate the
                canonicalizer would merge into its dependency
T001  error     a forward node depends on a backward node (the topological
                numbering cannot represent a training step's dataflow)
B001  warning   requested budget sits below the arithmetic minimum-feasible
                floor; the exact solvers will prove infeasibility
====  ========  ===========================================================

``DFGraph.__post_init__`` already rejects cyclic/out-of-order edges and
negative costs outright, so the linter never sees those; it covers the
defects the constructor is too cheap to catch.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.dfgraph import DFGraph
from .analyses import dead_nodes

__all__ = ["Diagnostic", "LintReport", "lint_graph", "lint_graph_cached"]

SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, a severity, a message and a node locus."""

    code: str
    severity: str
    message: str
    node: Optional[int] = None
    node_name: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "node": self.node,
            "node_name": self.node_name,
        }


@dataclass
class LintReport:
    """All diagnostics for one graph, plus enough context to render them."""

    graph_name: str
    graph_size: int
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == "error")

    @property
    def warnings(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == "warning")

    @property
    def infos(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == "info")

    @property
    def ok(self) -> bool:
        """No errors (warnings and infos do not fail a lint)."""
        return self.errors == 0

    def counts(self) -> Dict[str, int]:
        return {"error": self.errors, "warning": self.warnings,
                "info": self.infos}

    def to_dict(self) -> dict:
        return {
            "graph": self.graph_name,
            "nodes": self.graph_size,
            "ok": self.ok,
            "counts": self.counts(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def summary(self) -> str:
        return (f"lint {self.graph_name!r}: {self.errors} error(s), "
                f"{self.warnings} warning(s), {self.infos} info(s)")


def _diag(out: List[Diagnostic], graph: DFGraph, code: str, severity: str,
          message: str, node: Optional[int] = None) -> None:
    name = graph.nodes[node].name if node is not None else None
    out.append(Diagnostic(code=code, severity=severity, message=message,
                          node=node, node_name=name))


def _check_meta(out: List[Diagnostic], graph: DFGraph) -> None:
    meta = graph.meta or {}
    n = graph.size
    forward = graph.forward_nodes()
    n_forward = meta.get("n_forward")
    if n_forward is not None and int(n_forward) != len(forward):
        _diag(out, graph, "M001", "error",
              f"meta['n_forward'] = {n_forward} but the graph has "
              f"{len(forward)} forward nodes")
    grad_index = meta.get("grad_index")
    if grad_index is not None:
        if not isinstance(grad_index, dict):
            _diag(out, graph, "M001", "error",
                  f"meta['grad_index'] must be a dict, got "
                  f"{type(grad_index).__name__}")
        else:
            for fwd, grad in grad_index.items():
                fwd, grad = int(fwd), int(grad)
                if not (0 <= fwd < n) or not (0 <= grad < n):
                    _diag(out, graph, "M001", "error",
                          f"grad_index entry {fwd} -> {grad} is out of range "
                          f"for a {n}-node graph")
                    continue
                if graph.nodes[fwd].is_backward:
                    _diag(out, graph, "M001", "error",
                          f"grad_index key {fwd} is itself a backward node",
                          node=fwd)
                if not graph.nodes[grad].is_backward:
                    _diag(out, graph, "M001", "error",
                          f"grad_index target {grad} (gradient of {fwd}) is "
                          f"not a backward node", node=grad)
    lists = {key: meta.get(key) for key in
             ("op_types", "op_attrs", "shapes", "flops", "params")}
    present = {key: val for key, val in lists.items() if val is not None}
    expected = int(n_forward) if n_forward is not None else len(forward)
    for key, val in present.items():
        if not isinstance(val, (list, tuple)):
            _diag(out, graph, "M002", "error",
                  f"meta[{key!r}] must be a per-layer sequence, got "
                  f"{type(val).__name__}")
        elif len(val) != expected:
            _diag(out, graph, "M002", "error",
                  f"meta[{key!r}] has {len(val)} entries for "
                  f"{expected} forward nodes")


def lint_graph(graph: DFGraph, *, budget: Optional[float] = None) -> LintReport:
    """Run every check against ``graph`` and return a :class:`LintReport`.

    ``budget`` (bytes) is optional; when given, the ``B001`` feasibility
    pre-check compares it against the same arithmetic floor the warm-start
    machinery short-circuits infeasible sweep cells with, so the linter and
    the solvers agree about which budgets are hopeless.
    """
    report = LintReport(graph_name=graph.name, graph_size=graph.size)
    out = report.diagnostics
    if graph.size == 0:
        _diag(out, graph, "G001", "warning", "graph has no nodes")
        return report

    for i in dead_nodes(graph):
        _diag(out, graph, "R001", "warning",
              "node cannot reach the loss or any gradient output; "
              "dead-node elimination would remove it", node=i)

    _check_meta(out, graph)

    for i, node in enumerate(graph.nodes):
        if not math.isfinite(node.cost):
            _diag(out, graph, "C001", "error",
                  f"cost is {node.cost!r} (must be finite)", node=i)
        if not math.isfinite(node.memory):
            _diag(out, graph, "C001", "error",
                  f"memory is {node.memory!r} (must be finite)", node=i)

    terminal = graph.terminal_node
    for j in range(graph.size):
        parents = graph.deps[j]
        if (j != terminal and len(parents) == 1 and graph.cost(j) == 0.0
                and math.isfinite(graph.nodes[j].memory)
                and graph.nodes[parents[0]].is_backward
                == graph.nodes[j].is_backward):
            _diag(out, graph, "C002", "info",
                  f"zero-cost node with single input {parents[0]}; the "
                  "canonicalizer would fuse it into its dependency", node=j)
        if not graph.nodes[j].is_backward:
            for i in parents:
                if graph.nodes[i].is_backward:
                    _diag(out, graph, "T001", "error",
                          f"forward node depends on backward node {i}",
                          node=j)

    if budget is not None:
        # Imported lazily: repro.solvers pulls in scipy, which the pure
        # analyses deliberately avoid at import time.
        from ..solvers.warm import budget_floor_margin, min_feasible_budget_floor
        try:
            floor = min_feasible_budget_floor(graph)
            margin = budget_floor_margin(graph)
        except (ValueError, TypeError):
            floor = margin = None  # a graph broken enough to defeat the floor
        if floor is not None and float(budget) < floor - margin:
            _diag(out, graph, "B001", "warning",
                  f"budget {float(budget):.6g} B is below the minimum "
                  f"feasible floor {floor:.6g} B; exact solvers will prove "
                  "infeasibility")
    return report


_lint_memo_lock = threading.Lock()
_lint_memo: "OrderedDict[Tuple[str, Optional[str]], LintReport]" = OrderedDict()
_LINT_MEMO_MAX = 256


def lint_graph_cached(graph: DFGraph, *,
                      budget: Optional[float] = None) -> LintReport:
    """Memoized :func:`lint_graph`, keyed by content hash and budget.

    This is the pre-solve hook's entry point: sweeps re-solve the same graph
    across dozens of (strategy, budget) cells, and linting is pure, so one
    report per (graph, budget) is computed and replayed.  The memo is a small
    process-wide LRU; treat returned reports as immutable.
    """
    from ..service.hashing import graph_content_hash

    key = (graph_content_hash(graph),
           repr(float(budget)) if budget is not None else None)
    with _lint_memo_lock:
        cached = _lint_memo.get(key)
        if cached is not None:
            _lint_memo.move_to_end(key)
            return cached
    report = lint_graph(graph, budget=budget)
    with _lint_memo_lock:
        _lint_memo[key] = report
        _lint_memo.move_to_end(key)
        while len(_lint_memo) > _LINT_MEMO_MAX:
            _lint_memo.popitem(last=False)
    return report
