"""Fixed-point graph canonicalization: verified transforms with provenance.

The pass pipeline shrinks a :class:`~repro.core.dfgraph.DFGraph` *before* the
MILP is compiled, in the spirit of a compiler's canonicalization level: every
node removed deletes ``O(T)`` rows and columns from the formulation, so a
handful of fused nodes buys a measurable variables/nnz reduction (recorded in
``BENCH_PR9.json``).

Two transforms ship, both provably schedule-safe:

* :class:`DeadNodeElimination` -- drop nodes that cannot reach the loss or
  any gradient output.  The live set is ancestor-closed, so no kept node
  loses a dependency; dead nodes decode to all-zero ``R``/``S`` columns.
* :class:`ZeroCostChainFusion` -- merge a zero-cost single-input node ``j``
  (``flatten``, ``identity`` -- views in the original framework) into its
  sole dependency ``i``.  The fused node takes ``i``'s position and cost and
  the *sum* of both memories, and every consumer of either member is rewired
  to it.

The safety argument is the :class:`NodeProvenance` decode: a schedule solved
on the optimized graph maps back onto the original graph by copying the fused
node's ``R``/``S`` columns to every member.  Members are computed adjacently
in the same stage and are resident exactly when the fused node is, so the
decoded schedule's compute cost equals the optimized one's (the tail costs
zero) and its simulated peak equals the optimized peak byte for byte (the sum
``m_i + m_j`` is accounted wherever the members are).  The service's
:meth:`~repro.service.solve.SolveService.solve_canonicalized` re-checks both
equalities on every decode and the test-suite closes the loop with the PR 4
:class:`~repro.execution.report.ExecutionReport` (bit-exact outputs).

The converse direction -- that the *optimal* objective on the fused graph
equals the optimal on the original -- is deliberately not claimed as a
theorem: the original graph may free a fused member early where the fused
graph holds both together.  At the moderate budgets the benchmarks solve
under, the objectives come out identical, and ``BENCH_PR9.json`` asserts
exactly that, empirically, per preset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.dfgraph import DFGraph, NodeInfo
from ..core.schedule import ScheduleMatrices
from .analyses import isomorphic_segment_groups, live_node_mask

__all__ = [
    "NodeProvenance",
    "DeadNodeElimination",
    "ZeroCostChainFusion",
    "PassManager",
    "OptimizationResult",
    "optimize_graph",
]


@dataclass(frozen=True)
class NodeProvenance:
    """Bidirectional node mapping between an original and an optimized graph.

    ``orig_to_opt[i]`` is the optimized-graph node carrying original node
    ``i`` (``None`` when ``i`` was eliminated as dead code); ``opt_to_orig[k]``
    lists the original members of optimized node ``k`` in ascending original
    order.  Provenances compose across passes, so one object maps the final
    fixed point all the way back to the graph the user handed in.
    """

    orig_to_opt: Tuple[Optional[int], ...]
    opt_to_orig: Tuple[Tuple[int, ...], ...]

    @staticmethod
    def identity(n: int) -> "NodeProvenance":
        return NodeProvenance(tuple(range(n)), tuple((i,) for i in range(n)))

    @staticmethod
    def from_groups(n_original: int,
                    groups: Sequence[Tuple[int, ...]]) -> "NodeProvenance":
        orig_to_opt: List[Optional[int]] = [None] * n_original
        for k, members in enumerate(groups):
            for m in members:
                orig_to_opt[m] = k
        return NodeProvenance(tuple(orig_to_opt),
                              tuple(tuple(members) for members in groups))

    @property
    def original_size(self) -> int:
        return len(self.orig_to_opt)

    @property
    def optimized_size(self) -> int:
        return len(self.opt_to_orig)

    def compose(self, later: "NodeProvenance") -> "NodeProvenance":
        """Chain ``self`` (A -> B) with ``later`` (B -> C) into A -> C."""
        if later.original_size != self.optimized_size:
            raise ValueError(
                f"cannot compose: intermediate sizes differ "
                f"({self.optimized_size} vs {later.original_size})")
        opt_to_orig = tuple(
            tuple(sorted(m for b in members for m in self.opt_to_orig[b]))
            for members in later.opt_to_orig
        )
        orig_to_opt = tuple(
            later.orig_to_opt[b] if b is not None else None
            for b in self.orig_to_opt
        )
        return NodeProvenance(orig_to_opt, opt_to_orig)

    def decode_matrices(self, original: DFGraph,
                        matrices: ScheduleMatrices) -> ScheduleMatrices:
        """Map an optimized-graph schedule back onto the original graph.

        Every member of optimized node ``k`` inherits ``k``'s ``R`` and ``S``
        columns: members are computed adjacently in the same stage (head
        first -- ascending original order is a valid topological order within
        a fused chain) and checkpointed together.  Eliminated nodes get
        all-zero columns -- they are never computed, which is valid because
        no live node depends on a dead one.  The result validates under
        ``frontier_advancing=False`` (it has the optimized graph's stage
        count, not the original node count).
        """
        if matrices.num_nodes != self.optimized_size:
            raise ValueError(
                f"schedule width {matrices.num_nodes} does not match the "
                f"optimized graph size {self.optimized_size}")
        if original.size != self.original_size:
            raise ValueError(
                f"graph size {original.size} does not match the provenance's "
                f"original size {self.original_size}")
        T = matrices.num_stages
        R = np.zeros((T, original.size), dtype=np.uint8)
        S = np.zeros((T, original.size), dtype=np.uint8)
        for k, members in enumerate(self.opt_to_orig):
            cols = list(members)
            R[:, cols] = matrices.R[:, [k]]
            S[:, cols] = matrices.S[:, [k]]
        return ScheduleMatrices(R, S)

    def to_dict(self) -> dict:
        return {
            "orig_to_opt": list(self.orig_to_opt),
            "opt_to_orig": [list(m) for m in self.opt_to_orig],
        }


def _project(graph: DFGraph, groups: Sequence[Tuple[int, ...]],
             name: str) -> DFGraph:
    """Rebuild ``graph`` with each group of nodes collapsed into one node.

    Groups must be listed in ascending head (minimum-member) order; edges
    between groups are deduplicated, edges internal to a group disappear, and
    edges to nodes outside every group (dead code) are dropped.  The merged
    node sums its members' costs and memories, so ``total_cost`` and
    ``total_activation_memory`` are preserved by fusion.  The optimized graph
    carries no ``meta``: builder metadata (``op_types``, ``grad_index``...)
    is positional and would be inconsistent after a rewrite -- consumers that
    need it (execution binding, segmenting baselines) work on the *original*
    graph, which is what provenance-decoded schedules target.
    """
    index_of: Dict[int, int] = {}
    for k, members in enumerate(groups):
        for m in members:
            index_of[m] = k
    nodes: List[NodeInfo] = []
    deps: Dict[int, List[int]] = {}
    for k, members in enumerate(groups):
        head = graph.nodes[members[0]]
        if len(members) == 1:
            nodes.append(head)
        else:
            nodes.append(NodeInfo(
                name="+".join(graph.nodes[m].name for m in members),
                cost=float(sum(graph.nodes[m].cost for m in members)),
                memory=int(sum(graph.nodes[m].memory for m in members)),
                is_backward=head.is_backward,
                layer_id=head.layer_id,
            ))
        parents = set()
        for m in members:
            for p in graph.deps[m]:
                kp = index_of.get(p)
                if kp is not None and kp != k:
                    parents.add(kp)
        deps[k] = sorted(parents)
    return DFGraph(nodes=nodes, deps=deps, input_memory=graph.input_memory,
                   parameter_memory=graph.parameter_memory, name=name,
                   meta={})


def _canonical_name(graph: DFGraph) -> str:
    return graph.name if graph.name.endswith("@canon") else f"{graph.name}@canon"


class DeadNodeElimination:
    """Remove nodes that cannot influence the loss or any gradient output.

    Note that training graphs built by
    :func:`~repro.autodiff.make_training_graph` are never affected: every
    forward node there has a gradient sink, so everything is live.  The pass
    earns its keep on hand-built and imported graphs (debug heads, abandoned
    branches) and keeps the linter's ``R001`` diagnostic honest -- what it
    warns about is exactly what this pass would delete.
    """

    name = "dce"

    def run(self, graph: DFGraph) -> Optional[Tuple[DFGraph, NodeProvenance]]:
        mask = live_node_mask(graph)
        if bool(mask.all()):
            return None
        groups = [(int(i),) for i in np.flatnonzero(mask)]
        new_graph = _project(graph, groups, _canonical_name(graph))
        return new_graph, NodeProvenance.from_groups(graph.size, groups)


class ZeroCostChainFusion:
    """Fuse a zero-cost single-input node into its sole dependency.

    Candidate pair ``(i, j)``: ``deps(j) == (i,)``, ``cost(j) == 0.0``
    exactly, matching ``is_backward`` flags, and ``j`` is not the terminal
    node (the terminal's identity anchors constraint (1e)).  Consumers of
    either member are rewired to the fused node, whose memory is the sum
    ``m_i + m_j`` -- both values are held whenever the fused node is
    resident, which is what makes the provenance decode peak-exact.

    One pairwise round per invocation, disjoint pairs only; the
    :class:`PassManager`'s fixed-point loop collapses longer chains
    (``i -> j -> l``) across successive rounds.
    """

    name = "fusion"

    def run(self, graph: DFGraph) -> Optional[Tuple[DFGraph, NodeProvenance]]:
        merged: Dict[int, int] = {}  # tail j -> head i
        used: set = set()
        for j in range(graph.size):
            if j == graph.terminal_node or j in used:
                continue
            parents = graph.deps[j]
            if len(parents) != 1 or graph.cost(j) != 0.0:
                continue
            i = parents[0]
            if i in used or graph.nodes[i].is_backward != graph.nodes[j].is_backward:
                continue
            merged[j] = i
            used.add(i)
            used.add(j)
        if not merged:
            return None
        heads = {i: j for j, i in merged.items()}
        groups: List[Tuple[int, ...]] = []
        for v in range(graph.size):
            if v in merged:
                continue  # emitted with its head
            groups.append((v, heads[v]) if v in heads else (v,))
        new_graph = _project(graph, groups, _canonical_name(graph))
        return new_graph, NodeProvenance.from_groups(graph.size, groups)


@dataclass
class OptimizationResult:
    """A canonicalized graph plus the provenance and statistics behind it.

    ``stats`` follows the xi_optimizer convention -- one flat dict with a
    per-pass removal count, the number of fixed-point rounds, and the
    before/after sizes -- extended with edge counts, a convergence flag and
    the repeated-segment census from
    :func:`~repro.analysis.analyses.isomorphic_segment_groups`.
    """

    original: DFGraph
    graph: DFGraph
    provenance: NodeProvenance
    stats: Dict[str, object]

    @property
    def changed(self) -> bool:
        return self.graph.size != self.original.size

    def decode_matrices(self, matrices: ScheduleMatrices) -> ScheduleMatrices:
        return self.provenance.decode_matrices(self.original, matrices)


class PassManager:
    """Run a pass pipeline to a fixed point with a hard termination bound.

    Each round applies every pass once, threading the graph (and composing
    provenances) through; the loop stops when a full round changes nothing
    (``converged=True``) or after ``max_passes`` rounds (``converged=False``
    -- the bound is a safety net, every shipped pass strictly shrinks the
    node count so termination within ``n`` rounds is guaranteed anyway).
    """

    def __init__(self, passes: Optional[Sequence[object]] = None,
                 max_passes: int = 10) -> None:
        if max_passes < 1:
            raise ValueError("max_passes must be at least 1")
        self.passes = list(passes) if passes is not None else [
            DeadNodeElimination(), ZeroCostChainFusion(),
        ]
        self.max_passes = int(max_passes)

    def run(self, graph: DFGraph) -> OptimizationResult:
        current = graph
        provenance = NodeProvenance.identity(graph.size)
        removed = {p.name: 0 for p in self.passes}
        rounds = 0
        converged = False
        while rounds < self.max_passes:
            rounds += 1
            changed = False
            for p in self.passes:
                out = p.run(current)
                if out is None:
                    continue
                new_graph, step = out
                removed[p.name] += current.size - new_graph.size
                current = new_graph
                provenance = provenance.compose(step)
                changed = True
            if not changed:
                converged = True
                break
        segments = isomorphic_segment_groups(graph)
        repeated = {d: segs for d, segs in segments.items() if len(segs) > 1}
        stats: Dict[str, object] = dict(removed)
        stats.update({
            "passes": rounds,
            "converged": converged,
            "original_size": graph.size,
            "optimized_size": current.size,
            "original_edges": graph.num_edges,
            "optimized_edges": current.num_edges,
            "nodes_removed": graph.size - current.size,
            "edges_removed": graph.num_edges - current.num_edges,
            "isomorphic_groups": len(repeated),
            "isomorphic_segments": sum(len(s) for s in repeated.values()),
        })
        return OptimizationResult(original=graph, graph=current,
                                  provenance=provenance, stats=stats)


def optimize_graph(graph: DFGraph, *, max_passes: int = 10,
                   passes: Optional[Sequence[object]] = None) -> OptimizationResult:
    """Canonicalize a graph with the default (or a custom) pass pipeline."""
    return PassManager(passes=passes, max_passes=max_passes).run(graph)
