"""One solver registry for the whole system.

Before this layer there were two half-registries: ``baselines.STRATEGIES``
(Table 1 heuristics plus the two Checkmate solvers, with ad-hoc kwargs decided
at every callsite) and the loose functions in :mod:`repro.solvers` that were
never registered at all (branch-and-bound, min-R).  :class:`SolverRegistry`
absorbs both behind a single :class:`Solver` protocol:

``solve(graph, budget=None, **kwargs) -> ScheduledResult``

Each :class:`SolverSpec` additionally carries

* the qualitative Table 1 capability flags (so the strategy-matrix experiment
  renders straight from the registry),
* an ``option_map`` translating typed :class:`~repro.service.options.
  SolverOptions` fields into that solver's keyword names -- the replacement
  for per-callsite ``if key == "checkmate_ilp"`` special-casing, and
* structural attributes (``linear_only``, ``has_budget_knob``) the sweep
  planner uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Protocol

from ..core.dfgraph import DFGraph
from ..core.schedule import ScheduledResult

__all__ = ["Solver", "SolverSpec", "SolverRegistry", "default_registry"]


class Solver(Protocol):
    """The uniform solve contract every registered strategy satisfies."""

    def __call__(self, graph: DFGraph, budget: Optional[float] = None,
                 **kwargs: object) -> ScheduledResult: ...


@dataclass(frozen=True)
class SolverSpec:
    """A registered solver plus everything the service needs to drive it.

    ``general_graphs`` / ``cost_aware`` / ``memory_aware`` mirror the columns
    of the paper's Table 1 (``True``, ``False`` or ``"~"`` for partial).
    ``in_table1`` marks the ten strategies the paper tabulates; extra solvers
    (reference branch-and-bound, raw min-R) register with it unset so the
    rendered table stays faithful to the paper.
    """

    key: str
    description: str
    solve: Callable[..., ScheduledResult]
    general_graphs: object = True
    cost_aware: object = True
    memory_aware: object = True
    linear_only: bool = False
    has_budget_knob: bool = True
    in_table1: bool = False
    option_map: Mapping[str, str] = field(default_factory=dict)
    #: Whether the solver routes through the MILP/LP formulation of Eq. (9);
    #: the sweep executor precompiles the shared CompiledFormulation for these
    #: so parallel budget cells never queue behind a cold compile.
    uses_formulation: bool = False
    #: Whether the solver accepts a ``warm_start=`` WarmSeed keyword and can
    #: exploit a neighboring budget's incumbent.  Only *exact* solvers qualify:
    #: their optimum is monotone in budget, so a fitting proven seed transfers.
    #: The LP-rounding approximation does not (its LP is solved at
    #: ``(1 - allowance) * budget``, coupling the solution to the budget), and
    #: heuristics have no incumbent to seed.
    warm_start_capable: bool = False
    #: Whether the solver accepts a ``should_cancel=`` zero-arg hook and polls
    #: it cooperatively mid-solve (between rounding candidates, between race
    #: entrants).  The service forwards its own hook to these solvers so a
    #: cancel/deadline can reap work *inside* a solve, not just before it.
    accepts_should_cancel: bool = False


class SolverRegistry:
    """Mutable name -> :class:`SolverSpec` mapping with ordered iteration."""

    def __init__(self, specs: Optional[Mapping[str, SolverSpec]] = None) -> None:
        self._specs: Dict[str, SolverSpec] = dict(specs or {})

    def register(self, spec: SolverSpec, *, overwrite: bool = False) -> SolverSpec:
        """Add a solver; refuses to silently replace one unless ``overwrite``."""
        if spec.key in self._specs and not overwrite:
            raise KeyError(f"solver {spec.key!r} already registered")
        self._specs[spec.key] = spec
        return spec

    def get(self, key: str) -> SolverSpec:
        if key not in self._specs:
            raise KeyError(
                f"unknown solver {key!r}; available: {', '.join(sorted(self._specs))}"
            )
        return self._specs[key]

    def keys(self) -> List[str]:
        return list(self._specs)

    def __contains__(self, key: str) -> bool:
        return key in self._specs

    def __iter__(self) -> Iterator[SolverSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def table1_entries(self) -> List[SolverSpec]:
        """The strategies of the paper's Table 1, in registration order."""
        return [spec for spec in self if spec.in_table1]

    def copy(self) -> "SolverRegistry":
        return SolverRegistry(self._specs)


#: SolverOptions fields the MILP solver understands.
_ILP_OPTIONS = {
    "time_limit_s": "time_limit_s",
    "mip_gap": "mip_gap",
    "generate_plan": "generate_plan",
}
#: SolverOptions fields the LP-rounding approximation understands.  Note the
#: MILP time limit (``time_limit_s``) deliberately does NOT reach the LP: the
#: experiments pass tight MILP limits that would otherwise silently shrink the
#: LP's generous 600 s default; use ``lp_time_limit_s`` to bound the LP.
_APPROX_OPTIONS = {
    "lp_time_limit_s": "lp_time_limit_s",
    "allowance": "allowance",
    "rounding_mode": "mode",
    "num_samples": "num_samples",
    "seed": "seed",
    "generate_plan": "generate_plan",
}

_EXTRA_OPTION_MAPS: Dict[str, Mapping[str, str]] = {
    "checkmate_ilp": _ILP_OPTIONS,
    "checkmate_approx": _APPROX_OPTIONS,
}

#: SolverOptions fields the rounding-portfolio schemes understand.  Unlike the
#: legacy approximation there is no ``rounding_mode``: the scheme *is* the
#: strategy key, so mode never needs to travel as an option.
_PORTFOLIO_OPTIONS = {
    "lp_time_limit_s": "lp_time_limit_s",
    "allowance": "allowance",
    "num_samples": "num_samples",
    "seed": "seed",
    "generate_plan": "generate_plan",
}

#: SolverOptions fields the race meta-solver understands.  ``deadline_s`` and
#: ``entrants`` are part of the option map on purpose: they enter the plan
#: cache token, so schedules raced under different SLOs or entrant sets never
#: alias one another in the cache.
_RACE_OPTIONS = {
    "deadline_s": "deadline_s",
    "entrants": "entrants",
    "time_limit_s": "time_limit_s",
    "lp_time_limit_s": "lp_time_limit_s",
    "allowance": "allowance",
    "num_samples": "num_samples",
    "seed": "seed",
    "generate_plan": "generate_plan",
}

#: Strategies that solve (a relaxation of) the Eq. (9) MILP and therefore
#: share the compiled budget-independent formulation arrays.
_FORMULATION_STRATEGIES = frozenset({"checkmate_ilp", "checkmate_approx"})

#: One-line descriptions of the four portfolio schemes (ROADMAP item 1).
_PORTFOLIO_DESCRIPTIONS = {
    "approx_fixed_half": "Two-phase LP rounding at the paper's fixed 0.5 "
                         "threshold (portfolio baseline).",
    "approx_threshold_sweep": "Deterministic sweep over the distinct S* "
                              "thresholds; cheapest feasible rounding wins.",
    "approx_random_threshold": "Seeded uniform random thresholds on S*; "
                               "cheapest feasible rounding wins.",
    "approx_randomized": "Fully randomized Bernoulli(S*) rounding with "
                         "feasibility retries.",
}

#: Exact solvers that accept ``warm_start=`` (see SolverSpec.warm_start_capable).
_WARM_CAPABLE_STRATEGIES = frozenset({"checkmate_ilp", "checkmate_bnb"})


def default_registry() -> SolverRegistry:
    """Build the canonical registry: Table 1 strategies + the extra solvers.

    The ten ``baselines.STRATEGIES`` entries are absorbed with their Table 1
    flags intact; the previously unregistered solvers from :mod:`repro.solvers`
    (reference branch-and-bound, explicit-checkpoint min-R) are added behind
    the same protocol.
    """
    from ..baselines.strategies import STRATEGIES
    from ..solvers.branch_and_bound import solve_branch_and_bound_schedule
    from ..solvers.min_r import solve_min_r_schedule
    from ..solvers.race import solve_race
    from ..solvers.rounding_portfolio import (
        PORTFOLIO_SCHEMES,
        solve_portfolio_fixed_half,
        solve_portfolio_random_threshold,
        solve_portfolio_randomized,
        solve_portfolio_threshold_sweep,
    )

    registry = SolverRegistry()
    for info in STRATEGIES.values():
        registry.register(SolverSpec(
            key=info.key,
            description=info.description,
            solve=info.solve,
            general_graphs=info.general_graphs,
            cost_aware=info.cost_aware,
            memory_aware=info.memory_aware,
            linear_only=info.linear_only,
            has_budget_knob=info.has_budget_knob,
            in_table1=True,
            option_map=_EXTRA_OPTION_MAPS.get(info.key, {}),
            uses_formulation=info.key in _FORMULATION_STRATEGIES,
            warm_start_capable=info.key in _WARM_CAPABLE_STRATEGIES,
        ))
    registry.register(SolverSpec(
        key="checkmate_bnb",
        description="Reference LP-based branch-and-bound (exact, tiny graphs only).",
        solve=solve_branch_and_bound_schedule,
        option_map={"max_nodes": "max_nodes", "generate_plan": "generate_plan"},
        uses_formulation=True,
        warm_start_capable=True,
    ))
    registry.register(SolverSpec(
        key="min_r",
        description="Min-R completion of an explicit checkpoint set.",
        solve=solve_min_r_schedule,
        cost_aware=False,
        memory_aware=False,
        has_budget_knob=False,
        option_map={"checkpoints": "checkpoints", "generate_plan": "generate_plan"},
    ))
    portfolio_solvers = {
        "fixed_half": solve_portfolio_fixed_half,
        "threshold_sweep": solve_portfolio_threshold_sweep,
        "random_threshold": solve_portfolio_random_threshold,
        "randomized": solve_portfolio_randomized,
    }
    for scheme in PORTFOLIO_SCHEMES:
        key = f"approx_{scheme}"
        registry.register(SolverSpec(
            key=key,
            description=_PORTFOLIO_DESCRIPTIONS[key],
            solve=portfolio_solvers[scheme],
            option_map=_PORTFOLIO_OPTIONS,
            uses_formulation=True,
            accepts_should_cancel=True,
        ))
    registry.register(SolverSpec(
        key="race",
        description="Deadline race: portfolio schemes + exact ILP in "
                    "parallel; best feasible within deadline_s wins.",
        solve=solve_race,
        option_map=_RACE_OPTIONS,
        uses_formulation=True,
        accepts_should_cancel=True,
    ))
    return registry
