"""Bisection-driven Pareto frontier tracing (memory budget vs recompute cost).

A budget sweep samples the memory-vs-recompute trade-off on a fixed grid, but
the frontier is a *staircase*: long flat steps (one optimal checkpoint set
serves a whole budget interval) separated by knees where the optimal schedule
changes.  Dense grids waste most of their solver calls re-discovering flat
steps.  :func:`trace_pareto_frontier` instead bisects the budget axis
recursively and stops early on any segment whose endpoint costs already agree
-- for an exact solver the objective is monotone non-increasing in budget, so
equal endpoint costs prove every interior budget shares the same cost, i.e.
the segment is one flat step and needs no further probes.

Each probe is an ordinary :meth:`~repro.service.solve.SolveService.solve`, so
it lands in the plan cache and -- for warm-capable strategies -- is
automatically seeded from the nearest already-solved larger budget (the
bisection order guarantees such a neighbor exists for every probe after the
first).  The combination finds every knee to ``resolution`` precision with a
fraction of the solver calls a dense grid at the same resolution would spend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.dfgraph import DFGraph
from ..core.schedule import ScheduledResult, checkpoint_all_schedule
from ..core.simulator import schedule_peak_memory
from ..solvers.warm import min_feasible_budget_floor
from .options import SolverOptions

__all__ = ["ParetoPoint", "ParetoFront", "trace_pareto_frontier"]

#: Relative cost tolerance for declaring a segment flat.  Matches the default
#: MIP gap order of magnitude: two gap-optimal endpoint costs within this band
#: are the same frontier step for every practical purpose.
FLAT_RTOL = 2e-4


@dataclass(frozen=True)
class ParetoPoint:
    """One probed budget on the frontier."""

    budget: float
    feasible: bool
    compute_cost: float
    peak_memory: int
    solver_status: str

    def to_dict(self) -> dict:
        return {
            "budget": self.budget,
            "feasible": self.feasible,
            "compute_cost": self.compute_cost,
            "peak_memory": self.peak_memory,
            "solver_status": self.solver_status,
        }


@dataclass
class ParetoFront:
    """The traced frontier: probed points plus tracing metadata.

    ``points`` is sorted by ascending budget and includes infeasible probes
    (they delimit the feasibility boundary).  ``solver_calls`` counts *fresh*
    solver invocations spent on the trace (cache hits are free), which is the
    number a dense grid should be compared against.
    """

    graph_name: str
    strategy: str
    low: float
    high: float
    resolution: float
    points: List[ParetoPoint] = field(default_factory=list)
    solver_calls: int = 0
    solve_time_s: float = 0.0

    @property
    def feasible_points(self) -> List[ParetoPoint]:
        return [p for p in self.points if p.feasible]

    def knees(self, rtol: float = FLAT_RTOL) -> List[ParetoPoint]:
        """The first (cheapest-budget) point of each distinct cost step."""
        out: List[ParetoPoint] = []
        for point in self.feasible_points:
            if not out or abs(point.compute_cost - out[-1].compute_cost) > (
                rtol * max(abs(out[-1].compute_cost), 1.0)
            ):
                out.append(point)
        return out

    def to_dict(self) -> dict:
        return {
            "graph": self.graph_name,
            "strategy": self.strategy,
            "low": self.low,
            "high": self.high,
            "resolution": self.resolution,
            "solver_calls": self.solver_calls,
            "solve_time_s": self.solve_time_s,
            "num_points": len(self.points),
            "points": [p.to_dict() for p in self.points],
        }


def trace_pareto_frontier(
    service,
    graph: DFGraph,
    strategy: str = "checkmate_ilp",
    *,
    low: Optional[float] = None,
    high: Optional[float] = None,
    resolution: Optional[float] = None,
    options: Optional[SolverOptions] = None,
    use_cache: bool = True,
    should_cancel: Optional[Callable[[], bool]] = None,
) -> ParetoFront:
    """Trace the frontier of ``strategy`` on ``graph`` to ``resolution`` bytes.

    Defaults: ``high`` is the checkpoint-all peak (above it the trade-off is
    exhausted -- nothing needs recomputation), ``low`` is the arithmetic
    minimum-feasible-budget floor of the integral formulation, and
    ``resolution`` is 1/64 of the span.  The recursion probes both endpoints,
    then splits any segment that (a) is wider than ``resolution`` and (b) is
    not provably flat -- endpoints feasible with equal cost -- nor provably
    empty (upper endpoint infeasible: by monotonicity the whole segment is).

    The high endpoint is probed first so every later (smaller-budget) probe
    finds a cached larger neighbor to warm-seed from.
    """
    spec = service.registry.get(strategy)
    if not spec.has_budget_knob:
        raise ValueError(f"strategy {strategy!r} has no budget knob to trace")
    if high is None:
        high = float(schedule_peak_memory(graph, checkpoint_all_schedule(graph)))
    if low is None:
        low = min(float(min_feasible_budget_floor(graph)), high)
    low, high = float(low), float(high)
    if high < low:
        raise ValueError(f"pareto range is empty: low={low} > high={high}")
    if resolution is None:
        resolution = max((high - low) / 64.0, 1.0)
    resolution = float(resolution)
    if resolution <= 0:
        raise ValueError("resolution must be positive")

    evaluated: Dict[float, ScheduledResult] = {}
    calls_before = service.stats.solver_calls
    time_spent = 0.0

    def probe(budget: float) -> ScheduledResult:
        nonlocal time_spent
        budget = float(budget)
        if budget not in evaluated:
            result = service.solve(graph, strategy, budget, options,
                                   use_cache=use_cache,
                                   should_cancel=should_cancel)
            evaluated[budget] = result
            time_spent += result.solve_time_s or 0.0
        return evaluated[budget]

    def flat(a: ScheduledResult, c: ScheduledResult) -> bool:
        if not (a.feasible and c.feasible):
            return False
        scale = max(abs(a.compute_cost), abs(c.compute_cost), 1.0)
        return abs(a.compute_cost - c.compute_cost) <= FLAT_RTOL * scale

    def bisect(lo_b: float, hi_b: float) -> None:
        if hi_b - lo_b <= resolution:
            return
        res_lo, res_hi = evaluated[lo_b], evaluated[hi_b]
        if flat(res_lo, res_hi):
            return  # monotone cost: the whole segment is one frontier step
        if not res_hi.feasible:
            return  # infeasible at the top => infeasible everywhere below
        mid = (lo_b + hi_b) / 2.0
        probe(mid)
        # Upper half first: its endpoints are both already solved, and solving
        # high-to-low keeps a warm neighbor above every subsequent probe.
        bisect(mid, hi_b)
        bisect(lo_b, mid)

    # Endpoint order matters: high first, so the floor probe (and every
    # midpoint) can warm-seed from a cached larger-budget incumbent.
    probe(high)
    probe(low)
    if high > low:
        bisect(low, high)

    points = [
        ParetoPoint(
            budget=b,
            feasible=bool(r.feasible),
            compute_cost=float(r.compute_cost),
            peak_memory=int(r.peak_memory),
            solver_status=r.solver_status,
        )
        for b, r in sorted(evaluated.items())
    ]
    return ParetoFront(
        graph_name=graph.name,
        strategy=strategy,
        low=low,
        high=high,
        resolution=resolution,
        points=points,
        solver_calls=service.stats.solver_calls - calls_before,
        solve_time_s=time_spent,
    )
