"""The unified solve service: cached single solves and parallel sweeps.

Every figure and table in the paper's evaluation reduces to "solve the same
graph under many (strategy, budget) configurations".  :class:`SolveService` is
the one entry point for that workload:

* :meth:`SolveService.solve` -- solve one (graph, strategy, budget, options)
  cell through the unified registry, consulting the content-addressed plan
  cache first.  A warm cache answers without invoking any solver at all
  (``stats.solver_calls`` counts real invocations, which is how the tests
  assert cache effectiveness).
* :meth:`SolveService.sweep` -- fan a list of independent cells out over a
  thread pool (``concurrent.futures``) and return results in *cell order*.
  The underlying HiGHS solves release the GIL, so independent MILP/LP cells
  genuinely overlap.  For solves that run to completion the results are
  identical to a sequential run; the one caveat is wall-clock *time-limited*
  MILP cells, whose incumbent at the limit can differ under CPU contention --
  pass ``parallel=False`` (or generous limits) when exact sequential
  reproducibility of time-limited cells matters.

Failure semantics: a strategy raising
:class:`~repro.core.schedule.StrategyNotApplicableError` (e.g. Griewank on a
non-linear graph) yields an infeasible ``not-applicable`` result instead of
aborting the sweep; pass ``strict=True`` to re-raise instead.  Any other
``ValueError`` -- misconfigured options, an invalid schedule -- always
propagates, so misuse is never silently reported as infeasibility.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.dfgraph import DFGraph
from ..core.schedule import ScheduledResult, StrategyNotApplicableError
from ..solvers.compiled import compiled_formulation_enabled, get_formulation_cache
from .cache import PlanCache, PlanCacheKey
from .hashing import graph_content_hash
from .options import SolverOptions
from .registry import SolverRegistry, SolverSpec, default_registry

__all__ = ["SolveStats", "SweepCell", "SolveService", "SolveCancelledError",
           "get_default_service", "set_default_service", "parallel_map"]


class SolveCancelledError(RuntimeError):
    """A solve was cancelled (via ``should_cancel``) before the solver ran.

    Cooperative cancellation: the hook is consulted at well-defined points --
    on entry and again right before the solver is invoked -- so a cancel
    request that arrives while a solver is already inside HiGHS lets the
    solve finish (and populate the cache) rather than tearing it down.  The
    solve-as-a-service job queue maps this exception onto the ``cancelled``
    job state.
    """


def parallel_map(fn: Callable, items: Sequence, *, max_workers: Optional[int] = None,
                 parallel: bool = True,
                 thread_name_prefix: str = "repro-pool") -> List:
    """Map ``fn`` over ``items`` on a thread pool, preserving item order.

    The shared fan-out primitive behind :meth:`SolveService.sweep` and the
    experiment-level parallelism (e.g. ``max_batch_experiment``).  Falls back
    to a plain sequential loop for a single worker or ``parallel=False``.
    """
    items = list(items)
    if not items:
        return []
    workers = max_workers or min(len(items), os.cpu_count() or 1)
    if not parallel or workers <= 1 or len(items) == 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=workers,
                            thread_name_prefix=thread_name_prefix) as pool:
        return list(pool.map(fn, items))


@dataclass
class SolveStats:
    """Counters describing what the service actually did (thread safe).

    ``cache_hits``/``cache_misses`` only count solves that consulted the
    cache; with caching disabled (``cache=None`` or ``use_cache=False``)
    neither counter moves.  ``executions`` counts :meth:`SolveService.execute`
    runs (each also shows up as a solve or a cache hit).
    """

    solver_calls: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executions: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, *, solver_call: bool, cache_hit: Optional[bool]) -> None:
        with self._lock:
            if solver_call:
                self.solver_calls += 1
            if cache_hit is True:
                self.cache_hits += 1
            elif cache_hit is False:
                self.cache_misses += 1

    def record_execution(self) -> None:
        with self._lock:
            self.executions += 1

    def reset(self) -> None:
        with self._lock:
            self.solver_calls = self.cache_hits = self.cache_misses = 0
            self.executions = 0


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work: a strategy at a budget."""

    strategy: str
    budget: Optional[float] = None
    options: Optional[SolverOptions] = None


#: Infeasibility verdicts that are deterministic and therefore safe to cache:
#: proven infeasibility, heuristics whose search exhausted deterministically,
#: and the (seeded) rounding failing the budget.  Notably absent: the MILP's
#: bare "time_limit" (no incumbent at the wall-clock limit) and the LP's
#: "lp-status-*" limits, which are load-dependent.
_PROVEN_INFEASIBLE_MARKERS = ("infeasible", "over-budget", "no-feasible-b",
                              "rounding-exceeded-budget")


def _cacheable(result: ScheduledResult) -> bool:
    """Whether a result may be replayed from the cache.

    Feasible schedules are always cacheable (a time-limit incumbent is still a
    correct schedule).  An *infeasible* verdict is only cacheable when the
    solver proved it; "no incumbent at the wall-clock limit" is load-dependent,
    and caching it -- especially on disk -- would replay a transient timeout
    as permanent infeasibility.
    """
    if result.feasible:
        return True
    status = result.solver_status
    return any(marker in status for marker in _PROVEN_INFEASIBLE_MARKERS)


_UNSET_CACHE = object()


class SolveService:
    """Registry + cache + executor behind one ``solve``/``sweep`` API.

    Pass ``cache=None`` to disable caching for this service; by default each
    service owns a fresh in-memory :class:`PlanCache`.
    """

    def __init__(
        self,
        registry: Optional[SolverRegistry] = None,
        cache: object = _UNSET_CACHE,
        *,
        default_options: Optional[SolverOptions] = None,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.cache: Optional[PlanCache] = (
            PlanCache() if cache is _UNSET_CACHE else cache  # type: ignore[assignment]
        )
        self.default_options = default_options or SolverOptions()
        self.stats = SolveStats()

    # ------------------------------------------------------------------ #
    # Single solve
    # ------------------------------------------------------------------ #
    def solve(
        self,
        graph: DFGraph,
        strategy: str,
        budget: Optional[float] = None,
        options: Optional[SolverOptions] = None,
        *,
        use_cache: bool = True,
        strict: bool = False,
        should_cancel: Optional[Callable[[], bool]] = None,
    ) -> ScheduledResult:
        """Solve one cell, answering from the plan cache when possible.

        Treat the returned result as immutable: cache hits hand the same
        object to every caller, so in-place mutation (of ``matrices``,
        ``extra``, ``plan``) would corrupt later lookups of the same cell.

        ``should_cancel`` is the cooperative cancellation hook: a zero-arg
        callable polled on entry and again after a cache miss, immediately
        before the solver is invoked.  When it returns true the solve raises
        :class:`SolveCancelledError` instead of spending solver time.  A
        cache *hit* still returns normally -- answering from the cache is
        free, so there is nothing worth cancelling.
        """
        if should_cancel is not None and should_cancel():
            raise SolveCancelledError(f"solve of {strategy!r} cancelled before start")
        spec = self.registry.get(strategy)
        options = options if options is not None else self.default_options

        key: Optional[PlanCacheKey] = None
        if use_cache and self.cache is not None:
            key = PlanCacheKey.build(
                graph_content_hash(graph), spec.key,
                budget, options.cache_token(spec.option_map),
            )
            cached = self.cache.get(key, graph)
            if cached is not None:
                self.stats.record(solver_call=False, cache_hit=True)
                return cached

        if should_cancel is not None and should_cancel():
            raise SolveCancelledError(f"solve of {strategy!r} cancelled before solver start")
        result, applicable = self._invoke(spec, graph, budget, options, strict=strict)
        self.stats.record(solver_call=True, cache_hit=False if key is not None else None)
        # "not-applicable" placeholders (the strategy raised before solving) are
        # never cached: they cost nothing to reproduce, and caching them would
        # make a later strict=True call return a placeholder instead of raising.
        if key is not None and applicable and _cacheable(result):
            self.cache.put(key, result)
        return result

    def _invoke(self, spec: SolverSpec, graph: DFGraph, budget: Optional[float],
                options: SolverOptions, *, strict: bool):
        kwargs = options.kwargs_for(spec.option_map)
        try:
            return spec.solve(graph, budget, **kwargs), True
        except StrategyNotApplicableError as exc:
            # Only structural inapplicability is converted; any other
            # ValueError (bad options, invalid schedule) propagates.
            if strict:
                raise
            from ..solvers.common import build_scheduled_result
            return build_scheduled_result(
                spec.key, graph, None,
                budget=int(budget) if budget is not None else None,
                feasible=False, solver_status=f"not-applicable: {exc}",
            ), False

    # ------------------------------------------------------------------ #
    # Solve-and-execute
    # ------------------------------------------------------------------ #
    def execute(
        self,
        numeric_or_graph,
        strategy: str,
        budget: Optional[float] = None,
        options: Optional[SolverOptions] = None,
        *,
        seed: int = 0,
        use_cache: bool = True,
        strict: bool = False,
        should_cancel: Optional[Callable[[], bool]] = None,
        record_outputs: Optional[Sequence[int]] = None,
    ):
        """Solve one cell, lower it, run it over NumPy tensors, cross-check.

        ``numeric_or_graph`` is either a ready
        :class:`~repro.execution.ops.NumericGraph` or a plain
        :class:`~repro.core.dfgraph.DFGraph` carrying builder metadata, in
        which case it is bound via
        :func:`~repro.execution.bind_numeric_graph` with ``seed``.  The solve
        itself goes through :meth:`solve` (plan cache included -- a warm
        cache means *execute* pays only for the actual tensor computation).

        Returns the :class:`~repro.execution.report.ExecutionReport`
        comparing measured peak live bytes, recompute counts and outputs
        against the simulator predictions and checkpoint-all execution.
        Infeasible solves return a report with ``executed=False``.
        """
        from ..execution import NumericGraph, bind_numeric_graph, build_execution_report

        if isinstance(numeric_or_graph, NumericGraph):
            numeric = numeric_or_graph
        else:
            numeric = bind_numeric_graph(numeric_or_graph, seed=seed)
        result = self.solve(numeric.graph, strategy, budget, options,
                            use_cache=use_cache, strict=strict,
                            should_cancel=should_cancel)
        report = build_execution_report(numeric, result,
                                        record_outputs=record_outputs)
        self.stats.record_execution()
        return report

    # ------------------------------------------------------------------ #
    # Parallel fan-out
    # ------------------------------------------------------------------ #
    def sweep(
        self,
        graph: DFGraph,
        cells: Iterable[Union[SweepCell, Tuple[str, Optional[float]]]],
        *,
        options: Optional[SolverOptions] = None,
        max_workers: Optional[int] = None,
        parallel: bool = True,
        use_cache: bool = True,
        strict: bool = False,
        should_cancel: Optional[Callable[[], bool]] = None,
    ) -> List[ScheduledResult]:
        """Solve many independent cells, returning results in cell order.

        ``cells`` may be :class:`SweepCell` objects or bare ``(strategy,
        budget)`` tuples; a per-cell ``options`` overrides the sweep-wide one.
        With ``parallel=False`` (or a single worker) the cells run strictly
        sequentially.  For solves that complete (proven optimal/infeasible,
        heuristics, LPs) parallel results are identical to sequential ones;
        MILP cells that stop on a wall-clock time limit may return a
        different incumbent under parallel CPU contention.

        ``should_cancel`` is forwarded to every cell solve; once it returns
        true the next cell to start raises :class:`SolveCancelledError`,
        which aborts the sweep (cells already inside a solver run to
        completion and stay cached).
        """
        normalized: List[SweepCell] = []
        for cell in cells:
            if isinstance(cell, SweepCell):
                normalized.append(cell)
            else:
                strategy, budget = cell
                normalized.append(SweepCell(strategy=strategy, budget=budget))
        # Fail fast on unknown strategies before any thread spins up.
        for cell in normalized:
            self.registry.get(cell.strategy)
        if not normalized:
            return []

        # Compile the graph's MILP formulation once, up front, when any cell
        # will need it: every budget of the sweep then re-budgets the shared
        # CompiledFormulation in O(1), and parallel workers never pile up on
        # the formulation cache's cold-key single-flight lock.  On a sweep
        # fully served by a warm plan cache this compile (milliseconds, once
        # per process per graph -- the formulation cache is process-wide) is
        # the only work performed; the alternative, probing the plan cache for
        # every cell first, would cost more than it saves on any cold cell.
        if compiled_formulation_enabled() and any(
            self.registry.get(cell.strategy).uses_formulation for cell in normalized
        ):
            get_formulation_cache().get(graph)

        # Deduplicate identical cells: concurrent duplicates would all miss
        # the cold cache and each run the full solve.  SweepCell is frozen
        # (and options hashable), so effective cells key a dict directly.
        effective = [cell if cell.options is not None
                     else SweepCell(cell.strategy, cell.budget, options)
                     for cell in normalized]
        unique: List[SweepCell] = []
        index_of: dict = {}
        for cell in effective:
            if cell not in index_of:
                index_of[cell] = len(unique)
                unique.append(cell)

        def solve_cell(cell: SweepCell) -> ScheduledResult:
            return self.solve(graph, cell.strategy, cell.budget, cell.options,
                              use_cache=use_cache, strict=strict,
                              should_cancel=should_cancel)

        solved = parallel_map(solve_cell, unique, max_workers=max_workers,
                              parallel=parallel, thread_name_prefix="repro-sweep")
        return [solved[index_of[cell]] for cell in effective]

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def grid(self, strategies: Sequence[str], budgets: Sequence[Optional[float]],
             options: Optional[SolverOptions] = None) -> List[SweepCell]:
        """The cross product of strategies and budgets, in deterministic order."""
        return [SweepCell(strategy=s, budget=b, options=options)
                for s in strategies for b in budgets]

    def statistics(self) -> dict:
        """One merged snapshot of service activity and cache effectiveness.

        The ``cache`` sub-dict comes straight from :meth:`PlanCache.stats`
        (``None`` when caching is disabled); the top-level counters are this
        service's :class:`SolveStats`.  This is the payload behind the serve
        daemon's ``/v1/metrics``.
        """
        with self.stats._lock:
            snapshot = {
                "solver_calls": self.stats.solver_calls,
                "cache_hits": self.stats.cache_hits,
                "cache_misses": self.stats.cache_misses,
                "executions": self.stats.executions,
            }
        snapshot["registered_solvers"] = len(self.registry)
        snapshot["cache"] = self.cache.stats() if self.cache is not None else None
        # The compiled-formulation cache is process-wide (shared by every
        # service in the process), reported here so /v1/metrics exposes
        # compile-once effectiveness alongside the plan-cache hit rate.
        snapshot["formulation_cache"] = get_formulation_cache().stats()
        return snapshot


_default_service: Optional[SolveService] = None
_default_service_lock = threading.Lock()


def get_default_service() -> SolveService:
    """The process-wide shared service (lazy; cache shared across callers)."""
    global _default_service
    with _default_service_lock:
        if _default_service is None:
            _default_service = SolveService()
        return _default_service


def set_default_service(service: Optional[SolveService]) -> Optional[SolveService]:
    """Replace the process-wide service (pass ``None`` to reset); returns the old one."""
    global _default_service
    with _default_service_lock:
        previous, _default_service = _default_service, service
        return previous
