"""The unified solve service: cached single solves and parallel sweeps.

Every figure and table in the paper's evaluation reduces to "solve the same
graph under many (strategy, budget) configurations".  :class:`SolveService` is
the one entry point for that workload:

* :meth:`SolveService.solve` -- solve one (graph, strategy, budget, options)
  cell through the unified registry, consulting the content-addressed plan
  cache first.  A warm cache answers without invoking any solver at all
  (``stats.solver_calls`` counts real invocations, which is how the tests
  assert cache effectiveness).
* :meth:`SolveService.sweep` -- fan a list of independent cells out over a
  thread pool (``concurrent.futures``) and return results in *cell order*.
  The underlying HiGHS solves release the GIL, so independent MILP/LP cells
  genuinely overlap.  For solves that run to completion the results are
  identical to a sequential run; the one caveat is wall-clock *time-limited*
  MILP cells, whose incumbent at the limit can differ under CPU contention --
  pass ``parallel=False`` (or generous limits) when exact sequential
  reproducibility of time-limited cells matters.

Failure semantics: a strategy raising
:class:`~repro.core.schedule.StrategyNotApplicableError` (e.g. Griewank on a
non-linear graph) yields an infeasible ``not-applicable`` result instead of
aborting the sweep; pass ``strict=True`` to re-raise instead.  Any other
``ValueError`` -- misconfigured options, an invalid schedule -- always
propagates, so misuse is never silently reported as infeasibility.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.dfgraph import DFGraph
from ..core.schedule import ScheduledResult, StrategyNotApplicableError
from ..obs.trace import get_tracer
from ..solvers.compiled import compiled_formulation_enabled, get_formulation_cache
from ..solvers.warm import WarmSeed, warm_seed_from_result
from .cache import PlanCache, PlanCacheKey
from .hashing import graph_content_hash
from .options import SolverOptions
from .registry import SolverRegistry, SolverSpec, default_registry

__all__ = ["SolveStats", "SweepCell", "SolveService", "SolveCancelledError",
           "get_default_service", "set_default_service", "parallel_map"]

logger = logging.getLogger(__name__)


class SolveCancelledError(RuntimeError):
    """A solve was cancelled (via ``should_cancel``) before the solver ran.

    Cooperative cancellation: the hook is consulted at well-defined points --
    on entry and again right before the solver is invoked -- so a cancel
    request that arrives while a solver is already inside HiGHS lets the
    solve finish (and populate the cache) rather than tearing it down.  The
    solve-as-a-service job queue maps this exception onto the ``cancelled``
    job state.
    """


def parallel_map(fn: Callable, items: Sequence, *, max_workers: Optional[int] = None,
                 parallel: bool = True,
                 thread_name_prefix: str = "repro-pool") -> List:
    """Map ``fn`` over ``items`` on a thread pool, preserving item order.

    The shared fan-out primitive behind :meth:`SolveService.sweep` and the
    experiment-level parallelism (e.g. ``max_batch_experiment``).  Falls back
    to a plain sequential loop for a single worker or ``parallel=False``.
    """
    items = list(items)
    if not items:
        return []
    workers = max_workers or min(len(items), os.cpu_count() or 1)
    if not parallel or workers <= 1 or len(items) == 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=workers,
                            thread_name_prefix=thread_name_prefix) as pool:
        return list(pool.map(fn, items))


@dataclass
class SolveStats:
    """Counters describing what the service actually did (thread safe).

    ``cache_hits``/``cache_misses`` only count solves that consulted the
    cache; with caching disabled (``cache=None`` or ``use_cache=False``)
    neither counter moves.  ``executions`` counts :meth:`SolveService.execute`
    runs (each also shows up as a solve or a cache hit).

    The warm-start effectiveness counters only move on *fresh* solver
    invocations (cache hits replay a result, not a solve):

    * ``warm_seeds`` -- solves that were handed a usable warm seed;
    * ``incumbent_prunes`` -- the seed was proven optimal and reused outright,
      skipping the solver entirely;
    * ``bound_skips`` -- the seed was certified by a bound (ILP: LP-relaxation
      certificate; branch-and-bound: cutoff exhausted the tree) without a full
      integer solve;
    * ``infeasible_shortcuts`` -- cells answered by the budget-floor /
      learned-infeasibility pre-checks without reaching HiGHS.
    """

    solver_calls: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executions: int = 0
    warm_seeds: int = 0
    incumbent_prunes: int = 0
    bound_skips: int = 0
    infeasible_shortcuts: int = 0
    lint_runs: int = 0
    lint_errors: int = 0
    lint_warnings: int = 0
    canonical_solves: int = 0
    canonical_nodes_removed: int = 0
    races: int = 0
    race_wins: int = 0
    race_no_feasible: int = 0
    race_deadline_hits: int = 0
    race_entrants_finished: int = 0
    race_entrants_cancelled: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, *, solver_call: bool, cache_hit: Optional[bool]) -> None:
        with self._lock:
            if solver_call:
                self.solver_calls += 1
            if cache_hit is True:
                self.cache_hits += 1
            elif cache_hit is False:
                self.cache_misses += 1

    def record_warm(self, result: ScheduledResult) -> None:
        """Update warm/shortcut counters from a *fresh* solve's result markers."""
        warm = result.extra.get("warm_start") if result.extra else None
        shortcut = result.extra.get("infeasible_shortcut") if result.extra else None
        if not warm and not shortcut:
            return
        with self._lock:
            if warm and warm.get("used"):
                self.warm_seeds += 1
                kind = warm.get("kind")
                if kind == "incumbent_prune":
                    self.incumbent_prunes += 1
                elif kind == "bound_skip":
                    self.bound_skips += 1
            if shortcut:
                self.infeasible_shortcuts += 1

    def record_execution(self) -> None:
        with self._lock:
            self.executions += 1

    def record_race(self, result: ScheduledResult) -> None:
        """Update race counters from a fresh race solve's ``extra`` provenance.

        ``race_entrants_finished`` counts entrants that returned a verdict
        before the deadline; ``race_entrants_cancelled`` counts the stragglers
        the deadline (or a caller cancel) reaped before they started.
        """
        race = result.extra.get("race") if result.extra else None
        if not isinstance(race, dict):
            return
        lanes = race.get("entrants") or []
        finished = sum(1 for lane in lanes
                       if lane.get("wall_s") is not None)
        cancelled = sum(1 for lane in lanes
                        if "cancelled" in str(lane.get("status", ""))
                        or lane.get("status") == "not-started")
        with self._lock:
            self.races += 1
            if race.get("feasible"):
                self.race_wins += 1
            else:
                self.race_no_feasible += 1
            if race.get("deadline_hit"):
                self.race_deadline_hits += 1
            self.race_entrants_finished += finished
            self.race_entrants_cancelled += cancelled

    def record_lint(self, report) -> None:
        """Count one pre-solve lint gate run and its findings.

        ``lint_runs`` counts gate *consultations* (memoized reports replayed
        by :func:`~repro.analysis.lint.lint_graph_cached` included), so the
        errors/warnings totals track what solves were exposed to, not how
        many distinct graphs were analyzed.
        """
        with self._lock:
            self.lint_runs += 1
            self.lint_errors += report.errors
            self.lint_warnings += report.warnings

    def record_canonical(self, nodes_removed: int) -> None:
        with self._lock:
            self.canonical_solves += 1
            self.canonical_nodes_removed += int(nodes_removed)

    def reset(self) -> None:
        with self._lock:
            self.solver_calls = self.cache_hits = self.cache_misses = 0
            self.executions = 0
            self.warm_seeds = self.incumbent_prunes = 0
            self.bound_skips = self.infeasible_shortcuts = 0
            self.lint_runs = self.lint_errors = self.lint_warnings = 0
            self.canonical_solves = self.canonical_nodes_removed = 0
            self.races = self.race_wins = self.race_no_feasible = 0
            self.race_deadline_hits = 0
            self.race_entrants_finished = self.race_entrants_cancelled = 0


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work: a strategy at a budget."""

    strategy: str
    budget: Optional[float] = None
    options: Optional[SolverOptions] = None


#: Infeasibility verdicts that are deterministic and therefore safe to cache:
#: proven infeasibility, heuristics whose search exhausted deterministically,
#: and the (seeded) rounding failing the budget.  Notably absent: the MILP's
#: bare "time_limit" (no incumbent at the wall-clock limit), the LP's
#: "lp-status-*" limits, and the race's "race-no-feasible" /
#: "race-deadline-exhausted" verdicts, all of which are load-dependent.
_PROVEN_INFEASIBLE_MARKERS = ("infeasible", "over-budget", "no-feasible-b",
                              "rounding-exceeded-budget")


def _cacheable(result: ScheduledResult) -> bool:
    """Whether a result may be replayed from the cache.

    Feasible schedules are cacheable (a time-limit incumbent is still a
    correct schedule) -- except best-so-far results a cooperative cancel cut
    short (status ``"ok-cancelled"``), which are load-dependent: replaying one
    would pin a worse-than-reproducible schedule under a key whose full
    search finds better.  An *infeasible* verdict is only cacheable when the
    solver proved it; "no incumbent at the wall-clock limit" is load-dependent,
    and caching it -- especially on disk -- would replay a transient timeout
    as permanent infeasibility.
    """
    if result.feasible:
        return "cancelled" not in result.solver_status
    status = result.solver_status
    return any(marker in status for marker in _PROVEN_INFEASIBLE_MARKERS)


_UNSET_CACHE = object()


class SolveService:
    """Registry + cache + executor behind one ``solve``/``sweep`` API.

    Pass ``cache=None`` to disable caching for this service; by default each
    service owns a fresh in-memory :class:`PlanCache`.
    """

    def __init__(
        self,
        registry: Optional[SolverRegistry] = None,
        cache: object = _UNSET_CACHE,
        *,
        default_options: Optional[SolverOptions] = None,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.cache: Optional[PlanCache] = (
            PlanCache() if cache is _UNSET_CACHE else cache  # type: ignore[assignment]
        )
        self.default_options = default_options or SolverOptions()
        self.stats = SolveStats()

    # ------------------------------------------------------------------ #
    # Single solve
    # ------------------------------------------------------------------ #
    def solve(
        self,
        graph: DFGraph,
        strategy: str,
        budget: Optional[float] = None,
        options: Optional[SolverOptions] = None,
        *,
        use_cache: bool = True,
        strict: bool = False,
        should_cancel: Optional[Callable[[], bool]] = None,
        warm_start: Optional[WarmSeed] = None,
        auto_warm_start: bool = True,
    ) -> ScheduledResult:
        """Solve one cell, answering from the plan cache when possible.

        Treat the returned result as immutable: cache hits hand the same
        object to every caller, so in-place mutation (of ``matrices``,
        ``extra``, ``plan``) would corrupt later lookups of the same cell.

        ``should_cancel`` is the cooperative cancellation hook: a zero-arg
        callable polled on entry and again after a cache miss, immediately
        before the solver is invoked.  When it returns true the solve raises
        :class:`SolveCancelledError` instead of spending solver time.  A
        cache *hit* still returns normally -- answering from the cache is
        free, so there is nothing worth cancelling.

        ``warm_start`` hands a warm-capable strategy (see
        ``SolverSpec.warm_start_capable``) a neighboring budget's incumbent to
        prune with; it is a pure hint -- it never enters the cache key, and by
        budget monotonicity it cannot change which objective is optimal, only
        how fast the solver gets there.  Without an explicit seed, a cache
        *miss* on a warm-capable cell automatically looks for the nearest
        cached cell of the same (graph, strategy, options) family at a larger
        budget and seeds from it; ``auto_warm_start=False`` disables that
        lookup (used by the cold benchmarking path).
        """
        if should_cancel is not None and should_cancel():
            raise SolveCancelledError(f"solve of {strategy!r} cancelled before start")
        spec = self.registry.get(strategy)
        options = options if options is not None else self.default_options

        tracer = get_tracer()
        key: Optional[PlanCacheKey] = None
        family: Optional[str] = None
        warm_ok = spec.warm_start_capable and budget is not None
        lookup_start = 0.0
        if use_cache and self.cache is not None:
            # Cache hits bypass the span context manager entirely: a warm
            # cell is microseconds of real work, so the hit path records one
            # flat pre-measured span (several times cheaper than a live
            # enter/exit) while misses open the usual "solve" span below,
            # before any solver work.
            lookup_start = time.perf_counter()
            graph_hash = graph_content_hash(graph)
            options_token = options.cache_token(spec.option_map)
            key = PlanCacheKey.build(graph_hash, spec.key, budget,
                                     options_token)
            if warm_ok:
                family = "|".join((graph_hash, spec.key, options_token))
            cached = self.cache.get(key, graph)
            if cached is not None:
                self.stats.record(solver_call=False, cache_hit=True)
                if tracer.enabled:
                    end_s = time.perf_counter()
                    if not tracer.record_child_span(
                            "solve", lookup_start, end_s,
                            strategy=strategy, cache_hit=True):
                        # Root-level hit: give it its own single-span trace.
                        tracer.record_span(
                            "solve", tracer.new_trace_id(), lookup_start,
                            end_s, strategy=strategy, cache_hit=True)
                return cached

        with tracer.span("solve", strategy=strategy):
            if key is not None:
                tracer.record_child_span("cache-lookup", lookup_start,
                                         time.perf_counter())
                if warm_ok and warm_start is None and auto_warm_start:
                    with tracer.span("warm-seed"):
                        neighbor = self.cache.neighbor_above(family, budget)
                        if neighbor is not None:
                            warm_start = warm_seed_from_result(graph, neighbor[1])

            # Warn-only pre-solve lint gate, on the cache-miss path only: a
            # cache hit replays a schedule this service already vetted, and
            # keeping the hit path at microseconds is the whole point of the
            # cache.  Memoized by content hash, so a sweep lints each graph
            # once per budget, not once per cell.
            self._lint_gate(graph, budget, tracer)

            if should_cancel is not None and should_cancel():
                raise SolveCancelledError(
                    f"solve of {strategy!r} cancelled before solver start")
            result, applicable = self._invoke(
                spec, graph, budget, options, strict=strict,
                warm_start=warm_start if warm_ok else None,
                should_cancel=should_cancel,
            )
            self.stats.record(solver_call=True,
                              cache_hit=False if key is not None else None)
            # Warm counters move only here, after a fresh invocation: a cache hit
            # replays a stored result and must not re-count its warm markers.
            self.stats.record_warm(result)
            self.stats.record_race(result)
            # "not-applicable" placeholders (the strategy raised before solving) are
            # never cached: they cost nothing to reproduce, and caching them would
            # make a later strict=True call return a placeholder instead of raising.
            if key is not None and applicable and _cacheable(result):
                self.cache.put(key, result, family=family, budget=budget)
            return result

    def _lint_gate(self, graph: DFGraph, budget: Optional[float],
                   tracer) -> None:
        """Run the graph linter before a fresh solve; warn, never fail.

        Diagnostics are logged (errors and warnings at ``WARNING`` level) and
        counted in :class:`SolveStats`; the solve proceeds regardless -- a
        questionable graph still deserves the solver's verdict, and the
        linter itself must never be the reason a solve dies.
        """
        from ..analysis.lint import lint_graph_cached

        try:
            with tracer.span("lint", graph=graph.name):
                report = lint_graph_cached(graph, budget=budget)
        except Exception:  # pragma: no cover - defensive: lint is advisory
            logger.exception("graph lint failed; continuing with the solve")
            return
        self.stats.record_lint(report)
        if report.errors or report.warnings:
            worst = [d for d in report.diagnostics if d.severity != "info"]
            logger.warning("%s; first: [%s] %s", report.summary(),
                           worst[0].code, worst[0].message)

    def _invoke(self, spec: SolverSpec, graph: DFGraph, budget: Optional[float],
                options: SolverOptions, *, strict: bool,
                warm_start: Optional[WarmSeed] = None,
                should_cancel: Optional[Callable[[], bool]] = None):
        kwargs = options.kwargs_for(spec.option_map)
        if warm_start is not None and spec.warm_start_capable:
            kwargs["warm_start"] = warm_start
        # Cooperative solvers (SolverSpec.accepts_should_cancel) get the hook
        # itself, so a cancel arriving mid-solve reaps candidate loops and
        # race entrants instead of waiting for the solve to finish.
        if should_cancel is not None and spec.accepts_should_cancel:
            kwargs["should_cancel"] = should_cancel
        try:
            return spec.solve(graph, budget, **kwargs), True
        except StrategyNotApplicableError as exc:
            # Only structural inapplicability is converted; any other
            # ValueError (bad options, invalid schedule) propagates.
            if strict:
                raise
            from ..solvers.common import build_scheduled_result
            return build_scheduled_result(
                spec.key, graph, None,
                budget=int(budget) if budget is not None else None,
                feasible=False, solver_status=f"not-applicable: {exc}",
            ), False

    # ------------------------------------------------------------------ #
    # Canonicalized solve
    # ------------------------------------------------------------------ #
    def solve_canonicalized(
        self,
        graph: DFGraph,
        strategy: str,
        budget: Optional[float] = None,
        options: Optional[SolverOptions] = None,
        *,
        use_cache: bool = True,
        strict: bool = False,
        should_cancel: Optional[Callable[[], bool]] = None,
        max_passes: int = 10,
    ) -> ScheduledResult:
        """Canonicalize the graph, solve the smaller MILP, decode back.

        Runs the :mod:`repro.analysis` pass pipeline (dead-node elimination +
        zero-cost chain fusion), solves the optimized graph through the
        ordinary :meth:`solve` path (plan cache, warm starts and the compiled
        formulation all apply -- to the *optimized* graph's content hash),
        then maps the schedule back onto the original graph through the node
        provenance.  The decode is cross-checked on every call: the decoded
        schedule's simulated peak and compute cost must equal the optimized
        solve's exactly, otherwise a ``ValueError`` flags the transform as
        unsafe.  The returned result targets the *original* graph; its
        ``extra['analysis']`` carries the pass statistics plus the
        peak/objective cross-check values.

        When canonicalization changes nothing, this degrades to a plain
        :meth:`solve` of the original graph (no decode, no extra dict).
        """
        from ..analysis import optimize_graph
        from ..core.schedule import schedule_compute_cost
        from ..core.simulator import schedule_peak_memory
        from ..solvers.common import build_scheduled_result

        tracer = get_tracer()
        with tracer.span("solve-canonical", strategy=strategy):
            with tracer.span("canonicalize", graph=graph.name):
                opt = optimize_graph(graph, max_passes=max_passes)
            if not opt.changed:
                return self.solve(graph, strategy, budget, options,
                                  use_cache=use_cache, strict=strict,
                                  should_cancel=should_cancel)
            inner = self.solve(opt.graph, strategy, budget, options,
                               use_cache=use_cache, strict=strict,
                               should_cancel=should_cancel)
            self.stats.record_canonical(opt.stats.get("nodes_removed", 0))
            analysis = dict(opt.stats)
            extra = dict(inner.extra or {})
            if not inner.feasible or inner.matrices is None:
                extra["analysis"] = analysis
                return build_scheduled_result(
                    strategy, graph, None, budget=budget, feasible=False,
                    solve_time_s=inner.solve_time_s,
                    solver_status=inner.solver_status, extra=extra)
            with tracer.span("decode-provenance"):
                decoded = opt.decode_matrices(inner.matrices)
            decoded_peak = schedule_peak_memory(graph, decoded)
            decoded_cost = schedule_compute_cost(graph, decoded)
            # The transform-safety contract: fused members are resident
            # exactly when their fused node is, so decoding must preserve
            # the peak byte for byte and the objective exactly.
            if inner.peak_memory is not None and decoded_peak != inner.peak_memory:
                raise ValueError(
                    f"canonicalization decode changed the peak: optimized "
                    f"{inner.peak_memory} B vs decoded {decoded_peak} B")
            if (inner.compute_cost is not None
                    and abs(decoded_cost - inner.compute_cost)
                    > 1e-9 * max(1.0, abs(inner.compute_cost))):
                raise ValueError(
                    f"canonicalization decode changed the objective: "
                    f"optimized {inner.compute_cost} vs decoded {decoded_cost}")
            analysis["optimized_peak_memory"] = inner.peak_memory
            analysis["decoded_peak_memory"] = decoded_peak
            extra["analysis"] = analysis
            return build_scheduled_result(
                strategy, graph, decoded, budget=budget, feasible=True,
                solve_time_s=inner.solve_time_s,
                solver_status=inner.solver_status,
                frontier_advancing=False, peak_memory=decoded_peak,
                extra=extra)

    # ------------------------------------------------------------------ #
    # Solve-and-execute
    # ------------------------------------------------------------------ #
    def execute(
        self,
        numeric_or_graph,
        strategy: str,
        budget: Optional[float] = None,
        options: Optional[SolverOptions] = None,
        *,
        seed: int = 0,
        use_cache: bool = True,
        strict: bool = False,
        should_cancel: Optional[Callable[[], bool]] = None,
        record_outputs: Optional[Sequence[int]] = None,
    ):
        """Solve one cell, lower it, run it over NumPy tensors, cross-check.

        ``numeric_or_graph`` is either a ready
        :class:`~repro.execution.ops.NumericGraph` or a plain
        :class:`~repro.core.dfgraph.DFGraph` carrying builder metadata, in
        which case it is bound via
        :func:`~repro.execution.bind_numeric_graph` with ``seed``.  The solve
        itself goes through :meth:`solve` (plan cache included -- a warm
        cache means *execute* pays only for the actual tensor computation).

        Returns the :class:`~repro.execution.report.ExecutionReport`
        comparing measured peak live bytes, recompute counts and outputs
        against the simulator predictions and checkpoint-all execution.
        Infeasible solves return a report with ``executed=False``.
        """
        from ..execution import NumericGraph, bind_numeric_graph, build_execution_report

        tracer = get_tracer()
        with tracer.span("execute", strategy=strategy):
            if isinstance(numeric_or_graph, NumericGraph):
                numeric = numeric_or_graph
            else:
                with tracer.span("bind-numeric"):
                    numeric = bind_numeric_graph(numeric_or_graph, seed=seed)
            result = self.solve(numeric.graph, strategy, budget, options,
                                use_cache=use_cache, strict=strict,
                                should_cancel=should_cancel)
            with tracer.span("tensor-execute"):
                report = build_execution_report(numeric, result,
                                                record_outputs=record_outputs)
            self.stats.record_execution()
            return report

    # ------------------------------------------------------------------ #
    # Parallel fan-out
    # ------------------------------------------------------------------ #
    def sweep(
        self,
        graph: DFGraph,
        cells: Iterable[Union[SweepCell, Tuple[str, Optional[float]]]],
        *,
        options: Optional[SolverOptions] = None,
        max_workers: Optional[int] = None,
        parallel: bool = True,
        use_cache: bool = True,
        strict: bool = False,
        should_cancel: Optional[Callable[[], bool]] = None,
        warm_start: bool = True,
    ) -> List[ScheduledResult]:
        """Solve many independent cells, returning results in cell order.

        ``cells`` may be :class:`SweepCell` objects or bare ``(strategy,
        budget)`` tuples; a per-cell ``options`` overrides the sweep-wide one.
        With ``parallel=False`` (or a single worker) the cells run strictly
        sequentially.  For solves that complete (proven optimal/infeasible,
        heuristics, LPs) parallel results are identical to sequential ones;
        MILP cells that stop on a wall-clock time limit may return a
        different incumbent under parallel CPU contention.

        Cell scheduling is deterministic: unique cells of each *warm-capable*
        strategy (``SolverSpec.warm_start_capable``) are grouped per
        (strategy, options) family and solved as one sequential
        **descending-budget chain**, each cell seeded with the previous
        (larger-budget) cell's tightened incumbent; all other cells are
        independent singletons.  Chains and singletons fan out over the thread
        pool in first-appearance order, so plan-cache fills and warm seeding
        are reproducible run-to-run -- and because a warm seed can only change
        *how fast* a cell solves, never which objective is optimal, parallel
        and sequential sweeps still agree cell-for-cell.  ``warm_start=False``
        restores the fully independent cold scheduling (every cell its own
        singleton, no seeding, no neighbor lookup).

        ``should_cancel`` is forwarded to every cell solve; once it returns
        true the next cell to start raises :class:`SolveCancelledError`,
        which aborts the sweep (cells already inside a solver run to
        completion and stay cached).
        """
        normalized: List[SweepCell] = []
        for cell in cells:
            if isinstance(cell, SweepCell):
                normalized.append(cell)
            else:
                strategy, budget = cell
                normalized.append(SweepCell(strategy=strategy, budget=budget))
        # Fail fast on unknown strategies before any thread spins up.
        for cell in normalized:
            self.registry.get(cell.strategy)
        if not normalized:
            return []

        tracer = get_tracer()
        with tracer.span("sweep", cells=len(normalized)):
            return self._sweep_cells(
                graph, normalized, options=options, max_workers=max_workers,
                parallel=parallel, use_cache=use_cache, strict=strict,
                should_cancel=should_cancel, warm_start=warm_start,
            )

    def _sweep_cells(
        self,
        graph: DFGraph,
        normalized: List[SweepCell],
        *,
        options: Optional[SolverOptions],
        max_workers: Optional[int],
        parallel: bool,
        use_cache: bool,
        strict: bool,
        should_cancel: Optional[Callable[[], bool]],
        warm_start: bool,
    ) -> List[ScheduledResult]:

        # Compile the graph's MILP formulation once, up front, when any cell
        # will need it: every budget of the sweep then re-budgets the shared
        # CompiledFormulation in O(1), and parallel workers never pile up on
        # the formulation cache's cold-key single-flight lock.  On a sweep
        # fully served by a warm plan cache this compile (milliseconds, once
        # per process per graph -- the formulation cache is process-wide) is
        # the only work performed; the alternative, probing the plan cache for
        # every cell first, would cost more than it saves on any cold cell.
        if compiled_formulation_enabled() and any(
            self.registry.get(cell.strategy).uses_formulation for cell in normalized
        ):
            get_formulation_cache().get(graph)

        # Deduplicate identical cells: concurrent duplicates would all miss
        # the cold cache and each run the full solve.  SweepCell is frozen
        # (and options hashable), so effective cells key a dict directly.
        effective = [cell if cell.options is not None
                     else SweepCell(cell.strategy, cell.budget, options)
                     for cell in normalized]
        unique: List[SweepCell] = []
        index_of: dict = {}
        for cell in effective:
            if cell not in index_of:
                index_of[cell] = len(unique)
                unique.append(cell)

        # Partition the unique cells into work units: descending-budget chains
        # for warm-capable strategies (grouped per (strategy, options) family,
        # in first-appearance order), singletons for everything else.
        chains: List[List[int]] = []
        if warm_start:
            family_of: dict = {}
            for idx, cell in enumerate(unique):
                spec = self.registry.get(cell.strategy)
                if spec.warm_start_capable and cell.budget is not None:
                    fam = (cell.strategy, cell.options)
                    if fam not in family_of:
                        family_of[fam] = []
                        chains.append(family_of[fam])
                    family_of[fam].append(idx)
                else:
                    chains.append([idx])
            for unit in chains:
                unit.sort(key=lambda i: -float(unique[i].budget)
                          if unique[i].budget is not None else 0.0)
        else:
            chains = [[idx] for idx in range(len(unique))]

        # Pool threads have no trace context of their own; hand them the
        # sweep's so every cell's solve span lands in the caller's trace.
        tracer = get_tracer()
        trace_ctx = tracer.current_context()

        def solve_chain(unit: List[int]) -> List[Tuple[int, ScheduledResult]]:
            seed: Optional[WarmSeed] = None
            out: List[Tuple[int, ScheduledResult]] = []
            for idx in unit:
                cell = unique[idx]
                result = self.solve(graph, cell.strategy, cell.budget,
                                    cell.options, use_cache=use_cache,
                                    strict=strict, should_cancel=should_cancel,
                                    warm_start=seed, auto_warm_start=warm_start)
                out.append((idx, result))
                if len(unit) > 1 and result.feasible and result.matrices is not None:
                    seed = warm_seed_from_result(graph, result) or seed
            return out

        def solve_unit(unit: List[int]) -> List[Tuple[int, ScheduledResult]]:
            # The sequential path runs on the caller's thread, which already
            # carries the sweep's context -- re-attaching it would only add
            # per-chain overhead.
            if trace_ctx is None or tracer.current_trace_id() == trace_ctx[0]:
                return solve_chain(unit)
            with tracer.context(*trace_ctx):
                return solve_chain(unit)

        solved: List[Optional[ScheduledResult]] = [None] * len(unique)
        for batch in parallel_map(solve_unit, chains, max_workers=max_workers,
                                  parallel=parallel,
                                  thread_name_prefix="repro-sweep"):
            for idx, result in batch:
                solved[idx] = result
        return [solved[index_of[cell]] for cell in effective]

    # ------------------------------------------------------------------ #
    # Pareto frontier
    # ------------------------------------------------------------------ #
    def pareto(
        self,
        graph: DFGraph,
        strategy: str = "checkmate_ilp",
        *,
        low: Optional[float] = None,
        high: Optional[float] = None,
        resolution: Optional[float] = None,
        options: Optional[SolverOptions] = None,
        use_cache: bool = True,
        should_cancel: Optional[Callable[[], bool]] = None,
    ):
        """Trace the memory-vs-recompute frontier by warm-seeded bisection.

        Recursively bisects the budget axis between ``low`` (default: the
        arithmetic minimum-feasible-budget floor) and ``high`` (default: the
        checkpoint-all peak), stopping early on segments whose endpoint costs
        already agree (a flat step of the frontier staircase) and on segments
        narrower than ``resolution``.  Every probe is an ordinary
        :meth:`solve` -- cached, and warm-seeded from the nearest
        already-solved larger budget -- so the frontier costs far fewer solver
        calls than the equivalent dense grid.  Returns a
        :class:`~repro.service.pareto.ParetoFront`.
        """
        from .pareto import trace_pareto_frontier

        with get_tracer().span("pareto", strategy=strategy):
            return trace_pareto_frontier(
                self, graph, strategy, low=low, high=high, resolution=resolution,
                options=options, use_cache=use_cache, should_cancel=should_cancel,
            )

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def grid(self, strategies: Sequence[str], budgets: Sequence[Optional[float]],
             options: Optional[SolverOptions] = None) -> List[SweepCell]:
        """The cross product of strategies and budgets, in deterministic order."""
        return [SweepCell(strategy=s, budget=b, options=options)
                for s in strategies for b in budgets]

    def statistics(self) -> dict:
        """One merged snapshot of service activity and cache effectiveness.

        The ``cache`` sub-dict comes straight from :meth:`PlanCache.stats`
        (``None`` when caching is disabled); the top-level counters are this
        service's :class:`SolveStats`.  This is the payload behind the serve
        daemon's ``/v1/metrics``.
        """
        with self.stats._lock:
            snapshot = {
                "solver_calls": self.stats.solver_calls,
                "cache_hits": self.stats.cache_hits,
                "cache_misses": self.stats.cache_misses,
                "executions": self.stats.executions,
                "warm_seeds": self.stats.warm_seeds,
                "incumbent_prunes": self.stats.incumbent_prunes,
                "bound_skips": self.stats.bound_skips,
                "infeasible_shortcuts": self.stats.infeasible_shortcuts,
            }
            analysis = {
                "lint_runs": self.stats.lint_runs,
                "lint_errors": self.stats.lint_errors,
                "lint_warnings": self.stats.lint_warnings,
                "canonical_solves": self.stats.canonical_solves,
                "canonical_nodes_removed": self.stats.canonical_nodes_removed,
            }
            race = {
                "races": self.stats.races,
                "wins": self.stats.race_wins,
                "no_feasible": self.stats.race_no_feasible,
                "deadline_hits": self.stats.race_deadline_hits,
                "entrants_finished": self.stats.race_entrants_finished,
                "entrants_cancelled": self.stats.race_entrants_cancelled,
            }
        snapshot["analysis"] = analysis
        snapshot["race"] = race
        snapshot["registered_solvers"] = len(self.registry)
        snapshot["cache"] = self.cache.stats() if self.cache is not None else None
        # The compiled-formulation cache is process-wide (shared by every
        # service in the process), reported here so /v1/metrics exposes
        # compile-once effectiveness alongside the plan-cache hit rate.
        snapshot["formulation_cache"] = get_formulation_cache().stats()
        # Likewise process-wide: the single-flight LP relaxation cache the
        # rounding portfolio (and every race fanning it out) solves through.
        from ..solvers.rounding_portfolio import get_lp_relaxation_cache

        snapshot["lp_relaxation_cache"] = get_lp_relaxation_cache().stats()
        return snapshot


_default_service: Optional[SolveService] = None
_default_service_lock = threading.Lock()


def get_default_service() -> SolveService:
    """The process-wide shared service (lazy; cache shared across callers)."""
    global _default_service
    with _default_service_lock:
        if _default_service is None:
            _default_service = SolveService()
        return _default_service


def set_default_service(service: Optional[SolveService]) -> Optional[SolveService]:
    """Replace the process-wide service (pass ``None`` to reset); returns the old one."""
    global _default_service
    with _default_service_lock:
        previous, _default_service = _default_service, service
        return previous
