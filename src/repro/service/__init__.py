"""Unified solve-service layer: registry, plan cache and parallel sweeps.

This package is the single entry point for "solve this graph under that
(strategy, budget) configuration" -- the operation every experiment, example
and benchmark in the reproduction is built from:

* :mod:`repro.service.registry` -- one :class:`SolverRegistry` absorbing the
  Table 1 strategies *and* the loose solvers behind a uniform
  ``solve(graph, budget, **kwargs)`` protocol, with typed
  :class:`SolverOptions` replacing per-callsite kwarg special-casing;
* :mod:`repro.service.hashing` -- canonical content hashing of
  :class:`~repro.core.dfgraph.DFGraph`;
* :mod:`repro.service.cache` -- the content-addressed :class:`PlanCache`
  (in-memory LRU + optional on-disk JSON store);
* :mod:`repro.service.solve` -- :class:`SolveService` with cached
  :meth:`~SolveService.solve` and the parallel :meth:`~SolveService.sweep`
  fan-out executor.

Quick use::

    from repro.service import SolveService, SolverOptions

    service = SolveService()
    result = service.solve(graph, "checkmate_ilp", budget,
                           SolverOptions(time_limit_s=60))
    results = service.sweep(graph, service.grid(
        ["checkmate_approx", "linearized_greedy"], budgets))
"""

from ..solvers.compiled import FormulationCache, get_formulation_cache, set_formulation_cache
from .cache import PlanCache, PlanCacheKey
from .hashing import graph_content_hash
from .options import SolverOptions
from .pareto import ParetoFront, ParetoPoint, trace_pareto_frontier
from .registry import Solver, SolverRegistry, SolverSpec, default_registry
from .solve import (
    SolveCancelledError,
    SolveService,
    SolveStats,
    SweepCell,
    get_default_service,
    parallel_map,
    set_default_service,
)

__all__ = [
    "SolveCancelledError",
    "FormulationCache",
    "get_formulation_cache",
    "set_formulation_cache",
    "PlanCache",
    "PlanCacheKey",
    "graph_content_hash",
    "SolverOptions",
    "ParetoFront",
    "ParetoPoint",
    "trace_pareto_frontier",
    "Solver",
    "SolverRegistry",
    "SolverSpec",
    "default_registry",
    "SolveService",
    "SolveStats",
    "SweepCell",
    "get_default_service",
    "parallel_map",
    "set_default_service",
]
