"""Canonical content hashing of :class:`~repro.core.dfgraph.DFGraph`.

The plan cache is *content addressed*: a solve is keyed by what the graph
**is** (costs, memories, edges, structural metadata), not by how or when it was
built.  Two independently reconstructed graphs -- e.g. the same model preset
built in two processes, or a graph round-tripped through a serializer -- hash
identically, so cached schedules survive process restarts and are shared
across experiments that rebuild their own graphs.

The hash covers every field that influences a solver's output:

* node names, costs, memories, ``is_backward`` flags and layer ids,
* the dependency structure (all edges),
* ``input_memory`` / ``parameter_memory`` (they set the constant overhead of
  the memory budget, paper Eq. 2),
* the graph name and the ``meta`` mapping (``grad_index`` et al. steer the
  baselines' segmenting logic).

Floats are serialized via ``repr`` (shortest round-trip form), so bit-equal
costs hash equally and any perturbation changes the digest.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..core.dfgraph import DFGraph

__all__ = ["graph_content_hash"]

_HASH_ATTR = "_repro_content_hash"


def _canonical_meta(value):
    """Project a free-form ``meta`` value onto a canonical JSON-safe structure.

    ``meta`` is typed ``Dict[str, object]``, so values may be numpy arrays or
    scalars.  Arrays are expanded to (tag, shape, dtype, full contents) --
    ``repr`` would truncate large arrays, letting different contents collide
    -- and everything else is reduced to plain comparable Python types, so
    the memo-validation equality below can never hit numpy's ambiguous
    elementwise ``==``.
    """
    import numpy as np

    if isinstance(value, dict):
        return {str(k): _canonical_meta(v) for k, v in sorted(value.items(),
                                                              key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical_meta(v) for v in value]
    if isinstance(value, np.ndarray):
        return ["__ndarray__", list(value.shape), value.dtype.str, value.tolist()]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return repr(float(value))
    if value is None or isinstance(value, (str, int, bool)):
        return value
    return repr(value)


def _canonical_payload(graph: "DFGraph") -> dict:
    return {
        "format": "repro.dfgraph/v1",
        "name": graph.name,
        "nodes": [
            [v.name, repr(float(v.cost)), int(v.memory), bool(v.is_backward),
             v.layer_id]
            for v in graph.nodes
        ],
        "deps": {str(j): list(graph.deps[j]) for j in range(graph.size)},
        "input_memory": int(graph.input_memory),
        "parameter_memory": int(graph.parameter_memory),
        "meta": _canonical_meta(graph.meta),
    }


def graph_content_hash(graph: "DFGraph") -> str:
    """Return the canonical SHA-256 content digest of a graph (hex string).

    The digest is memoized on the graph instance: nodes, deps and the scalar
    fields are effectively immutable after ``__post_init__`` and every
    transformation (``with_costs``, ``scaled``, ``induced_subgraph``...)
    returns a *new* instance.  The one mutable piece, ``meta``, is snapshotted
    (in canonical form, so numpy values compare safely) at memoization time
    and compared on lookup; mutating ``graph.meta`` after a solve therefore
    invalidates the memo instead of serving a stale cache key.
    """
    meta_canonical = _canonical_meta(graph.meta)
    cached = graph.__dict__.get(_HASH_ATTR)
    if cached is not None:
        digest, meta_snapshot = cached
        if meta_canonical == meta_snapshot:
            return digest
    payload = json.dumps(_canonical_payload(graph), sort_keys=True,
                         separators=(",", ":"), default=repr)
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    graph.__dict__[_HASH_ATTR] = (digest, meta_canonical)
    return digest
