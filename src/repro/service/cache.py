"""Content-addressed plan cache: in-memory LRU plus optional on-disk store.

Checkmate's economics make caching unusually profitable: a schedule is solved
once (seconds to hours of MILP time) and then reused for millions of training
iterations, and the evaluation harness re-solves the *same* (graph, budget,
strategy) cells across figures -- the Figure 5 sweep, Table 2 ratios and the
Figure 8 rounding study all hit overlapping cells.  The cache keys a solve by

``(graph content hash, strategy key, budget, solver-visible options)``

so any reconstruction of the same graph (same costs, memories, edges,
metadata -- see :func:`~repro.service.hashing.graph_content_hash`) re-uses the
stored plan.

Two tiers:

* an in-process LRU of :class:`ScheduledResult` objects (``max_entries``
  bounded, thread safe -- the sweep executor hits it concurrently), and
* an optional on-disk JSON store (one file per key under ``cache_dir``) built
  on the :mod:`repro.utils.serialization` result wire format, which persists
  the ``(R, S)`` matrices across processes.  Disk hits are re-validated and
  re-packaged against the caller's graph, so a corrupt or mismatched file
  degrades to a miss, never to a wrong schedule.  Writes go through a
  process/thread-unique temp file followed by an atomic ``os.replace``, so
  concurrent writers (multiple serve workers, or several processes sharing
  one ``cache_dir``) can never interleave partial JSON.

The cache keeps its own atomic ``hits`` / ``misses`` / ``evictions`` counters
(:meth:`PlanCache.stats`); they feed the serve daemon's ``/v1/metrics``
endpoint and are maintained here -- unlike
:class:`~repro.service.solve.SolveStats`, which only counts solves routed
through one :class:`~repro.service.solve.SolveService`.

Cached results are shared, not copied: an in-memory hit returns the *same*
:class:`ScheduledResult` object to every caller (including duplicate cells of
one sweep), so treat results from the service as immutable -- mutating
``matrices``/``extra``/``plan`` in place would poison every later hit on that
key.  Derive variants via ``matrices.copy()`` instead.

Set ``PlanCache(max_entries=0, cache_dir=None)`` -- or pass ``cache=None`` to
:class:`~repro.service.solve.SolveService` -- to disable caching entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..core.dfgraph import DFGraph
from ..core.schedule import ScheduledResult
from ..utils.serialization import RESULT_FORMAT, result_from_wire, result_to_wire

__all__ = ["PlanCacheKey", "PlanCache"]


class PlanCacheKey(str):
    """Opaque cache key: hex digest over (graph, strategy, budget, options)."""

    @staticmethod
    def build(graph_hash: str, strategy: str, budget: Optional[float],
              options_token: str) -> "PlanCacheKey":
        budget_token = "none" if budget is None else repr(float(budget))
        payload = "\x1f".join((graph_hash, strategy, budget_token, options_token))
        return PlanCacheKey(hashlib.sha256(payload.encode("utf-8")).hexdigest())


class PlanCache:
    """Bounded LRU of solved plans with optional on-disk persistence."""

    def __init__(self, max_entries: int = 512,
                 cache_dir: Optional[str] = None) -> None:
        self.max_entries = int(max_entries)
        self.cache_dir = cache_dir
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, ScheduledResult]" = OrderedDict()
        # Family index for warm-start neighbor lookups: family token (graph
        # hash + strategy + options, NOT budget) -> {budget: key}.  Lets the
        # service find "the nearest cached cell at a larger budget" to seed a
        # cold cell from; memory tier only (a disk entry would need the full
        # result loaded anyway, at which point it is promoted here).
        self._family_index: Dict[str, Dict[float, str]] = {}
        self._key_family: Dict[str, Tuple[str, float]] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._disk_hits = 0
        self._neighbor_hits = 0
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    def get(self, key: PlanCacheKey, graph: DFGraph) -> Optional[ScheduledResult]:
        """Return a cached result for ``key``, or ``None`` on a miss.

        Checks the in-memory tier first, then the disk tier (promoting disk
        hits into memory).  ``graph`` is needed to re-materialize disk entries
        into full :class:`ScheduledResult` objects.  Hits and misses are
        counted atomically (see :meth:`stats`).
        """
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return result
        result = self._load_from_disk(key, graph)
        with self._lock:
            if result is not None:
                self._hits += 1
                self._disk_hits += 1
                self._put_locked(key, result)
            else:
                self._misses += 1
        return result

    def put(self, key: PlanCacheKey, result: ScheduledResult, *,
            family: Optional[str] = None, budget: Optional[float] = None) -> None:
        """Store ``result``; optionally index it for neighbor lookup.

        ``family`` groups cells that differ only in budget (same graph,
        strategy and options); together with ``budget`` it feeds
        :meth:`neighbor_above`.
        """
        with self._lock:
            self._put_locked(key, result)
            if (family is not None and budget is not None
                    and key in self._entries):
                self._family_index.setdefault(family, {})[float(budget)] = key
                self._key_family[key] = (family, float(budget))
        self._store_to_disk(key, result)

    def _put_locked(self, key: PlanCacheKey, result: ScheduledResult) -> None:
        if self.max_entries <= 0:
            return
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self._evictions += 1
            self._drop_family_locked(evicted)

    def _drop_family_locked(self, key: str) -> None:
        entry = self._key_family.pop(key, None)
        if entry is None:
            return
        family, budget = entry
        budgets = self._family_index.get(family)
        if budgets is not None:
            budgets.pop(budget, None)
            if not budgets:
                self._family_index.pop(family, None)

    def neighbor_above(self, family: str,
                       budget: float) -> Optional[Tuple[float, ScheduledResult]]:
        """Nearest in-memory cell of ``family`` with a strictly larger budget.

        Returns ``(neighbor_budget, result)`` or ``None``.  The caller turns
        the result into a :class:`~repro.solvers.warm.WarmSeed`; monotonicity
        only runs downhill, so only larger budgets qualify as seeds.
        """
        budget = float(budget)
        with self._lock:
            budgets = self._family_index.get(family)
            if not budgets:
                return None
            above = [b for b in budgets if b > budget]
            if not above:
                return None
            nearest = min(above)
            result = self._entries.get(budgets[nearest])
            if result is None:
                return None
            self._neighbor_hits += 1
            return nearest, result

    def clear(self) -> None:
        """Drop the in-memory tier (disk files are left in place)."""
        with self._lock:
            self._entries.clear()
            self._family_index.clear()
            self._key_family.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """One consistent snapshot of the cache counters (taken under the lock).

        ``hit_rate`` is ``hits / (hits + misses)`` over lookups so far, or
        ``None`` before the first lookup.  ``disk_hits`` counts the subset of
        ``hits`` served from the on-disk tier.
        """
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "disk_hits": self._disk_hits,
                "neighbor_hits": self._neighbor_hits,
                "hit_rate": (self._hits / lookups) if lookups else None,
            }

    def reset_stats(self) -> None:
        """Zero the counters (entries themselves are untouched)."""
        with self._lock:
            self._hits = self._misses = self._evictions = self._disk_hits = 0
            self._neighbor_hits = 0

    # ------------------------------------------------------------------ #
    # Disk tier
    # ------------------------------------------------------------------ #
    def _path(self, key: PlanCacheKey) -> Optional[str]:
        if not self.cache_dir:
            return None
        return os.path.join(self.cache_dir, f"{key}.json")

    def _store_to_disk(self, key: PlanCacheKey, result: ScheduledResult) -> None:
        path = self._path(key)
        if path is None:
            return
        # Unique temp name per writer + atomic rename: concurrent writers of
        # the same key race benignly (last replace wins, both files complete).
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        try:
            # Payload construction sits inside the guard too: a custom
            # solver's exotic result fields (solve_time_s=None, odd matrices)
            # must never fail a solve that already succeeded -- same contract
            # as a read-only or full cache directory below.
            payload = result_to_wire(result)
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
                # Flush + fsync before the rename: without it a crash can
                # leave the *renamed* file empty on some filesystems, which
                # is exactly the torn-read the temp-file dance exists to
                # prevent.  (Readers still revalidate, so even that would
                # degrade to a miss -- this just keeps the store honest.)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except (OSError, TypeError, ValueError, AttributeError):
            pass
        finally:
            # After a successful os.replace the tmp path no longer exists;
            # otherwise (any failure above) remove the partial file.
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _load_from_disk(self, key: PlanCacheKey,
                        graph: DFGraph) -> Optional[ScheduledResult]:
        path = self._path(key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
            if payload.get("format") != RESULT_FORMAT:
                return None
            # result_from_wire revalidates the matrices against the caller's
            # graph, so a shape-correct file with wrong R/S content raises
            # ValueError and degrades to a miss ("never a wrong schedule").
            return result_from_wire(payload, graph)
        except (OSError, ValueError, KeyError):
            return None
