"""Content-addressed plan cache: in-memory LRU plus optional on-disk store.

Checkmate's economics make caching unusually profitable: a schedule is solved
once (seconds to hours of MILP time) and then reused for millions of training
iterations, and the evaluation harness re-solves the *same* (graph, budget,
strategy) cells across figures -- the Figure 5 sweep, Table 2 ratios and the
Figure 8 rounding study all hit overlapping cells.  The cache keys a solve by

``(graph content hash, strategy key, budget, solver-visible options)``

so any reconstruction of the same graph (same costs, memories, edges,
metadata -- see :func:`~repro.service.hashing.graph_content_hash`) re-uses the
stored plan.

Two tiers:

* an in-process LRU of :class:`ScheduledResult` objects (``max_entries``
  bounded, thread safe -- the sweep executor hits it concurrently), and
* an optional on-disk JSON store (one file per key under ``cache_dir``) built
  on :mod:`repro.utils.serialization`, which persists the ``(R, S)`` matrices
  across processes.  Disk hits are re-validated and re-packaged against the
  caller's graph, so a corrupt or mismatched file degrades to a miss, never to
  a wrong schedule.

Cached results are shared, not copied: an in-memory hit returns the *same*
:class:`ScheduledResult` object to every caller (including duplicate cells of
one sweep), so treat results from the service as immutable -- mutating
``matrices``/``extra``/``plan`` in place would poison every later hit on that
key.  Derive variants via ``matrices.copy()`` instead.

Set ``PlanCache(max_entries=0, cache_dir=None)`` -- or pass ``cache=None`` to
:class:`~repro.service.solve.SolveService` -- to disable caching entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from typing import Optional

from ..core.dfgraph import DFGraph
from ..core.schedule import ScheduledResult
from ..utils.serialization import schedule_from_json, schedule_to_json

__all__ = ["PlanCacheKey", "PlanCache"]

_DISK_FORMAT = "repro.service.plan/v1"


def _jsonable(value):
    """Best-effort projection of a result's ``extra`` dict onto plain JSON.

    NumPy scalars become Python numbers and tuples become lists; keys whose
    values still refuse to serialize are dropped rather than failing the
    store -- a disk entry with partial ``extra`` beats no disk entry.
    """
    import numpy as np

    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            try:
                json.dumps(converted := _jsonable(v))
            except (TypeError, ValueError):
                continue
            out[str(k)] = converted
        return out
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


class PlanCacheKey(str):
    """Opaque cache key: hex digest over (graph, strategy, budget, options)."""

    @staticmethod
    def build(graph_hash: str, strategy: str, budget: Optional[float],
              options_token: str) -> "PlanCacheKey":
        budget_token = "none" if budget is None else repr(float(budget))
        payload = "\x1f".join((graph_hash, strategy, budget_token, options_token))
        return PlanCacheKey(hashlib.sha256(payload.encode("utf-8")).hexdigest())


class PlanCache:
    """Bounded LRU of solved plans with optional on-disk persistence."""

    def __init__(self, max_entries: int = 512,
                 cache_dir: Optional[str] = None) -> None:
        self.max_entries = int(max_entries)
        self.cache_dir = cache_dir
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, ScheduledResult]" = OrderedDict()
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    def get(self, key: PlanCacheKey, graph: DFGraph) -> Optional[ScheduledResult]:
        """Return a cached result for ``key``, or ``None`` on a miss.

        Checks the in-memory tier first, then the disk tier (promoting disk
        hits into memory).  ``graph`` is needed to re-materialize disk entries
        into full :class:`ScheduledResult` objects.  Hit/miss accounting lives
        in :class:`~repro.service.solve.SolveStats`, not here.
        """
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
                return result
        result = self._load_from_disk(key, graph)
        if result is not None:
            with self._lock:
                self._put_locked(key, result)
        return result

    def put(self, key: PlanCacheKey, result: ScheduledResult) -> None:
        with self._lock:
            self._put_locked(key, result)
        self._store_to_disk(key, result)

    def _put_locked(self, key: PlanCacheKey, result: ScheduledResult) -> None:
        if self.max_entries <= 0:
            return
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop the in-memory tier (disk files are left in place)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------ #
    # Disk tier
    # ------------------------------------------------------------------ #
    def _path(self, key: PlanCacheKey) -> Optional[str]:
        if not self.cache_dir:
            return None
        return os.path.join(self.cache_dir, f"{key}.json")

    def _store_to_disk(self, key: PlanCacheKey, result: ScheduledResult) -> None:
        path = self._path(key)
        if path is None:
            return
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        try:
            # Payload construction sits inside the guard too: a custom
            # solver's exotic result fields (solve_time_s=None, odd matrices)
            # must never fail a solve that already succeeded -- same contract
            # as a read-only or full cache directory below.
            payload = {
                "format": _DISK_FORMAT,
                "strategy": result.strategy,
                "budget": result.budget,
                "feasible": bool(result.feasible),
                "solver_status": result.solver_status,
                "solve_time_s": float(result.solve_time_s),
                "has_plan": result.plan is not None,
                "extra": _jsonable(result.extra),
                "schedule": (schedule_to_json(result.graph, result.matrices,
                                              strategy=result.strategy)
                             if result.matrices is not None else None),
            }
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except (OSError, TypeError, ValueError, AttributeError):
            pass
        finally:
            # After a successful os.replace the tmp path no longer exists;
            # otherwise (any failure above) remove the partial file.
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _load_from_disk(self, key: PlanCacheKey,
                        graph: DFGraph) -> Optional[ScheduledResult]:
        path = self._path(key)
        if path is None or not os.path.exists(path):
            return None
        from ..solvers.common import build_scheduled_result

        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
            if payload.get("format") != _DISK_FORMAT:
                return None
            matrices = (schedule_from_json(payload["schedule"], graph)
                        if payload.get("schedule") else None)
            return build_scheduled_result(
                payload["strategy"], graph, matrices,
                budget=payload.get("budget"),
                feasible=bool(payload.get("feasible")),
                solve_time_s=float(payload.get("solve_time_s", 0.0)),
                solver_status=str(payload.get("solver_status", "cached")),
                generate_plan=bool(payload.get("has_plan", True)),
                # validate=True: a shape-correct file with wrong R/S content
                # raises ValueError below and degrades to a miss, upholding the
                # "never a wrong schedule" promise above.
                validate=True,
                extra=payload.get("extra") or {},
            )
        except (OSError, ValueError, KeyError):
            return None
