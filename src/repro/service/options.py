"""Typed solver options: one immutable bag replacing per-callsite kwarg plumbing.

Before the solve-service layer, every experiment loop special-cased solver
keyword arguments by hand (``if key == "checkmate_ilp": kwargs["time_limit_s"]
= ...``).  :class:`SolverOptions` centralizes that: callers describe *all* the
knobs they care about once, and each registered solver declares -- via its
``option_map`` -- which of those knobs it understands and under which keyword
name.  Options a solver does not accept are simply not forwarded, so a single
``SolverOptions`` value can safely drive a heterogeneous sweep over the whole
registry.

The class is frozen and canonically serializable (:meth:`cache_token`) so that
it can participate in content-addressed plan-cache keys.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

__all__ = ["SolverOptions"]


@dataclass(frozen=True)
class SolverOptions:
    """Solver knobs understood by the service layer.

    Every field defaults to ``None`` meaning "use the solver's own default".
    Only non-``None`` fields that appear in a solver's ``option_map`` are
    forwarded to the underlying ``solve`` callable.

    Attributes
    ----------
    time_limit_s:
        Wall-clock limit for the MILP solver.
    lp_time_limit_s:
        Wall-clock limit for the LP relaxation inside the rounding
        approximation (defaults to the solver's own generous limit).
    mip_gap:
        Relative optimality gap at which the MILP solver may stop.
    allowance:
        LP-rounding memory allowance (paper §5.3): the LP is solved at
        ``(1 - allowance) * budget``.
    rounding_mode:
        ``"deterministic"`` or ``"randomized"`` two-phase rounding.
    num_samples:
        Number of randomized-rounding samples to draw.
    seed:
        RNG seed for randomized rounding.
    generate_plan:
        Whether to lower schedules to execution plans (skipping it speeds up
        large sweeps that only need cost/memory numbers).
    max_nodes:
        Node cap for the pure-Python branch-and-bound solver.
    checkpoints:
        Explicit checkpoint set for the min-R completion solver.
    deadline_s:
        Wall-clock deadline for the ``race`` meta-solver: the best feasible
        schedule found within it wins.  Distinct from the serve daemon's
        per-*job* ``deadline_s`` (which fails the job outright); this one
        shapes the solve and still returns a result.
    entrants:
        Strategy keys the ``race`` meta-solver fans out (default: the four
        rounding-portfolio schemes plus the exact ILP).  Order is preserved
        -- it is the race's tie-break.
    """

    time_limit_s: Optional[float] = None
    lp_time_limit_s: Optional[float] = None
    mip_gap: Optional[float] = None
    allowance: Optional[float] = None
    rounding_mode: Optional[str] = None
    num_samples: Optional[int] = None
    seed: Optional[int] = None
    generate_plan: Optional[bool] = None
    max_nodes: Optional[int] = None
    checkpoints: Optional[Tuple[int, ...]] = None
    deadline_s: Optional[float] = None
    entrants: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.checkpoints is not None:
            object.__setattr__(self, "checkpoints",
                               tuple(sorted(int(c) for c in self.checkpoints)))
        if self.entrants is not None:
            # Coerce to a tuple (wire payloads carry lists) but keep order:
            # entrant order is the race's deterministic tie-break.
            object.__setattr__(self, "entrants",
                               tuple(str(e) for e in self.entrants))

    def replace(self, **changes) -> "SolverOptions":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def kwargs_for(self, option_map: Mapping[str, str]) -> Dict[str, object]:
        """Project the options onto one solver's keyword arguments.

        ``option_map`` maps :class:`SolverOptions` field names to the keyword
        names of the target ``solve`` callable; fields that are ``None`` or
        unmapped are dropped.
        """
        kwargs: Dict[str, object] = {}
        for field_name, kwarg_name in option_map.items():
            value = getattr(self, field_name)
            if value is not None:
                kwargs[kwarg_name] = value
        return kwargs

    def cache_token(self, option_map: Mapping[str, str]) -> str:
        """Canonical string of the options *as seen by* one solver.

        Two option bags that project to the same solver kwargs produce the
        same token, so e.g. changing ``time_limit_s`` does not invalidate
        cached heuristic solves that never see it.
        """
        kwargs = self.kwargs_for(option_map)
        return json.dumps(kwargs, sort_keys=True, default=repr)
