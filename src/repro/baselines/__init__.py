"""Baseline rematerialization strategies (Table 1 of the paper) and generalizations."""

from .chen import (
    ap_candidates,
    chen_greedy_checkpoints,
    chen_sqrt_n_checkpoints,
    solve_chen_greedy,
    solve_chen_sqrt_n,
)
from .griewank import is_linear_forward_graph, revolve_storage_timeline, solve_griewank_logn
from .segmenting import forward_candidates, segment_checkpoint_schedule, training_graph_metadata
from .strategies import STRATEGIES, StrategyInfo, get_strategy, solve_checkpoint_all

__all__ = [
    "ap_candidates",
    "chen_greedy_checkpoints",
    "chen_sqrt_n_checkpoints",
    "solve_chen_greedy",
    "solve_chen_sqrt_n",
    "is_linear_forward_graph",
    "revolve_storage_timeline",
    "solve_griewank_logn",
    "forward_candidates",
    "segment_checkpoint_schedule",
    "training_graph_metadata",
    "STRATEGIES",
    "StrategyInfo",
    "get_strategy",
    "solve_checkpoint_all",
]
