"""Shared machinery for checkpoint-set baselines (Chen, AP, Linearized variants).

All of the heuristic baselines in Table 1 of the paper decide a *set of
forward activations to keep* (the checkpoints); everything else is freed after
its last forward use and recomputed segment-by-segment during the backward
pass.  Following §6.2 of the paper, we express each such heuristic as a static
policy for the checkpoint matrix ``S`` and then solve for the lowest-cost
recomputation matrix ``R`` with the same machinery as phase two of
Algorithm 2 (:func:`repro.solvers.min_r.solve_min_r`).

:func:`segment_checkpoint_schedule` constructs that ``S`` policy:

* checkpointed forward values are retained from the stage after their first
  evaluation to the end of the schedule (the original heuristics never
  deallocate checkpoints -- one of the inefficiencies the paper points out);
* non-checkpointed forward values live (a) through the forward sweep until
  their last forward consumer, and (b) from the stage at which the backward
  pass *enters their segment* (the stage of the gradient of the nearest
  checkpoint above them) until their last consumer -- i.e. the segment is
  recomputed once on entry and then reused, exactly as in Chen et al. (2016);
* every gradient value lives from its evaluation until its last consumer.

The schedule is only valid for *training graphs* produced by
:func:`repro.autodiff.make_training_graph`, which attach the forward-node
count and the forward-to-gradient index map to ``graph.meta``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from ..core.dfgraph import DFGraph
from ..core.schedule import ScheduleMatrices, StrategyNotApplicableError
from ..solvers.min_r import solve_min_r

__all__ = [
    "training_graph_metadata",
    "segment_checkpoint_schedule",
    "forward_candidates",
]


def training_graph_metadata(graph: DFGraph) -> tuple[int, Dict[int, int]]:
    """Return ``(n_forward, grad_index)`` for a training graph.

    Raises ``ValueError`` when the graph was not produced by
    :func:`repro.autodiff.make_training_graph` (baselines need to know which
    stage backpropagates which forward node).
    """
    n_forward = graph.meta.get("n_forward")
    grad_index = graph.meta.get("grad_index")
    if n_forward is None or grad_index is None:
        raise StrategyNotApplicableError(
            "checkpoint-set baselines require a training graph built by "
            "repro.autodiff.make_training_graph (missing grad_index metadata)"
        )
    return int(n_forward), dict(grad_index)


def forward_candidates(graph: DFGraph) -> List[int]:
    """Default checkpoint candidates: every forward node except the terminal loss."""
    n_forward, _ = training_graph_metadata(graph)
    return list(range(0, n_forward - 1))


def segment_checkpoint_schedule(
    graph: DFGraph,
    checkpoints: Iterable[int],
    *,
    keep_checkpoints_until_end: bool = True,
) -> ScheduleMatrices:
    """Lift a forward-activation checkpoint set into a full ``(R, S)`` schedule.

    Parameters
    ----------
    graph:
        Training graph (forward + backward nodes).
    checkpoints:
        Indices of forward nodes the heuristic keeps resident.
    keep_checkpoints_until_end:
        Keep checkpoints alive for the whole schedule (the behaviour of the
        original heuristics).  When ``False`` they are dropped after their last
        consumer, a small memory-aware improvement.
    """
    n = graph.size
    n_forward, grad_index = training_graph_metadata(graph)
    ckpts: Set[int] = {int(c) for c in checkpoints}
    for c in ckpts:
        if not (0 <= c < n_forward):
            raise ValueError(f"checkpoint {c} is not a forward node (n_forward={n_forward})")

    def last_user(i: int, *, forward_only: bool = False) -> Optional[int]:
        users = [j for j in graph.successors(i) if (j < n_forward if forward_only else True)]
        return max(users) if users else None

    S = np.zeros((n, n), dtype=np.uint8)

    # --- checkpointed forward values -------------------------------------- #
    for c in sorted(ckpts):
        end = n if keep_checkpoints_until_end else ((last_user(c) or c) + 1)
        S[c + 1:end, c] = 1

    # --- non-checkpointed forward values ----------------------------------- #
    sorted_ckpts = sorted(ckpts)
    for i in range(n_forward):
        if i in ckpts:
            continue
        # (a) forward-sweep liveness: keep until the last forward consumer.
        lfu = last_user(i, forward_only=True)
        if lfu is not None and lfu > i:
            S[i + 1:lfu + 1, i] = 1
        # (b) backward-phase liveness: the backward pass enters this node's
        # segment at the gradient stage of the nearest checkpoint at-or-above
        # it (or of the terminal forward node when no such checkpoint exists);
        # the value is then recomputed there and retained until its last use.
        above = [c for c in sorted_ckpts if c >= i]
        segment_top = above[0] if above else (n_forward - 1)
        # A node that is its own segment top (e.g. the loss with no checkpoint
        # above it) never gets recomputed: it is simply kept from its forward
        # evaluation until its last use.
        entry_stage = i if segment_top == i else grad_index[segment_top]
        lu = last_user(i)
        if lu is not None and lu > entry_stage:
            S[entry_stage + 1:lu + 1, i] = 1

    # --- gradient values ---------------------------------------------------- #
    for b in range(n_forward, n):
        lu = last_user(b)
        if lu is not None and lu > b:
            S[b + 1:lu + 1, b] = 1

    return solve_min_r(graph, S)
