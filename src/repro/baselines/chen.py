"""Chen et al. (2016) checkpointing heuristics and their generalizations.

The paper compares against two heuristics from *Training Deep Nets with
Sublinear Memory Cost* (Chen et al., 2016):

* **Chen sqrt(n)** -- split the chain into ``sqrt(n)`` segments and keep one
  checkpoint per segment, giving ``O(sqrt(n))`` memory at the cost of (about)
  one extra forward pass.
* **Chen greedy** -- walk the chain accumulating activation memory and emit a
  checkpoint whenever the running total exceeds a budget parameter ``b``; the
  paper builds a trade-off curve by searching over ``b``.

Both assume a *linear* forward graph, so the paper introduces two
generalizations (Appendix B) which are also implemented here by swapping the
candidate set:

* **AP variants** restrict checkpoint candidates to articulation points of the
  undirected forward graph;
* **Linearized variants** pretend the topological order is a chain and let the
  minimal-recomputation completion restore correctness afterwards.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Set

import numpy as np

from ..core.dfgraph import DFGraph
from ..core.graph_utils import articulation_points
from ..core.schedule import ScheduledResult, schedule_compute_cost
from ..core.simulator import schedule_peak_memory
from ..solvers.common import build_scheduled_result
from ..utils.timer import Timer
from .segmenting import forward_candidates, segment_checkpoint_schedule, training_graph_metadata

__all__ = [
    "chen_sqrt_n_checkpoints",
    "chen_greedy_checkpoints",
    "ap_candidates",
    "solve_chen_sqrt_n",
    "solve_chen_greedy",
]


# --------------------------------------------------------------------------- #
# Checkpoint selection
# --------------------------------------------------------------------------- #
def chen_sqrt_n_checkpoints(graph: DFGraph, candidates: Optional[Sequence[int]] = None) -> Set[int]:
    """Select every ``sqrt(n)``-th candidate as a checkpoint.

    ``candidates`` defaults to every forward node; the AP and linearized
    generalizations pass articulation points or the raw topological order.
    """
    cands = sorted(candidates) if candidates is not None else forward_candidates(graph)
    if not cands:
        return set()
    stride = max(1, int(round(math.sqrt(len(cands)))))
    return {cands[i] for i in range(stride - 1, len(cands), stride)}


def chen_greedy_checkpoints(
    graph: DFGraph,
    segment_budget: float,
    candidates: Optional[Sequence[int]] = None,
) -> Set[int]:
    """Chen et al.'s greedy selection: checkpoint when accumulated memory exceeds ``b``.

    Walk the candidate nodes in topological order, summing the activation
    memory of every forward node seen since the last checkpoint; when the sum
    exceeds ``segment_budget`` bytes, checkpoint the current candidate and
    reset the accumulator.
    """
    n_forward, _ = training_graph_metadata(graph)
    cands = sorted(candidates) if candidates is not None else forward_candidates(graph)
    cand_set = set(cands)
    selected: Set[int] = set()
    running = 0.0
    for i in range(n_forward):
        running += graph.memory(i)
        if i in cand_set and running >= segment_budget:
            selected.add(i)
            running = 0.0
    return selected


def ap_candidates(graph: DFGraph) -> List[int]:
    """Checkpoint candidates for the AP generalizations: forward-graph articulation points.

    Articulation points of the undirected forward graph disconnect it, so every
    later activation can be recomputed from the articulation point alone
    (Appendix B.1).  The network input is always resident, so graphs whose
    first node is the only AP still work.
    """
    n_forward, _ = training_graph_metadata(graph)
    fwd_nodes = list(range(n_forward))
    aps = articulation_points(graph, restrict_to=fwd_nodes)
    return [a for a in aps if a < n_forward - 1]


# --------------------------------------------------------------------------- #
# Strategy drivers
# --------------------------------------------------------------------------- #
def solve_chen_sqrt_n(
    graph: DFGraph,
    budget: Optional[float] = None,
    *,
    candidates: Optional[Sequence[int]] = None,
    strategy_name: str = "chen-sqrt(n)",
) -> ScheduledResult:
    """Run the sqrt(n) heuristic (optionally on a restricted candidate set).

    The heuristic has no memory knob; ``budget`` is only used to report
    feasibility of the resulting schedule.
    """
    with Timer() as timer:
        ckpts = chen_sqrt_n_checkpoints(graph, candidates)
        matrices = segment_checkpoint_schedule(graph, ckpts)
        peak = schedule_peak_memory(graph, matrices)
    feasible = budget is None or peak <= budget
    return build_scheduled_result(
        strategy_name, graph, matrices, budget=int(budget) if budget is not None else None,
        feasible=feasible, solve_time_s=timer.elapsed,
        solver_status="ok" if feasible else "over-budget",
        extra={"checkpoints": sorted(ckpts)},
        peak_memory=peak,
    )


def solve_chen_greedy(
    graph: DFGraph,
    budget: Optional[float] = None,
    *,
    candidates: Optional[Sequence[int]] = None,
    num_segment_budgets: int = 20,
    strategy_name: str = "chen-greedy",
) -> ScheduledResult:
    """Run the greedy heuristic, searching over the segment-size parameter ``b``.

    Every value of ``b`` yields one candidate schedule; among schedules that
    fit ``budget`` (if given) the cheapest is returned, mirroring how the paper
    builds the greedy trade-off curve.  With no budget, the schedule with the
    lowest peak memory is returned.
    """
    n_forward, _ = training_graph_metadata(graph)
    fwd_memories = [graph.memory(i) for i in range(n_forward)]
    lo = max(1.0, float(min(m for m in fwd_memories if m > 0) if any(fwd_memories) else 1.0))
    hi = float(sum(fwd_memories)) + 1.0
    segment_budgets = np.unique(np.geomspace(lo, hi, num=num_segment_budgets))

    best: Optional[tuple] = None  # (matrices, cost, peak, segment_budget, ckpts)
    evaluated = []
    # Neighbouring segment budgets frequently select the same checkpoint set;
    # each distinct set is scheduled and simulated exactly once and the full
    # ScheduledResult (validation, packaging) is built only for the winner.
    by_checkpoint_set: dict = {}
    with Timer() as timer:
        for b in segment_budgets:
            ckpts = frozenset(chen_greedy_checkpoints(graph, float(b), candidates))
            entry = by_checkpoint_set.get(ckpts)
            if entry is None:
                matrices = segment_checkpoint_schedule(graph, ckpts)
                cost = schedule_compute_cost(graph, matrices)
                peak = schedule_peak_memory(graph, matrices)
                entry = by_checkpoint_set[ckpts] = (matrices, cost, peak)
            matrices, cost, peak = entry
            evaluated.append({"segment_budget": float(b), "cost": cost, "peak_memory": peak,
                              "num_checkpoints": len(ckpts)})
            fits = budget is None or peak <= budget
            if budget is not None:
                if fits and (best is None or cost < best[1]):
                    best = (matrices, cost, peak, float(b), ckpts)
            else:
                if best is None or peak < best[2]:
                    best = (matrices, cost, peak, float(b), ckpts)
    if best is None:
        # No segment budget fit: report the lowest-memory attempt as infeasible.
        return build_scheduled_result(
            strategy_name, graph, None, budget=int(budget) if budget is not None else None,
            feasible=False, solve_time_s=timer.elapsed, solver_status="no-feasible-b",
            extra={"search": evaluated},
        )
    matrices, cost, peak, segment_budget, ckpts = best
    return build_scheduled_result(
        strategy_name, graph, matrices, budget=int(budget) if budget is not None else None,
        feasible=True, solve_time_s=timer.elapsed, solver_status="ok",
        generate_plan=False, peak_memory=peak,
        extra={"segment_budget": segment_budget, "checkpoints": sorted(ckpts),
               "search": evaluated},
    )
