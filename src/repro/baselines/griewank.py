"""Griewank & Walther (2000) logarithmic checkpointing (REVOLVE-style).

REVOLVE targets linear, unit-cost chains: with ``s`` checkpoint slots it
backpropagates an ``n``-step chain using ``O(log n)`` memory at the price of
recomputing forward steps multiple times (each step is recomputed at most
``t`` times where ``binom(s + t, s) >= n``).  The paper uses it as the
``Griewank & Walther log n`` baseline on the linear architectures (VGG16,
MobileNet); it is neither cost- nor memory-aware, which is why its Table-2
approximation ratio is the worst of all baselines (7.07x on MobileNet).

Implementation: a recursive binomial schedule in the spirit of Griewank's
``treeverse``/``revolve`` procedure.  For a segment ``(a, b]`` with ``s``
spare slots, the schedule advances from the stored state at ``a`` by the
binomial split, snapshots that position, recursively reverses the upper part,
releases the snapshot and recurses on the lower part.  We translate the
resulting *storage timeline* into the paper's ``S`` matrix and let the
minimal-recomputation completion (:func:`repro.solvers.min_r.solve_min_r`)
re-derive the forward recomputations -- which reproduces exactly the repeated
forward sweeps REVOLVE performs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.dfgraph import DFGraph
from ..core.schedule import ScheduledResult, StrategyNotApplicableError
from ..core.simulator import schedule_peak_memory
from ..solvers.common import build_scheduled_result
from ..solvers.min_r import solve_min_r
from ..utils.timer import Timer
from .segmenting import training_graph_metadata

__all__ = ["revolve_storage_timeline", "solve_griewank_logn", "is_linear_forward_graph"]


def is_linear_forward_graph(graph: DFGraph) -> bool:
    """``True`` when the forward part of a training graph is a simple chain."""
    n_forward, _ = training_graph_metadata(graph)
    for j in range(1, n_forward):
        fwd_parents = [p for p in graph.predecessors(j) if p < n_forward]
        if fwd_parents != [j - 1]:
            return False
    return True


def _binomial_split(length: int, slots: int) -> int:
    """Advance distance from the left end of a segment (Griewank's binomial rule)."""
    if slots <= 0:
        return 1
    # smallest t such that C(slots + t, slots) >= length
    t = 1
    while math.comb(slots + t, slots) < length:
        t += 1
    advance = math.comb(slots + t - 1, slots)
    return max(1, min(length - 1, advance))


def revolve_storage_timeline(
    n_steps: int,
    slots: int,
) -> Tuple[List[int], Dict[int, List[Tuple[int, int]]]]:
    """Simulate the recursive binomial schedule for an ``n_steps`` chain.

    Returns
    -------
    backward_order:
        The forward-step indices in the order their backward steps execute
        (always ``n_steps-1 .. 0`` for a chain).
    storage_intervals:
        For each stored forward step, a list of ``(first_bwd_pos, last_bwd_pos)``
        intervals (positions into ``backward_order``) during which the snapshot
        is held.
    """
    backward_order: List[int] = []
    storage_intervals: Dict[int, List[Tuple[int, int]]] = {}
    open_snapshots: Dict[int, int] = {}

    def take_snapshot(pos: int) -> None:
        open_snapshots[pos] = len(backward_order)

    def release_snapshot(pos: int) -> None:
        start = open_snapshots.pop(pos)
        storage_intervals.setdefault(pos, []).append((start, len(backward_order) - 1))

    def reverse(a: int, b: int, slots_free: int) -> None:
        """Backpropagate forward steps ``b-1 .. a`` assuming step ``a-1``'s output is available."""
        length = b - a
        if length <= 0:
            return
        if length == 1:
            backward_order.append(a)
            return
        if slots_free <= 0:
            # Out of snapshots: re-advance from the segment base for every step.
            for i in range(b - 1, a - 1, -1):
                backward_order.append(i)
            return
        split = a + _binomial_split(length, slots_free)
        take_snapshot(split - 1)          # store the activation produced by step split-1
        reverse(split, b, slots_free - 1)  # reverse the upper part with one fewer slot
        release_snapshot(split - 1)
        reverse(a, split, slots_free)      # reuse the freed slot for the lower part

    reverse(0, n_steps, slots)
    # Close any snapshots still open (defensive; reverse() releases all of them).
    for pos in list(open_snapshots):
        release_snapshot(pos)
    return backward_order, storage_intervals


def solve_griewank_logn(
    graph: DFGraph,
    budget: Optional[float] = None,
    *,
    slots: Optional[int] = None,
    strategy_name: str = "griewank-logn",
) -> ScheduledResult:
    """Apply REVOLVE-style logarithmic checkpointing to a linear training graph.

    Parameters
    ----------
    slots:
        Number of snapshot slots available to the schedule; defaults to
        ``ceil(log2(n_forward)) + 1``, the logarithmic regime the baseline is
        named after.
    budget:
        Only used to report whether the resulting schedule fits.

    Raises
    ------
    StrategyNotApplicableError
        If the forward graph is not a linear chain -- like the original
        REVOLVE, this baseline is only defined for path graphs (the paper
        applies it to VGG and MobileNet only).
    """
    n_forward, grad_index = training_graph_metadata(graph)
    if not is_linear_forward_graph(graph):
        raise StrategyNotApplicableError(
            "Griewank & Walther's REVOLVE applies only to linear forward graphs; "
            "use the AP or linearized generalizations for non-linear architectures"
        )
    if slots is None:
        slots = max(1, int(math.ceil(math.log2(max(2, n_forward)))) + 1)

    with Timer() as timer:
        backward_order, storage = revolve_storage_timeline(n_forward, slots)
        # Map "position in the backward order" to the schedule stage of that
        # backward step.  For a chain, backward step of forward node i runs in
        # stage grad_index[i].
        stage_of_pos = [grad_index[i] for i in backward_order]

        n = graph.size
        S = np.zeros((n, n), dtype=np.uint8)

        # Snapshot storage intervals -> checkpoint residency.
        for node, intervals in storage.items():
            for (p0, p1) in intervals:
                if p0 >= len(stage_of_pos):
                    continue
                start_stage = min(stage_of_pos[p0], n - 1)
                end_stage = stage_of_pos[min(p1, len(stage_of_pos) - 1)]
                lo, hi = min(start_stage, end_stage), max(start_stage, end_stage)
                # Residency must also begin no earlier than the stage after the
                # node itself is first computable.
                lo = max(lo, node + 1)
                S[lo:hi + 1, node] = 1

        # Forward-sweep liveness: each activation is kept until its next forward
        # consumer has run (standard single-sweep behaviour).
        for i in range(n_forward - 1):
            S[i + 1:i + 2, i] = 1
        # The loss activation feeds the first backward stage.
        S[n_forward - 1 + 1:grad_index[n_forward - 1] + 1, n_forward - 1] = 1

        # Gradient liveness: keep each gradient until its last consumer.
        for b in range(n_forward, n):
            users = graph.successors(b)
            if users:
                S[b + 1:max(users) + 1, b] = 1
        # Activations needed directly by each backward stage (f_i and f_{i+1} for
        # g_i) are either checkpointed above or recomputed by the min-R
        # completion, replicating REVOLVE's repeated forward sweeps.
        matrices = solve_min_r(graph, S)
        peak = schedule_peak_memory(graph, matrices)

    feasible = budget is None or peak <= budget
    return build_scheduled_result(
        strategy_name, graph, matrices, budget=int(budget) if budget is not None else None,
        feasible=feasible, solve_time_s=timer.elapsed,
        solver_status="ok" if feasible else "over-budget",
        extra={"slots": slots, "num_snapshots": len(storage)},
        peak_memory=peak,
    )
