"""Unified strategy registry: Table 1 of the paper as executable objects.

Each strategy is described by a :class:`StrategyInfo` carrying the qualitative
capability flags from Table 1 (general graphs / cost aware / memory aware) and
a ``solve`` callable with the uniform signature ``solve(graph, budget=None,
**kwargs) -> ScheduledResult``.  The evaluation harness iterates over this
registry to produce the Figure 5 trade-off curves, the Figure 6 batch-size
study and the Table 2 approximation ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..core.dfgraph import DFGraph
from ..core.schedule import ScheduledResult, checkpoint_all_schedule
from ..core.simulator import schedule_peak_memory
from ..solvers.approximation import solve_approx_lp_rounding
from ..solvers.common import build_scheduled_result
from ..solvers.ilp import solve_ilp_rematerialization
from ..utils.timer import Timer
from .chen import ap_candidates, solve_chen_greedy, solve_chen_sqrt_n
from .griewank import solve_griewank_logn
from .segmenting import forward_candidates

__all__ = ["StrategyInfo", "STRATEGIES", "get_strategy", "solve_checkpoint_all"]

#: Tri-state capability value used in Table 1 ("~" means partially).
PARTIAL = "~"


@dataclass(frozen=True)
class StrategyInfo:
    """Description and driver of one rematerialization strategy.

    ``general_graphs``, ``cost_aware`` and ``memory_aware`` mirror the columns
    of Table 1 (values ``True``, ``False`` or ``"~"`` for partial support).
    """

    key: str
    description: str
    general_graphs: object
    cost_aware: object
    memory_aware: object
    solve: Callable[..., ScheduledResult]
    linear_only: bool = False
    has_budget_knob: bool = True


def solve_checkpoint_all(graph: DFGraph, budget: Optional[float] = None,
                         **_: object) -> ScheduledResult:
    """The framework default: store every activation, compute each node once.

    Frameworks such as TensorFlow free each activation once its gradient has
    been computed, so for training graphs the policy is expressed as "every
    forward value is checkpointed until its last consumer" -- no recomputation
    ever happens, but values do not linger past the backward step that needs
    them.  For graphs without training metadata the simpler retain-everything
    schedule is used.
    """
    from .segmenting import segment_checkpoint_schedule

    with Timer() as timer:
        if "grad_index" in graph.meta:
            n_forward = int(graph.meta["n_forward"])
            matrices = segment_checkpoint_schedule(
                graph, checkpoints=range(n_forward - 1), keep_checkpoints_until_end=False
            )
        else:
            matrices = checkpoint_all_schedule(graph)
        peak = schedule_peak_memory(graph, matrices)
    feasible = budget is None or peak <= budget
    return build_scheduled_result(
        "checkpoint-all", graph, matrices, budget=int(budget) if budget is not None else None,
        feasible=feasible, solve_time_s=timer.elapsed,
        solver_status="ok" if feasible else "over-budget",
        peak_memory=peak,
    )


def _solve_ap_sqrt_n(graph: DFGraph, budget: Optional[float] = None, **kw) -> ScheduledResult:
    return solve_chen_sqrt_n(graph, budget, candidates=ap_candidates(graph),
                             strategy_name="ap-sqrt(n)", **kw)


def _solve_ap_greedy(graph: DFGraph, budget: Optional[float] = None, **kw) -> ScheduledResult:
    return solve_chen_greedy(graph, budget, candidates=ap_candidates(graph),
                             strategy_name="ap-greedy", **kw)


def _solve_linearized_sqrt_n(graph: DFGraph, budget: Optional[float] = None, **kw) -> ScheduledResult:
    return solve_chen_sqrt_n(graph, budget, candidates=forward_candidates(graph),
                             strategy_name="linearized-sqrt(n)", **kw)


def _solve_linearized_greedy(graph: DFGraph, budget: Optional[float] = None, **kw) -> ScheduledResult:
    return solve_chen_greedy(graph, budget, candidates=forward_candidates(graph),
                             strategy_name="linearized-greedy", **kw)


#: Table 1 of the paper, as a registry.  Keys are stable identifiers used by the
#: experiment harness and the benchmarks.
STRATEGIES: Dict[str, StrategyInfo] = {
    "checkpoint_all": StrategyInfo(
        key="checkpoint_all",
        description="No rematerialization; default in deep learning frameworks.",
        general_graphs=True, cost_aware=False, memory_aware=False,
        solve=solve_checkpoint_all, has_budget_knob=False,
    ),
    "griewank_logn": StrategyInfo(
        key="griewank_logn",
        description="Griewank & Walther (2000) REVOLVE procedure.",
        general_graphs=False, cost_aware=False, memory_aware=False,
        solve=solve_griewank_logn, linear_only=True, has_budget_knob=False,
    ),
    "chen_sqrt_n": StrategyInfo(
        key="chen_sqrt_n",
        description="Chen et al. (2016) sqrt(n) checkpointing heuristic.",
        general_graphs=False, cost_aware=False, memory_aware=False,
        solve=solve_chen_sqrt_n, linear_only=True, has_budget_knob=False,
    ),
    "chen_greedy": StrategyInfo(
        key="chen_greedy",
        description="Chen et al. (2016) greedy heuristic with search over parameter b.",
        general_graphs=False, cost_aware=False, memory_aware=PARTIAL,
        solve=solve_chen_greedy, linear_only=True,
    ),
    "ap_sqrt_n": StrategyInfo(
        key="ap_sqrt_n",
        description="Chen sqrt(n) on articulation points + optimal R solve.",
        general_graphs=PARTIAL, cost_aware=False, memory_aware=False,
        solve=_solve_ap_sqrt_n, has_budget_knob=False,
    ),
    "ap_greedy": StrategyInfo(
        key="ap_greedy",
        description="Chen greedy on articulation points + optimal R solve.",
        general_graphs=PARTIAL, cost_aware=False, memory_aware=PARTIAL,
        solve=_solve_ap_greedy,
    ),
    "linearized_sqrt_n": StrategyInfo(
        key="linearized_sqrt_n",
        description="Chen sqrt(n) on the topological sort + optimal R solve.",
        general_graphs=True, cost_aware=False, memory_aware=False,
        solve=_solve_linearized_sqrt_n, has_budget_knob=False,
    ),
    "linearized_greedy": StrategyInfo(
        key="linearized_greedy",
        description="Chen greedy on the topological sort + optimal R solve.",
        general_graphs=True, cost_aware=False, memory_aware=PARTIAL,
        solve=_solve_linearized_greedy,
    ),
    "checkmate_ilp": StrategyInfo(
        key="checkmate_ilp",
        description="Checkmate optimal MILP (Section 4).",
        general_graphs=True, cost_aware=True, memory_aware=True,
        solve=solve_ilp_rematerialization,
    ),
    "checkmate_approx": StrategyInfo(
        key="checkmate_approx",
        description="Checkmate two-phase LP rounding approximation (Section 5).",
        general_graphs=True, cost_aware=True, memory_aware=True,
        solve=solve_approx_lp_rounding,
    ),
}


def get_strategy(key: str) -> StrategyInfo:
    """Look up a strategy by registry key (raises ``KeyError`` with suggestions)."""
    if key not in STRATEGIES:
        raise KeyError(f"unknown strategy {key!r}; available: {', '.join(sorted(STRATEGIES))}")
    return STRATEGIES[key]
