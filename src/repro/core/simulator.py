"""Memory simulation of schedules and execution plans.

Two complementary simulators are provided:

* :func:`simulate_schedule_memory` evaluates the paper's memory recurrence
  (Eq. 2-4) directly on the ``(R, S)`` matrices, producing the ``U`` matrix the
  MILP constrains.  This is the reference used to decide budget feasibility of
  a schedule.

* :func:`simulate_plan` replays a concrete execution plan statement by
  statement, tracking live virtual registers.  It validates data-dependency
  correctness (an operation may only execute when all of its parents are
  resident) and produces a memory-over-time trace -- the data behind Figure 1
  of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .dfgraph import DFGraph
from .plan import AllocateRegister, ComputeNode, DeallocateRegister, ExecutionPlan, PlanError
from .schedule import ScheduleMatrices
from .scheduler import compute_free_events

__all__ = [
    "MemoryTrace",
    "simulate_schedule_memory",
    "schedule_peak_memory",
    "simulate_plan",
    "PlanSimulationError",
]


class PlanSimulationError(PlanError):
    """Raised when a plan violates data-dependency or liveness rules."""


@dataclass
class MemoryTrace:
    """Result of replaying an execution plan.

    Attributes
    ----------
    memory_by_statement:
        Memory in use (bytes, including the constant input/parameter overhead)
        after executing each statement of the plan.
    compute_times:
        Cumulative compute cost after each statement (cost-model units); flat
        segments correspond to allocation/deallocation statements.
    peak_memory:
        High-water mark over the whole plan.
    total_cost:
        Total compute cost of the plan (sum of node costs over all computes).
    """

    memory_by_statement: np.ndarray
    compute_times: np.ndarray
    peak_memory: int
    total_cost: float
    compute_counts: Dict[int, int] = field(default_factory=dict)

    def timeline(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(cumulative cost, memory)`` arrays for plotting Figure 1."""
        return self.compute_times, self.memory_by_statement


def simulate_schedule_memory(
    graph: DFGraph,
    matrices: ScheduleMatrices,
) -> np.ndarray:
    """Evaluate the ``U`` memory-accounting recurrence of the paper (Eq. 2-4).

    ``U[t, k]`` is the memory in use in stage ``t`` immediately after
    evaluating node ``v_k`` (and before garbage-collecting ``v_k``'s
    dependencies).  Entries for nodes that are not evaluated in a stage carry
    the running value forward so that ``U.max()`` is the schedule's peak.

    Returns
    -------
    ``(T, n + 1)`` float array; column 0 is ``U[t, 0]`` (memory at the start of
    the stage: constant overhead plus checkpoints).
    """
    R, S = matrices.R, matrices.S
    T, n = R.shape
    mem = graph.memory_vector
    free_events = compute_free_events(graph, matrices, include_self_frees=True)

    U = np.zeros((T, n + 1), dtype=np.float64)
    for t in range(T):
        U[t, 0] = graph.constant_overhead + float(mem @ S[t])
        running = U[t, 0]
        for k in range(n):
            if R[t, k]:
                running += mem[k]
            U[t, k + 1] = running
            # Garbage collection after evaluating v_k.
            if R[t, k]:
                for i in free_events.get((t, k), ()):
                    running -= mem[i]
    return U


def schedule_peak_memory(graph: DFGraph, matrices: ScheduleMatrices) -> int:
    """Peak memory of a schedule under the paper's accounting (max over ``U``)."""
    return int(np.ceil(simulate_schedule_memory(graph, matrices).max()))


def simulate_plan(
    graph: DFGraph,
    plan: ExecutionPlan,
    *,
    validate_dependencies: bool = True,
) -> MemoryTrace:
    """Replay an execution plan, tracking register liveness and memory.

    Parameters
    ----------
    graph:
        The data-flow graph the plan was generated for.
    plan:
        The statement list to replay.
    validate_dependencies:
        When ``True`` (default), raise :class:`PlanSimulationError` if a
        ``compute`` statement runs while one of the node's parents has no live
        register -- i.e. the plan is not a correct rematerialization schedule.

    Returns
    -------
    :class:`MemoryTrace` with the per-statement memory profile.
    """
    live_registers: Dict[int, int] = {}  # register id -> node id
    live_nodes: Dict[int, int] = {}      # node id -> count of live registers
    reg_sizes: Dict[int, int] = {}

    current_memory = graph.constant_overhead
    peak = current_memory
    total_cost = 0.0
    counts: Dict[int, int] = {}

    memories: List[float] = []
    times: List[float] = []

    for idx, stmt in enumerate(plan.statements):
        if isinstance(stmt, AllocateRegister):
            if stmt.register in live_registers:
                raise PlanSimulationError(f"statement {idx}: register %{stmt.register} already live")
            live_registers[stmt.register] = stmt.node_id
            reg_sizes[stmt.register] = stmt.size_bytes
            current_memory += stmt.size_bytes
        elif isinstance(stmt, ComputeNode):
            node = stmt.node_id
            if stmt.register not in live_registers:
                raise PlanSimulationError(
                    f"statement {idx}: compute v{node} into dead register %{stmt.register}"
                )
            if validate_dependencies:
                for parent in graph.predecessors(node):
                    if live_nodes.get(parent, 0) <= 0:
                        raise PlanSimulationError(
                            f"statement {idx}: compute v{node} but parent v{parent} is not resident"
                        )
            live_nodes[node] = live_nodes.get(node, 0) + 1
            total_cost += graph.cost(node)
            counts[node] = counts.get(node, 0) + 1
        elif isinstance(stmt, DeallocateRegister):
            if stmt.register not in live_registers:
                raise PlanSimulationError(
                    f"statement {idx}: deallocate of dead register %{stmt.register}"
                )
            node = live_registers.pop(stmt.register)
            current_memory -= reg_sizes.pop(stmt.register)
            if live_nodes.get(node, 0) > 0:
                live_nodes[node] -= 1
        else:  # pragma: no cover - defensive
            raise PlanSimulationError(f"statement {idx}: unknown statement {stmt!r}")

        peak = max(peak, current_memory)
        memories.append(current_memory)
        times.append(total_cost)

    # A compute statement marks the node live before its register is written in
    # our accounting; plans generated by Algorithm 1 always allocate right
    # before computing, so this ordering matches the paper's U accounting.
    return MemoryTrace(
        memory_by_statement=np.asarray(memories, dtype=np.float64),
        compute_times=np.asarray(times, dtype=np.float64),
        peak_memory=int(np.ceil(peak)),
        total_cost=float(total_cost),
        compute_counts=counts,
    )
