"""Memory simulation of schedules and execution plans.

Two complementary simulators are provided:

* :func:`simulate_schedule_memory` evaluates the paper's memory recurrence
  (Eq. 2-4) directly on the ``(R, S)`` matrices, producing the ``U`` matrix the
  MILP constrains.  This is the reference used to decide budget feasibility of
  a schedule.

* :func:`simulate_plan` replays a concrete execution plan statement by
  statement, tracking live virtual registers.  It validates data-dependency
  correctness (an operation may only execute when all of its parents are
  resident) and produces a memory-over-time trace -- the data behind Figure 1
  of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from .dfgraph import DFGraph
from .plan import AllocateRegister, ComputeNode, DeallocateRegister, ExecutionPlan, PlanError
from .schedule import ScheduleMatrices
from .scheduler import compute_free_events

__all__ = [
    "MemoryTrace",
    "simulate_schedule_memory",
    "simulate_schedule_memory_reference",
    "schedule_peak_memory",
    "simulate_plan",
    "PlanSimulationError",
]


class PlanSimulationError(PlanError):
    """Raised when a plan violates data-dependency or liveness rules."""


@dataclass
class MemoryTrace:
    """Result of replaying an execution plan.

    Attributes
    ----------
    memory_by_statement:
        Memory in use (bytes, including the constant input/parameter overhead)
        after executing each statement of the plan.
    compute_times:
        Cumulative compute cost after each statement (cost-model units); flat
        segments correspond to allocation/deallocation statements.
    peak_memory:
        High-water mark over the whole plan.
    total_cost:
        Total compute cost of the plan (sum of node costs over all computes).
    """

    memory_by_statement: np.ndarray
    compute_times: np.ndarray
    peak_memory: int
    total_cost: float
    compute_counts: Dict[int, int] = field(default_factory=dict)

    def timeline(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(cumulative cost, memory)`` arrays for plotting Figure 1."""
        return self.compute_times, self.memory_by_statement


def simulate_schedule_memory(
    graph: DFGraph,
    matrices: ScheduleMatrices,
) -> np.ndarray:
    """Evaluate the ``U`` memory-accounting recurrence of the paper (Eq. 2-4).

    ``U[t, k]`` is the memory in use in stage ``t`` immediately after
    evaluating node ``v_k`` (and before garbage-collecting ``v_k``'s
    dependencies).  Entries for nodes that are not evaluated in a stage carry
    the running value forward so that ``U.max()`` is the schedule's peak.

    Vectorized: instead of materializing the FREE events dict and running the
    recurrence one ``(t, k)`` cell at a time, each stage's profile is a single
    cumulative sum.  A value ``v_i`` is freed right after the *last* node of
    ``{v_i} ∪ USERS(v_i)`` computed in the stage (all users follow ``i`` in
    topological order, so this is exactly Eq. (5)'s "no later user pending"
    rule), unless it is checkpointed into stage ``t+1``.  All quantities are
    integer-valued float64, so the cumulative sums are bit-equal to the
    sequential reference (:func:`simulate_schedule_memory_reference`).

    Returns
    -------
    ``(T, n + 1)`` float array; column 0 is ``U[t, 0]`` (memory at the start of
    the stage: constant overhead plus checkpoints).
    """
    R, S = matrices.R, matrices.S
    T, n = R.shape
    mem = graph.memory_vector
    parents, children = graph.edge_arrays
    Rb = R.astype(bool)

    # Last position in each stage at which a value is (potentially) freed:
    # the latest computed member of {i} ∪ USERS(i); -1 when none is computed.
    # O(T * |E|): the self position where R[t, i], then a scatter-max of every
    # computed user's position onto its parent's column.
    last_use = np.where(Rb, np.arange(n), -1)
    if parents.size:
        user_pos = np.where(Rb[:, children], children, -1)  # (T, |E|)
        rows = np.repeat(np.arange(T), parents.shape[0])
        cols = np.tile(parents, T)
        np.maximum.at(last_use, (rows, cols), user_pos.ravel())

    freed = last_use >= 0
    freed[:-1] &= S[1:] == 0  # values checkpointed into t+1 are not collected

    # Per-stage profile as one cumulative sum: +M_k at each computed position,
    # -M_i right after each value's last use (frees after the final position
    # fall off the end of the stage).
    delta = np.where(Rb, mem, 0.0)
    t_idx, i_idx = np.nonzero(freed)
    at = last_use[t_idx, i_idx] + 1
    inside = at < n
    np.subtract.at(delta, (t_idx[inside], at[inside]), mem[i_idx[inside]])

    U = np.zeros((T, n + 1), dtype=np.float64)
    U[:, 0] = graph.constant_overhead + S @ mem
    U[:, 1:] = U[:, :1] + np.cumsum(delta, axis=1)
    return U


def simulate_schedule_memory_reference(
    graph: DFGraph,
    matrices: ScheduleMatrices,
) -> np.ndarray:
    """Sequential reference implementation of the ``U`` recurrence.

    Replays Eq. (2-4) cell by cell exactly as written in the paper, deriving
    deallocations from :func:`~repro.core.scheduler.compute_free_events`.
    Kept as the oracle the vectorized :func:`simulate_schedule_memory` is
    tested against; not used on any hot path.
    """
    R, S = matrices.R, matrices.S
    T, n = R.shape
    mem = graph.memory_vector
    free_events = compute_free_events(graph, matrices, include_self_frees=True)

    U = np.zeros((T, n + 1), dtype=np.float64)
    for t in range(T):
        U[t, 0] = graph.constant_overhead + float(mem @ S[t])
        running = U[t, 0]
        for k in range(n):
            if R[t, k]:
                running += mem[k]
            U[t, k + 1] = running
            # Garbage collection after evaluating v_k.
            if R[t, k]:
                for i in free_events.get((t, k), ()):
                    running -= mem[i]
    return U


def schedule_peak_memory(graph: DFGraph, matrices: ScheduleMatrices) -> int:
    """Peak memory of a schedule under the paper's accounting (max over ``U``)."""
    return int(np.ceil(simulate_schedule_memory(graph, matrices).max()))


def simulate_plan(
    graph: DFGraph,
    plan: ExecutionPlan,
    *,
    validate_dependencies: bool = True,
) -> MemoryTrace:
    """Replay an execution plan, tracking register liveness and memory.

    Parameters
    ----------
    graph:
        The data-flow graph the plan was generated for.
    plan:
        The statement list to replay.
    validate_dependencies:
        When ``True`` (default), raise :class:`PlanSimulationError` if a
        ``compute`` statement runs while one of the node's parents has no
        register currently *holding a value* -- i.e. the plan is not a correct
        rematerialization schedule.  Residency follows the register-reuse
        contract of :mod:`repro.core.plan`: a node is resident iff at least
        one register holds a computed value for it, and recomputing into a
        still-live register replaces the value rather than duplicating it.

    Returns
    -------
    :class:`MemoryTrace` with the per-statement memory profile.  Register
    bytes are charged at ``allocate`` (the plan's declared ``size_bytes``),
    whereas :func:`repro.execution.execute_plan` charges actual ``nbytes`` at
    ``compute``; Algorithm 1 emits ``allocate`` immediately before the first
    ``compute`` of each register, so the two peaks agree whenever declared
    sizes match actual tensor sizes.
    """
    live_registers: Dict[int, int] = {}  # register id -> node id
    computed: set = set()                # registers currently holding a value
    live_nodes: Dict[int, int] = {}      # node id -> registers holding its value
    reg_sizes: Dict[int, int] = {}

    current_memory = graph.constant_overhead
    peak = current_memory
    total_cost = 0.0
    counts: Dict[int, int] = {}

    memories: List[float] = []
    times: List[float] = []

    for idx, stmt in enumerate(plan.statements):
        if isinstance(stmt, AllocateRegister):
            if stmt.register in live_registers:
                raise PlanSimulationError(f"statement {idx}: register %{stmt.register} already live")
            live_registers[stmt.register] = stmt.node_id
            reg_sizes[stmt.register] = stmt.size_bytes
            current_memory += stmt.size_bytes
        elif isinstance(stmt, ComputeNode):
            node = stmt.node_id
            if stmt.register not in live_registers:
                raise PlanSimulationError(
                    f"statement {idx}: compute v{node} into dead register %{stmt.register}"
                )
            if live_registers[stmt.register] != node:
                raise PlanSimulationError(
                    f"statement {idx}: register %{stmt.register} allocated for node "
                    f"{live_registers[stmt.register]} but computed with node {node}"
                )
            if validate_dependencies:
                for parent in graph.predecessors(node):
                    if live_nodes.get(parent, 0) <= 0:
                        raise PlanSimulationError(
                            f"statement {idx}: compute v{node} but parent v{parent} is not resident"
                        )
            if stmt.register not in computed:
                # First compute into this register makes the node's value
                # resident there; *re*-computing into the same register only
                # replaces the value, so the residency count must not grow
                # (incrementing per compute was the refcount-leak bug that
                # kept nodes "resident" after their register was freed).
                computed.add(stmt.register)
                live_nodes[node] = live_nodes.get(node, 0) + 1
            total_cost += graph.cost(node)
            counts[node] = counts.get(node, 0) + 1
        elif isinstance(stmt, DeallocateRegister):
            if stmt.register not in live_registers:
                raise PlanSimulationError(
                    f"statement {idx}: deallocate of dead register %{stmt.register}"
                )
            node = live_registers.pop(stmt.register)
            current_memory -= reg_sizes.pop(stmt.register)
            if stmt.register in computed:
                computed.discard(stmt.register)
                live_nodes[node] -= 1
                if live_nodes[node] <= 0:
                    del live_nodes[node]
        else:  # pragma: no cover - defensive
            raise PlanSimulationError(f"statement {idx}: unknown statement {stmt!r}")

        peak = max(peak, current_memory)
        memories.append(current_memory)
        times.append(total_cost)

    return MemoryTrace(
        memory_by_statement=np.asarray(memories, dtype=np.float64),
        compute_times=np.asarray(times, dtype=np.float64),
        peak_memory=int(np.ceil(peak)),
        total_cost=float(total_cost),
        compute_counts=counts,
    )
