"""Lowering ``(R, S)`` schedules into concrete execution plans (Algorithm 1).

The solver outputs a pair of 0/1 matrices describing *what* is resident and
*what* is recomputed per stage.  This module derives the ``FREE`` deallocation
events from those matrices (paper Eq. 5-6 / §4.8) and performs the row-major
scan of Algorithm 1 to emit an ``allocate`` / ``compute`` / ``deallocate``
statement list, followed by the deallocation code-motion pass described in
§4.9.

Plans emitted here obey the register-reuse contract pinned down in
:mod:`repro.core.plan`: every register is allocated immediately before its
(single) compute, and when a stage recomputes a node whose previous copy is
still live the old register is deallocated *first*, so a node never occupies
two registers at once and the simulator's allocate-time accounting matches
the executor's compute-time accounting statement for statement.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .dfgraph import DFGraph
from .plan import AllocateRegister, ComputeNode, DeallocateRegister, ExecutionPlan
from .schedule import ScheduleMatrices

__all__ = [
    "compute_free_events",
    "generate_execution_plan",
    "hoist_deallocations",
]


def compute_free_events(
    graph: DFGraph,
    matrices: ScheduleMatrices,
    *,
    include_self_frees: bool = True,
) -> Dict[Tuple[int, int], List[int]]:
    """Evaluate the ``FREE`` variables implied by an ``(R, S)`` schedule.

    Implements Eq. (5) of the paper:

    ``FREE[t, i, k] = R[t, k] * (1 - S[t+1, i]) * prod_{j in USERS[i], j > k} (1 - R[t, j])``

    i.e. dependency ``v_i`` may be garbage collected right after evaluating
    ``v_k`` in stage ``t`` iff ``v_k`` was actually evaluated, ``v_i`` is not
    checkpointed into the next stage and no later user of ``v_i`` runs in the
    same stage.  ``S[T, i]`` (beyond the final stage) is treated as zero.

    Parameters
    ----------
    include_self_frees:
        Also evaluate ``FREE[t, k, k]`` -- freeing a value immediately after a
        spurious recomputation.  The MILP eliminates these variables by
        optimality (§4.8) and recovers them after solving, which is exactly
        what this flag reproduces.

    Returns
    -------
    Mapping ``(t, k) -> sorted list of node ids freed right after computing k``.
    """
    R, S = matrices.R, matrices.S
    T, n = R.shape
    free_events: Dict[Tuple[int, int], List[int]] = {}

    def next_stage_checkpointed(t: int, i: int) -> bool:
        return t + 1 < T and bool(S[t + 1, i])

    for t in range(T):
        computed = np.flatnonzero(R[t]).tolist()
        computed_set = set(computed)
        for k in computed:
            candidates = list(graph.predecessors(k))
            if include_self_frees:
                candidates.append(k)
            freed: List[int] = []
            for i in candidates:
                if next_stage_checkpointed(t, i):
                    continue
                later_user_in_stage = any(
                    (j > k) and (j in computed_set) for j in graph.successors(i)
                )
                if later_user_in_stage:
                    continue
                freed.append(i)
            if freed:
                free_events[(t, k)] = sorted(set(freed))
    return free_events


def generate_execution_plan(
    graph: DFGraph,
    matrices: ScheduleMatrices,
    *,
    hoist: bool = True,
) -> ExecutionPlan:
    """Algorithm 1: lower ``(R, S, FREE)`` into a concrete execution plan.

    The plan walks stages in order and, within each stage, nodes in topological
    order.  When ``R[t, k] = 1`` a fresh virtual register is allocated and the
    node computed into it; afterwards any dependency whose ``FREE`` event fires
    is deallocated.  At each stage boundary, values that are neither
    checkpointed into the next stage nor already freed are deallocated -- this
    mirrors the solver's memory accounting, which drops non-checkpointed values
    from ``U[t+1, 0]``.

    Parameters
    ----------
    hoist:
        Apply the §4.9 code-motion optimization, moving deallocations of
        checkpoints that are unused within a stage to the start of that stage.
    """
    R, S = matrices.R, matrices.S
    T, n = R.shape
    if n != graph.size:
        raise ValueError("schedule width does not match graph size")

    free_events = compute_free_events(graph, matrices)
    plan = ExecutionPlan(graph_name=graph.name)

    regs: Dict[int, int] = {}  # node id -> live register id
    next_reg = 0
    terminal = graph.terminal_node

    for t in range(T):
        stage_members = np.flatnonzero(R[t]).tolist()
        for k in stage_members:
            # Re-computing a value whose old copy is still live: drop the old copy
            # first so a node never occupies two registers simultaneously.
            if k in regs:
                plan.append(DeallocateRegister(register=regs[k], node_id=k))
                del regs[k]
            reg = next_reg
            next_reg += 1
            plan.append(AllocateRegister(register=reg, node_id=k, size_bytes=graph.memory(k)))
            plan.append(ComputeNode(register=reg, node_id=k))
            regs[k] = reg
            for i in free_events.get((t, k), ()):
                if i in regs:
                    plan.append(DeallocateRegister(register=regs[i], node_id=i))
                    del regs[i]
        # Stage boundary: free anything not carried into stage t+1.
        if t + 1 < T:
            carried = set(np.flatnonzero(S[t + 1]).tolist())
        else:
            carried = {terminal}  # keep the final result live at program end
        for i in sorted(list(regs.keys())):
            if i not in carried:
                plan.append(DeallocateRegister(register=regs[i], node_id=i))
                del regs[i]

    if hoist:
        plan = hoist_deallocations(graph, plan)
    plan.validate_structure()
    return plan


def hoist_deallocations(graph: DFGraph, plan: ExecutionPlan) -> ExecutionPlan:
    """Deallocation code motion (§4.9).

    Move each ``deallocate`` statement as early as possible: immediately after
    the last preceding statement that *uses* the value (a compute of the value
    itself, or a compute of one of its users).  The solver already guarantees
    the un-optimized plan respects the budget, so this pass can only lower the
    memory high-water mark; it never changes which values are computed.
    """
    result = list(plan.statements)
    # Registers are allocated (and therefore deallocated) at most once, so a
    # register id uniquely identifies a deallocation statement.  Process each
    # one independently, re-locating it in the (mutating) statement list.
    dealloc_regs = [s.register for s in result if isinstance(s, DeallocateRegister)]

    for reg in dealloc_regs:
        idx = next(
            i for i, s in enumerate(result)
            if isinstance(s, DeallocateRegister) and s.register == reg
        )
        stmt = result[idx]
        assert isinstance(stmt, DeallocateRegister)
        node = stmt.node_id
        users = set(graph.successors(node))
        # Find the last statement before idx that requires `node` to be live.
        last_use = -1
        for j in range(idx - 1, -1, -1):
            s = result[j]
            if isinstance(s, ComputeNode) and (s.node_id == node or s.node_id in users):
                last_use = j
                break
            if isinstance(s, AllocateRegister) and s.register == stmt.register:
                last_use = j
                break
        target = last_use + 1
        if target < idx:
            result.pop(idx)
            result.insert(target, stmt)
    hoisted = ExecutionPlan(statements=result, graph_name=plan.graph_name)
    hoisted.validate_structure()
    return hoisted
