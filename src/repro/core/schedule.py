"""Schedule representation: the ``R`` / ``S`` decision matrices (paper §4.2).

Checkmate represents a rematerialization schedule by unrolling execution into
``T`` stages (``T = n`` under the frontier-advancing partitioning of §4.6):

* ``R[t, i] = 1``  -- operation ``v_i`` is (re)computed during stage ``t``;
* ``S[t, i] = 1``  -- the value of ``v_i`` is retained in memory from stage
  ``t - 1`` into stage ``t`` (a *checkpoint*);
* ``FREE[t, i, k] = 1`` -- ``v_i`` may be deallocated in stage ``t`` right
  after evaluating ``v_k`` (auxiliary accounting variable, §4.4).

This module provides a small container for those matrices, the constraint
checkers used by the tests and the approximation algorithm, and the canonical
"checkpoint all" schedule that frameworks use by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .dfgraph import DFGraph
from .plan import ExecutionPlan

__all__ = [
    "ScheduleMatrices",
    "ScheduledResult",
    "StrategyNotApplicableError",
    "checkpoint_all_schedule",
    "checkpoint_last_node_schedule",
    "validate_correctness_constraints",
    "validate_correctness_constraints_reference",
    "schedule_compute_cost",
]


class StrategyNotApplicableError(ValueError):
    """A strategy does not apply to this graph's structure.

    Raised by linear-only baselines on non-linear graphs and by
    checkpoint-set heuristics on graphs without training metadata.  The solve
    service converts exactly this exception into an infeasible
    ``not-applicable`` result; other ``ValueError``\\ s (misconfigured options,
    invalid schedules) propagate so misuse is never silently reported as
    infeasibility.
    """


@dataclass
class ScheduleMatrices:
    """Dense ``R`` and ``S`` matrices for a ``T``-stage schedule.

    Both matrices have shape ``(T, n)`` with ``T == n`` for frontier-advancing
    schedules.  They are stored as ``uint8`` 0/1 arrays; the FREE tensor is
    derived lazily by the scheduler because it is large (``T x |E|``) and fully
    determined by ``R`` and ``S``.
    """

    R: np.ndarray
    S: np.ndarray

    def __post_init__(self) -> None:
        self.R = np.asarray(self.R, dtype=np.uint8)
        self.S = np.asarray(self.S, dtype=np.uint8)
        if self.R.shape != self.S.shape:
            raise ValueError(f"R shape {self.R.shape} != S shape {self.S.shape}")
        if self.R.ndim != 2:
            raise ValueError("R and S must be 2-D (stages x nodes)")

    @property
    def num_stages(self) -> int:
        return self.R.shape[0]

    @property
    def num_nodes(self) -> int:
        return self.R.shape[1]

    def copy(self) -> "ScheduleMatrices":
        return ScheduleMatrices(self.R.copy(), self.S.copy())

    def recomputation_counts(self) -> np.ndarray:
        """Number of times each node is evaluated across all stages."""
        return self.R.sum(axis=0)

    def total_evaluations(self) -> int:
        return int(self.R.sum())


def schedule_compute_cost(graph: DFGraph, matrices: ScheduleMatrices) -> float:
    """Objective (1a): total cost ``sum_t sum_i C_i R[t, i]``."""
    return float((matrices.R.astype(np.float64) @ graph.cost_vector).sum())


def validate_correctness_constraints(
    graph: DFGraph,
    matrices: ScheduleMatrices,
    *,
    frontier_advancing: bool = True,
) -> List[str]:
    """Check the paper's correctness constraints and return violation messages.

    The checks mirror constraints (1b), (1c), (1d)/(8b), (1e)/(8a) and the
    lower-triangular structure (8c).  An empty return value means the schedule
    is a *correct* (dependency-feasible, completing) schedule; memory
    feasibility is a separate question answered by the simulator.

    Validation runs on every result the solvers package up, so the all-clear
    case (by far the common one) is decided with a handful of vectorized
    matrix tests; only schedules that actually violate a constraint take the
    per-cell loop below to produce the detailed messages.
    """
    R, S = matrices.R, matrices.S
    T, n = R.shape

    if n != graph.size:
        return [f"matrix width {n} != graph size {graph.size}"]

    parents, children = graph.edge_arrays
    resident = (R | S).astype(bool)
    clean = (
        not (R[:, children].astype(bool) & ~resident[:, parents]).any()  # (1b)
        and not (S[1:].astype(bool) & ~resident[:-1]).any()              # (1c)
        and not S[0].any()                                               # (1d)
        and R[:, graph.terminal_node].any()                              # (1e)
    )
    if clean and frontier_advancing:
        clean = (
            T == n
            and bool((np.diagonal(R) == 1).all())                        # (8a)
            and not np.triu(R, k=1).any()                                # (8c)
            and not np.triu(S, k=0).any()                                # (8b)
        )
    if clean:
        return []
    return validate_correctness_constraints_reference(
        graph, matrices, frontier_advancing=frontier_advancing
    )


def validate_correctness_constraints_reference(
    graph: DFGraph,
    matrices: ScheduleMatrices,
    *,
    frontier_advancing: bool = True,
) -> List[str]:
    """Cell-by-cell constraint checker producing the detailed messages.

    The per-``(t, cell)`` loop the vectorized
    :func:`validate_correctness_constraints` falls back to when a schedule is
    actually broken; also the reference oracle for the fast path's tests.
    """
    R, S = matrices.R, matrices.S
    T, n = R.shape
    violations: List[str] = []

    if n != graph.size:
        return [f"matrix width {n} != graph size {graph.size}"]

    # (1b) computing v_j in stage t requires each parent either recomputed or checkpointed.
    for t in range(T):
        for (i, j) in graph.edges():
            if R[t, j] and not (R[t, i] or S[t, i]):
                violations.append(
                    f"(1b) stage {t}: node {j} computed but parent {i} not resident"
                )
    # (1c) a value can only be checkpointed into stage t if it existed in stage t-1.
    for t in range(1, T):
        for i in range(n):
            if S[t, i] and not (R[t - 1, i] or S[t - 1, i]):
                violations.append(
                    f"(1c) stage {t}: node {i} checkpointed without being resident in stage {t-1}"
                )
    # (1d) nothing is checkpointed into the first stage.
    if S[0].any():
        violations.append("(1d) stage 0 has initial checkpoints")
    # (1e) the terminal node is computed at least once.
    if not R[:, graph.terminal_node].any():
        violations.append("(1e) terminal node never computed")

    if frontier_advancing:
        if T != n:
            violations.append(f"(8) frontier-advancing schedules need T == n, got T={T}")
        else:
            for t in range(T):
                if not R[t, t]:
                    violations.append(f"(8a) stage {t}: diagonal R[{t},{t}] != 1")
                if R[t, t + 1:].any():
                    violations.append(f"(8c) stage {t}: R not lower-triangular")
                if S[t, t:].any():
                    violations.append(f"(8b) stage {t}: S not strictly lower-triangular")
    return violations


def checkpoint_all_schedule(graph: DFGraph) -> ScheduleMatrices:
    """The default framework behaviour: compute every node once, retain everything.

    In the frontier-advancing representation this is ``R = I`` (each node is
    computed exactly once, in its own stage) and ``S`` keeping every previously
    computed value alive in all later stages.  This is the ``Checkpoint all
    (ideal)`` baseline from Table 1 of the paper.
    """
    n = graph.size
    R = np.eye(n, dtype=np.uint8)
    S = np.tril(np.ones((n, n), dtype=np.uint8), k=-1)
    return ScheduleMatrices(R, S)


def checkpoint_last_node_schedule(graph: DFGraph) -> ScheduleMatrices:
    """A maximally lazy schedule: keep only what the frontier forces, recompute the rest.

    Every stage ``t`` recomputes the full ancestor set of node ``t`` from
    scratch.  This is the other extreme of the memory/compute trade-off and is
    mainly useful as a stress-test fixture and a worst-case overhead bound.
    """
    from .graph_utils import ancestors

    n = graph.size
    R = np.zeros((n, n), dtype=np.uint8)
    S = np.zeros((n, n), dtype=np.uint8)
    for t in range(n):
        R[t, t] = 1
        for a in ancestors(graph, t):
            R[t, a] = 1
    return ScheduleMatrices(R, S)


@dataclass
class ScheduledResult:
    """The result of running one rematerialization strategy on one graph.

    This bundles everything the evaluation harness needs: the schedule itself,
    the lowered execution plan, and the headline metrics (compute cost under
    the graph's cost model, peak memory from the simulator, solver statistics).
    """

    strategy: str
    graph: DFGraph
    matrices: Optional[ScheduleMatrices]
    plan: Optional[ExecutionPlan]
    compute_cost: float
    peak_memory: int
    feasible: bool
    budget: Optional[int] = None
    solve_time_s: float = 0.0
    solver_status: str = "ok"
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def overhead(self) -> float:
        """Compute overhead relative to the checkpoint-all ideal (>= 1.0 when feasible)."""
        ideal = self.graph.total_cost()
        if ideal <= 0:
            return float("nan")
        return self.compute_cost / ideal

    def within_budget(self) -> bool:
        """Whether the measured peak memory fits the requested budget."""
        if self.budget is None:
            return True
        return self.peak_memory <= self.budget

    def summary(self) -> str:
        status = "feasible" if self.feasible else f"INFEASIBLE({self.solver_status})"
        budget = f"{self.budget / 2**30:.2f} GiB" if self.budget is not None else "unbounded"
        return (
            f"{self.strategy:<24s} budget={budget:<12s} cost={self.compute_cost:.4g} "
            f"overhead={self.overhead:.3f}x peak_mem={self.peak_memory / 2**20:.1f} MiB "
            f"[{status}]"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ScheduledResult({self.summary()})"
