"""Structural graph algorithms shared by the solvers and baselines.

These utilities operate on :class:`repro.core.dfgraph.DFGraph` instances and
provide the pieces of graph machinery the paper relies on:

* articulation-point discovery for the ``AP sqrt(n)`` / ``AP greedy``
  baseline generalizations (paper Appendix B.1),
* linearization of a DAG into a path graph for the ``Linearized`` baselines
  (Appendix B.2),
* ancestor/descendant closures used when backing out the minimal
  recomputation set from a fixed checkpoint selection, and
* random-DAG generation used by the property-based test-suite.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

import numpy as np

from .dfgraph import DFGraph, NodeInfo

__all__ = [
    "articulation_points",
    "ancestors",
    "descendants",
    "transitive_closure",
    "linearized_chain_edges",
    "is_topological_order",
    "random_layered_dag",
    "linear_graph",
]


def is_topological_order(graph: DFGraph) -> bool:
    """Check that node numbering respects every edge (always true by construction)."""
    return all(i < j for i, j in graph.edges())


def ancestors(graph: DFGraph, node: int) -> Set[int]:
    """All transitive predecessors of ``node`` (excluding the node itself)."""
    seen: Set[int] = set()
    stack = list(graph.predecessors(node))
    while stack:
        cur = stack.pop()
        if cur in seen:
            continue
        seen.add(cur)
        stack.extend(graph.predecessors(cur))
    return seen


def descendants(graph: DFGraph, node: int) -> Set[int]:
    """All transitive successors of ``node`` (excluding the node itself)."""
    seen: Set[int] = set()
    stack = list(graph.successors(node))
    while stack:
        cur = stack.pop()
        if cur in seen:
            continue
        seen.add(cur)
        stack.extend(graph.successors(cur))
    return seen


def transitive_closure(graph: DFGraph) -> Dict[int, FrozenSet[int]]:
    """Map each node to the frozen set of its ancestors.

    Computed in a single pass over the topological order, so the overall cost
    is ``O(n * n / wordsize)`` using Python sets; adequate for the graph sizes
    Checkmate deals with (hundreds of nodes).
    """
    closure: Dict[int, FrozenSet[int]] = {}
    for j in range(graph.size):
        acc: Set[int] = set()
        for i in graph.predecessors(j):
            acc.add(i)
            acc |= closure[i]
        closure[j] = frozenset(acc)
    return closure


def articulation_points(graph: DFGraph, restrict_to: Sequence[int] | None = None) -> List[int]:
    """Articulation points of the *undirected* form of the graph.

    Articulation points (cut vertices) are the checkpoint candidates used by
    the ``AP`` baseline generalizations (paper Appendix B.1): removing such a
    vertex disconnects the undirected forward graph, so every later value can
    be recomputed from the articulation point alone.

    Parameters
    ----------
    graph:
        The data-flow graph.
    restrict_to:
        If given, only consider the induced subgraph on these nodes (the paper
        applies this to the forward-pass subgraph).

    Returns
    -------
    Sorted list of node indices (in the original graph's numbering).
    """
    if restrict_to is None:
        restrict_to = list(range(graph.size))
    keep = sorted(set(restrict_to))
    keep_set = set(keep)

    adjacency: Dict[int, List[int]] = {v: [] for v in keep}
    for i, j in graph.edges():
        if i in keep_set and j in keep_set:
            adjacency[i].append(j)
            adjacency[j].append(i)

    # Iterative Tarjan-Hopcroft articulation point algorithm (avoids Python
    # recursion limits on deep chains such as linearized VGG graphs).
    visited: Set[int] = set()
    disc: Dict[int, int] = {}
    low: Dict[int, int] = {}
    parent: Dict[int, int] = {}
    aps: Set[int] = set()
    timer = 0

    for root in keep:
        if root in visited:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        root_children = 0
        order: List[int] = []
        visited.add(root)
        disc[root] = low[root] = timer
        timer += 1
        while stack:
            node, child_idx = stack.pop()
            if child_idx < len(adjacency[node]):
                stack.append((node, child_idx + 1))
                nxt = adjacency[node][child_idx]
                if nxt not in visited:
                    visited.add(nxt)
                    parent[nxt] = node
                    disc[nxt] = low[nxt] = timer
                    timer += 1
                    if node == root:
                        root_children += 1
                    stack.append((nxt, 0))
                elif nxt != parent.get(node):
                    low[node] = min(low[node], disc[nxt])
            else:
                order.append(node)
                p = parent.get(node)
                if p is not None:
                    low[p] = min(low[p], low[node])
                    if p != root and low[node] >= disc[p]:
                        aps.add(p)
        if root_children > 1:
            aps.add(root)
    return sorted(aps)


def linearized_chain_edges(graph: DFGraph) -> List[Tuple[int, int]]:
    """Edges of the path graph over the topological order (Appendix B.2).

    The resulting chain ``v_0 -> v_1 -> ... -> v_{n-1}`` ignores the true data
    dependencies; it is only used to feed linear-graph heuristics.  The
    minimal-recomputation completion afterwards restores correctness against
    the *true* dependencies.
    """
    return [(i, i + 1) for i in range(graph.size - 1)]


# --------------------------------------------------------------------------- #
# Synthetic graph generators (used by tests, examples and micro-benchmarks)
# --------------------------------------------------------------------------- #
def linear_graph(
    n: int,
    cost: float | Sequence[float] = 1.0,
    memory: int | Sequence[int] = 1,
    name: str = "linear",
) -> DFGraph:
    """Build a unit linear chain ``v_0 -> v_1 -> ... -> v_{n-1}``.

    This is the idealized graph studied by Griewank & Walther (2000) and
    Chen et al. (2016): every node has one parent and one child.  ``cost`` and
    ``memory`` may be scalars (uniform graphs) or per-node sequences.
    """
    if n <= 0:
        raise ValueError("linear graph needs at least one node")
    costs = [float(cost)] * n if np.isscalar(cost) else [float(c) for c in cost]
    mems = [int(memory)] * n if np.isscalar(memory) else [int(m) for m in memory]
    if len(costs) != n or len(mems) != n:
        raise ValueError("cost/memory sequences must have length n")
    nodes = [NodeInfo(name=f"op{i}", cost=costs[i], memory=mems[i]) for i in range(n)]
    deps = {i: [i - 1] for i in range(1, n)}
    deps[0] = []
    return DFGraph(nodes=nodes, deps=deps, name=name)


def random_layered_dag(
    n_layers: int,
    width: int,
    *,
    skip_prob: float = 0.2,
    seed: int = 0,
    max_cost: float = 10.0,
    max_memory: int = 64,
    name: str = "random-dag",
) -> DFGraph:
    """Generate a random layered DAG with occasional skip connections.

    The generator mimics the structure of real network graphs: nodes are
    arranged in layers, each node depends on one node from the previous layer
    plus (with probability ``skip_prob``) one node from an earlier layer.  The
    result is always connected and topologically ordered, which makes it a
    convenient workload for property-based testing of the solvers.
    """
    rng = np.random.default_rng(seed)
    nodes: List[NodeInfo] = []
    deps: Dict[int, List[int]] = {}
    layer_members: List[List[int]] = []
    idx = 0
    for layer in range(n_layers):
        members: List[int] = []
        layer_width = 1 if layer == 0 else int(rng.integers(1, width + 1))
        for _ in range(layer_width):
            cost = float(rng.uniform(0.5, max_cost))
            mem = int(rng.integers(1, max_memory + 1))
            nodes.append(NodeInfo(name=f"l{layer}n{idx}", cost=cost, memory=mem,
                                  layer_id=layer))
            parents: List[int] = []
            if layer > 0:
                parents.append(int(rng.choice(layer_members[-1])))
                if layer > 1 and rng.random() < skip_prob:
                    earlier_layer = int(rng.integers(0, layer - 1))
                    parents.append(int(rng.choice(layer_members[earlier_layer])))
            deps[idx] = sorted(set(parents))
            members.append(idx)
            idx += 1
        layer_members.append(members)
    # Add a terminal sink node that depends on every node without a consumer so
    # the graph has a single output, as training graphs do (the loss/grad sink).
    consumed = {p for parents in deps.values() for p in parents}
    dangling = [i for i in range(idx) if i not in consumed]
    nodes.append(NodeInfo(name="sink", cost=1.0, memory=1, layer_id=n_layers))
    deps[idx] = dangling
    return DFGraph(nodes=nodes, deps=deps, name=name)
