"""Concrete execution plans (paper Section 4.9).

A feasible solution ``(R, S, FREE)`` of the rematerialization problem is
lowered by Algorithm 1 into a *concrete execution plan*: a linear program of
``allocate`` / ``compute`` / ``deallocate`` statements over virtual registers.
The plan is what an execution backend actually runs -- in the paper it is
encoded back into a static TensorFlow graph, in this reproduction it is either
replayed by the memory simulator (:mod:`repro.core.simulator`) or interpreted
over NumPy tensors (:mod:`repro.execution`).

Register-reuse contract
-----------------------
Both backends interpret plans under the same semantics:

* A register id is **allocated once** and **deallocated at most once**
  (:meth:`ExecutionPlan.validate_structure`); between those events it is
  *live* and bound to exactly one node.
* A live register holds **at most one value**.  ``compute`` writes the node's
  output into the register, *replacing* any value a previous ``compute``
  left there -- repeated computes into one register are legal and the
  replaced value's bytes are released, never double-counted.
* A node's value is **resident** iff at least one live register currently
  holds a computed value for it.  A ``compute`` may only run while every
  parent is resident, and ``deallocate`` of the last holding register ends
  residency -- the simulator and executor raise
  :class:`~repro.core.simulator.PlanSimulationError` on identical
  violations.
* **Charge point**: the simulator charges a register's declared
  ``size_bytes`` at ``allocate``; the NumPy executor charges the tensor's
  actual ``nbytes`` at ``compute``.  Algorithm 1 emits ``allocate``
  immediately before a register's first ``compute`` (and never computes a
  node into a register while an older register of the same node is live --
  it frees the old copy first), so predicted and measured peaks coincide
  whenever declared sizes equal actual tensor sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Union

__all__ = [
    "AllocateRegister",
    "ComputeNode",
    "DeallocateRegister",
    "Statement",
    "ExecutionPlan",
    "PlanError",
]


class PlanError(ValueError):
    """Raised when an execution plan is malformed or infeasible."""


@dataclass(frozen=True)
class AllocateRegister:
    """``%r = allocate v``: reserve a virtual register for node ``node_id``'s output."""

    register: int
    node_id: int
    size_bytes: int

    def __str__(self) -> str:
        return f"%{self.register} = allocate v{self.node_id} ({self.size_bytes} B)"


@dataclass(frozen=True)
class ComputeNode:
    """``compute v, %r``: evaluate operation ``node_id`` into register ``register``."""

    register: int
    node_id: int

    def __str__(self) -> str:
        return f"compute v{self.node_id} -> %{self.register}"


@dataclass(frozen=True)
class DeallocateRegister:
    """``deallocate %r``: mark the register's value for garbage collection."""

    register: int
    node_id: int

    def __str__(self) -> str:
        return f"deallocate %{self.register} (v{self.node_id})"


Statement = Union[AllocateRegister, ComputeNode, DeallocateRegister]


@dataclass
class ExecutionPlan:
    """An ordered list of statements produced by Algorithm 1.

    Attributes
    ----------
    statements:
        The program ``P = (s_1, ..., s_k)``.
    graph_name:
        Name of the graph the plan was generated for (reporting only).
    """

    statements: List[Statement] = field(default_factory=list)
    graph_name: str = "graph"

    def __iter__(self) -> Iterator[Statement]:
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)

    def append(self, statement: Statement) -> None:
        self.statements.append(statement)

    # ------------------------------------------------------------------ #
    # Aggregate queries
    # ------------------------------------------------------------------ #
    def compute_counts(self) -> Dict[int, int]:
        """Number of times each node is (re)computed by the plan."""
        counts: Dict[int, int] = {}
        for s in self.statements:
            if isinstance(s, ComputeNode):
                counts[s.node_id] = counts.get(s.node_id, 0) + 1
        return counts

    def total_computations(self) -> int:
        """Total number of ``compute`` statements in the plan."""
        return sum(1 for s in self.statements if isinstance(s, ComputeNode))

    def num_allocations(self) -> int:
        return sum(1 for s in self.statements if isinstance(s, AllocateRegister))

    def num_deallocations(self) -> int:
        return sum(1 for s in self.statements if isinstance(s, DeallocateRegister))

    def computed_nodes(self) -> List[int]:
        """Node ids in order of (re)computation (with repeats)."""
        return [s.node_id for s in self.statements if isinstance(s, ComputeNode)]

    def validate_structure(self) -> None:
        """Check structural well-formedness of the plan.

        * every ``compute`` targets a register allocated earlier and not yet
          freed, for the same node it was allocated for,
        * every ``deallocate`` frees a live register exactly once, and
        * register ids are unique per allocation.

        Repeated ``compute`` of a node into its register is structurally legal
        (the later compute replaces the register's value -- see the
        register-reuse contract in the module docstring).  Raises
        :class:`PlanError` on violation.  Note this is purely syntactic;
        data-dependency feasibility is validated by the simulator which also
        needs the graph.
        """
        live: Dict[int, int] = {}
        seen_registers = set()
        for idx, s in enumerate(self.statements):
            if isinstance(s, AllocateRegister):
                if s.register in seen_registers:
                    raise PlanError(f"statement {idx}: register %{s.register} reused")
                seen_registers.add(s.register)
                live[s.register] = s.node_id
            elif isinstance(s, ComputeNode):
                if s.register not in live:
                    raise PlanError(
                        f"statement {idx}: compute into unallocated register %{s.register}"
                    )
                if live[s.register] != s.node_id:
                    raise PlanError(
                        f"statement {idx}: register %{s.register} allocated for node "
                        f"{live[s.register]} but computed with node {s.node_id}"
                    )
            elif isinstance(s, DeallocateRegister):
                if s.register not in live:
                    raise PlanError(
                        f"statement {idx}: deallocate of dead register %{s.register}"
                    )
                del live[s.register]
            else:  # pragma: no cover - defensive
                raise PlanError(f"statement {idx}: unknown statement type {type(s)!r}")

    def pretty(self, max_lines: int | None = None) -> str:
        """Render the plan as readable text (one statement per line)."""
        lines = [str(s) for s in self.statements]
        if max_lines is not None and len(lines) > max_lines:
            omitted = len(lines) - max_lines
            lines = lines[:max_lines] + [f"... ({omitted} more statements)"]
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ExecutionPlan(graph={self.graph_name!r}, statements={len(self.statements)}, "
            f"computes={self.total_computations()})"
        )
