"""Core substrate: data-flow graphs, schedules, plans and simulators."""

from .dfgraph import DFGraph, GraphError, NodeInfo
from .graph_utils import (
    ancestors,
    articulation_points,
    descendants,
    linear_graph,
    linearized_chain_edges,
    random_layered_dag,
    transitive_closure,
)
from .plan import (
    AllocateRegister,
    ComputeNode,
    DeallocateRegister,
    ExecutionPlan,
    PlanError,
    Statement,
)
from .schedule import (
    ScheduleMatrices,
    ScheduledResult,
    StrategyNotApplicableError,
    checkpoint_all_schedule,
    checkpoint_last_node_schedule,
    schedule_compute_cost,
    validate_correctness_constraints,
)
from .scheduler import compute_free_events, generate_execution_plan, hoist_deallocations
from .simulator import (
    MemoryTrace,
    PlanSimulationError,
    schedule_peak_memory,
    simulate_plan,
    simulate_schedule_memory,
)

__all__ = [
    "DFGraph",
    "GraphError",
    "NodeInfo",
    "ancestors",
    "articulation_points",
    "descendants",
    "linear_graph",
    "linearized_chain_edges",
    "random_layered_dag",
    "transitive_closure",
    "AllocateRegister",
    "ComputeNode",
    "DeallocateRegister",
    "ExecutionPlan",
    "PlanError",
    "Statement",
    "ScheduleMatrices",
    "ScheduledResult",
    "StrategyNotApplicableError",
    "checkpoint_all_schedule",
    "checkpoint_last_node_schedule",
    "schedule_compute_cost",
    "validate_correctness_constraints",
    "compute_free_events",
    "generate_execution_plan",
    "hoist_deallocations",
    "MemoryTrace",
    "PlanSimulationError",
    "schedule_peak_memory",
    "simulate_plan",
    "simulate_schedule_memory",
]
