"""Data-flow graph substrate used by every Checkmate component.

The Checkmate optimizer (paper Section 4.1) consumes an abstract computation
graph ``G = (V, E)``: a directed acyclic graph whose nodes are operations that
each produce a single output value (a tensor), annotated with

* ``cost``   -- the time (or FLOPs) to compute the node from its inputs, and
* ``memory`` -- the number of bytes needed to hold the node's output.

Nodes are numbered ``0 .. n-1`` in a topological order so that an operation may
only depend on lower-numbered operations, exactly as in the paper.  The
:class:`DFGraph` class here is the Python equivalent of the graph Checkmate
extracts from a TensorFlow model: it is produced by the builders in
:mod:`repro.models` and :mod:`repro.autodiff` and consumed by the solvers in
:mod:`repro.solvers` and the heuristics in :mod:`repro.baselines`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["NodeInfo", "DFGraph", "GraphError"]


class GraphError(ValueError):
    """Raised when a :class:`DFGraph` is constructed from inconsistent data."""


@dataclass(frozen=True)
class NodeInfo:
    """Static metadata attached to a single graph node.

    Attributes
    ----------
    name:
        Human readable operation name (e.g. ``"conv2_1"`` or ``"grad_conv2_1"``).
    cost:
        Cost of computing the node once all dependencies are resident.  The
        unit is whatever the cost model produced (seconds, milliseconds or
        FLOPs); the solvers only require it to be additive.
    memory:
        Bytes required to hold the node's output value.
    is_backward:
        ``True`` for nodes introduced by reverse-mode differentiation.
    layer_id:
        Index of the originating layer in the forward network, if any.  Used
        only for reporting and visualization.
    """

    name: str
    cost: float
    memory: int
    is_backward: bool = False
    layer_id: Optional[int] = None


@dataclass
class DFGraph:
    """A topologically ordered data-flow DAG with per-node cost and memory.

    Parameters
    ----------
    nodes:
        Node metadata, index ``i`` describing operation ``v_i``.  The order of
        this sequence *is* the topological order used by the solvers.
    deps:
        ``deps[j]`` lists the parents of node ``j`` (the operations whose
        outputs are consumed when computing ``v_j``).  Every parent index must
        be strictly smaller than ``j``.
    input_memory:
        Bytes permanently reserved for the network inputs (paper Eq. 2).
    parameter_memory:
        Bytes of model parameters.  Following the paper, ``2 *
        parameter_memory`` is reserved for parameters plus their gradients.
    name:
        Optional graph name (e.g. ``"VGG16-train-b256"``) used in reports.
    """

    nodes: Sequence[NodeInfo]
    deps: Mapping[int, Sequence[int]]
    input_memory: int = 0
    parameter_memory: int = 0
    name: str = "graph"
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.nodes = tuple(self.nodes)
        n = len(self.nodes)
        clean_deps: Dict[int, Tuple[int, ...]] = {}
        for j in range(n):
            parents = tuple(sorted(set(self.deps.get(j, ()))))
            for i in parents:
                if not (0 <= i < n):
                    raise GraphError(f"node {j} depends on out-of-range node {i}")
                if i >= j:
                    raise GraphError(
                        f"node {j} depends on node {i}: dependencies must respect the "
                        "topological order (parent index < child index)"
                    )
            clean_deps[j] = parents
        self.deps = clean_deps
        users: Dict[int, List[int]] = {i: [] for i in range(n)}
        for j, parents in clean_deps.items():
            for i in parents:
                users[i].append(j)
        self._users: Dict[int, Tuple[int, ...]] = {
            i: tuple(sorted(js)) for i, js in users.items()
        }
        self._cost_vec = np.array([v.cost for v in self.nodes], dtype=np.float64)
        self._mem_vec = np.array([v.memory for v in self.nodes], dtype=np.float64)
        if np.any(self._cost_vec < 0):
            raise GraphError("node costs must be non-negative")
        if np.any(self._mem_vec < 0):
            raise GraphError("node memories must be non-negative")

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of nodes ``n = |V|``."""
        return len(self.nodes)

    def __len__(self) -> int:
        return self.size

    @property
    def cost_vector(self) -> np.ndarray:
        """Per-node compute costs ``C_i`` as a float vector (read-only copy)."""
        return self._cost_vec.copy()

    @property
    def memory_vector(self) -> np.ndarray:
        """Per-node output sizes ``M_i`` in bytes as a float vector."""
        return self._mem_vec.copy()

    def cost(self, i: int) -> float:
        """Cost ``C_i`` of computing node ``i``."""
        return float(self._cost_vec[i])

    def memory(self, i: int) -> int:
        """Output size ``M_i`` of node ``i`` in bytes."""
        return int(self._mem_vec[i])

    def predecessors(self, j: int) -> Tuple[int, ...]:
        """``DEPS[j]``: parents of node ``j``."""
        return self.deps[j]

    def successors(self, i: int) -> Tuple[int, ...]:
        """``USERS[i]``: children of node ``i``."""
        return self._users[i]

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges ``(i, j)`` with ``i`` a parent of ``j``."""
        for j in range(self.size):
            for i in self.deps[j]:
                yield (i, j)

    @property
    def edge_list(self) -> List[Tuple[int, int]]:
        """All edges as a list (parent, child)."""
        return list(self.edges())

    @property
    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(parents, children)`` index arrays over all edges, in :meth:`edges` order.

        The order is child-major (children are non-decreasing), matching the
        iteration order of :meth:`edges`.  Memoized on the instance: the
        dependency structure is immutable after ``__post_init__``, and the
        vectorized consumers (the compiled MILP formulation, the memory
        simulator, the schedule validator) index with these arrays on every
        call.
        """
        cached = self.__dict__.get("_edge_arrays")
        if cached is None:
            m = self.num_edges
            children = np.repeat(
                np.arange(self.size, dtype=np.int64),
                [len(self.deps[j]) for j in range(self.size)],
            )
            parents = np.fromiter(
                (i for j in range(self.size) for i in self.deps[j]),
                dtype=np.int64, count=m,
            )
            cached = (parents, children)
            self.__dict__["_edge_arrays"] = cached
        return cached

    @property
    def num_edges(self) -> int:
        return sum(len(p) for p in self.deps.values())

    @property
    def constant_overhead(self) -> int:
        """``M_input + 2 * M_param`` from paper Eq. (2)."""
        return int(self.input_memory + 2 * self.parameter_memory)

    # ------------------------------------------------------------------ #
    # Derived structural queries
    # ------------------------------------------------------------------ #
    def sources(self) -> List[int]:
        """Nodes with no parents (graph inputs such as the first layer)."""
        return [j for j in range(self.size) if not self.deps[j]]

    def sinks(self) -> List[int]:
        """Nodes with no children (typically the final gradient node)."""
        return [i for i in range(self.size) if not self._users[i]]

    @property
    def terminal_node(self) -> int:
        """The last node ``v_n`` in the topological order (paper §4.1)."""
        return self.size - 1

    def forward_nodes(self) -> List[int]:
        """Indices of nodes that belong to the forward pass."""
        return [i for i, v in enumerate(self.nodes) if not v.is_backward]

    def backward_nodes(self) -> List[int]:
        """Indices of nodes introduced by differentiation."""
        return [i for i, v in enumerate(self.nodes) if v.is_backward]

    def is_linear_chain(self) -> bool:
        """``True`` when the graph is a simple path ``v_0 -> v_1 -> ... -> v_{n-1}``."""
        for j in range(1, self.size):
            if self.deps[j] != (j - 1,):
                return False
        return not self.deps[0]

    # ------------------------------------------------------------------ #
    # Aggregate quantities used throughout the evaluation
    # ------------------------------------------------------------------ #
    def total_cost(self) -> float:
        """Cost of computing every node exactly once (the checkpoint-all cost)."""
        return float(self._cost_vec.sum())

    def forward_cost(self) -> float:
        """Total cost of the forward-pass nodes."""
        return float(sum(self._cost_vec[i] for i in self.forward_nodes()))

    def backward_cost(self) -> float:
        """Total cost of the backward-pass nodes."""
        return float(sum(self._cost_vec[i] for i in self.backward_nodes()))

    def total_activation_memory(self) -> int:
        """Sum of all node output sizes (memory to retain every value)."""
        return int(self._mem_vec.sum())

    def max_degree(self) -> int:
        """Maximum in-degree plus out-degree over all nodes."""
        if self.size == 0:
            return 0
        return max(len(self.deps[i]) + len(self._users[i]) for i in range(self.size))

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_networkx(self):
        """Return the graph as a :class:`networkx.DiGraph` with node attributes."""
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        for i, node in enumerate(self.nodes):
            g.add_node(i, name=node.name, cost=node.cost, memory=node.memory,
                       is_backward=node.is_backward, layer_id=node.layer_id)
        g.add_edges_from(self.edges())
        return g

    def induced_subgraph(self, keep: Iterable[int]) -> "DFGraph":
        """Return the subgraph induced by ``keep`` with indices remapped.

        Edges between kept nodes are preserved; edges to dropped nodes are
        discarded.  The relative topological order of kept nodes is preserved.
        """
        keep_sorted = sorted(set(keep))
        remap = {old: new for new, old in enumerate(keep_sorted)}
        nodes = [self.nodes[i] for i in keep_sorted]
        deps = {
            remap[j]: [remap[i] for i in self.deps[j] if i in remap]
            for j in keep_sorted
        }
        return DFGraph(
            nodes=nodes,
            deps=deps,
            input_memory=self.input_memory,
            parameter_memory=self.parameter_memory,
            name=f"{self.name}-sub",
            meta=dict(self.meta),
        )

    def with_costs(self, costs: Sequence[float]) -> "DFGraph":
        """Return a copy of the graph with node costs replaced."""
        if len(costs) != self.size:
            raise GraphError("cost vector length must equal the number of nodes")
        nodes = [
            NodeInfo(v.name, float(c), v.memory, v.is_backward, v.layer_id)
            for v, c in zip(self.nodes, costs)
        ]
        return DFGraph(nodes, self.deps, self.input_memory, self.parameter_memory,
                       self.name, dict(self.meta))

    def with_memories(self, memories: Sequence[int]) -> "DFGraph":
        """Return a copy of the graph with node output sizes replaced."""
        if len(memories) != self.size:
            raise GraphError("memory vector length must equal the number of nodes")
        nodes = [
            NodeInfo(v.name, v.cost, int(m), v.is_backward, v.layer_id)
            for v, m in zip(self.nodes, memories)
        ]
        return DFGraph(nodes, self.deps, self.input_memory, self.parameter_memory,
                       self.name, dict(self.meta))

    def scaled(self, batch_factor: float) -> "DFGraph":
        """Scale activation memory and cost linearly with a batch-size factor.

        This is the transformation used by the maximum-batch-size experiment
        (paper Eq. 10): activation sizes scale linearly with the batch
        dimension, and so (to first order) do per-layer costs.  Parameter
        memory is batch independent and therefore left untouched.
        """
        nodes = [
            NodeInfo(v.name, v.cost * batch_factor, int(round(v.memory * batch_factor)),
                     v.is_backward, v.layer_id)
            for v in self.nodes
        ]
        return DFGraph(nodes, self.deps, int(round(self.input_memory * batch_factor)),
                       self.parameter_memory, self.name, dict(self.meta))

    # ------------------------------------------------------------------ #
    # Debug helpers
    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """One-line human readable description of the graph."""
        return (
            f"DFGraph(name={self.name!r}, n={self.size}, edges={self.num_edges}, "
            f"total_cost={self.total_cost():.3g}, "
            f"act_mem={self.total_activation_memory() / 2**20:.1f} MiB, "
            f"param_mem={self.parameter_memory / 2**20:.1f} MiB)"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.summary()
