"""Construction of the training (forward + backward) data-flow graph.

Reverse-mode differentiation adds, for every forward node ``v_i``, a gradient
node ``g_i`` holding the gradient of the loss with respect to ``v_i``'s
output.  Following the chain rule,

.. math::

    \\frac{\\partial L}{\\partial x_i}
        = \\sum_{j \\in \\mathrm{USERS}(i)}
          \\Big(\\frac{\\partial y_j}{\\partial x_i}\\Big)^{\\!\\top}
          \\frac{\\partial L}{\\partial y_j},

so ``g_i`` depends on the incoming gradients ``g_j`` of every forward consumer
``j`` and on the *saved activations* that consumer needs to evaluate its local
Jacobian (the consumer's forward inputs, optionally its output).  Those saved
activations are precisely the tensors a rematerialization system decides to
keep or recompute -- this construction is what couples the backward pass to
the forward pass and makes checkpointing non-trivial.

The backward graph produced here matches the structure Checkmate extracts from
TensorFlow: for a linear chain ``f1 -> f2 -> ... -> fL -> loss`` it yields the
familiar ladder in which ``g_i`` consumes ``g_{i+1}`` and the stored activation
``f_i``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from ..core.dfgraph import DFGraph, NodeInfo

__all__ = ["BackwardConfig", "make_training_graph"]


@dataclass(frozen=True)
class BackwardConfig:
    """Knobs controlling the synthesized backward graph.

    Attributes
    ----------
    backward_cost_factor:
        Ratio of a layer's backward cost to its forward cost.  The conventional
        estimate for convolutional and dense layers is ~2x (one pass for the
        input gradient, one for the weight gradient).
    grad_needs_consumer_output:
        If ``True``, ``g_i`` additionally depends on the forward *outputs* of
        ``i``'s consumers (required by ops like ReLU or max-pool whose backward
        uses their own output / argmax mask).  This makes the backward pass
        depend on strictly more activations; the default mirrors the common
        saved-tensor behaviour of real frameworks.
    loss_scale_memory:
        Bytes for each gradient node are taken equal to the corresponding
        forward activation size (gradients have the same shape as activations).
    """

    backward_cost_factor: float = 2.0
    grad_needs_consumer_output: bool = True


def make_training_graph(forward: DFGraph, config: BackwardConfig | None = None) -> DFGraph:
    """Append reverse-mode gradient nodes to a forward graph.

    The terminal forward node (by convention the loss) seeds backpropagation.
    Gradient nodes are appended in reverse topological order of their forward
    counterparts, which keeps the combined node numbering a valid topological
    order (paper §4.1 requires one).

    Parameters
    ----------
    forward:
        Forward-pass graph produced by :mod:`repro.models`.
    config:
        Backward-pass construction options.

    Returns
    -------
    A new :class:`DFGraph` with ``2 n_fwd`` nodes: the original forward nodes
    ``0 .. n_fwd-1`` followed by gradient nodes for forward node
    ``n_fwd-1, n_fwd-2, ..., 0``.  ``graph.meta["grad_index"]`` maps each
    forward node id to its gradient node id.
    """
    cfg = config or BackwardConfig()
    n_fwd = forward.size
    loss_node = forward.terminal_node

    nodes: List[NodeInfo] = list(forward.nodes)
    deps: Dict[int, List[int]] = {i: list(forward.predecessors(i)) for i in range(n_fwd)}

    # Gradient node ids: forward node i -> n_fwd + (n_fwd - 1 - i).
    def grad_id(i: int) -> int:
        return n_fwd + (n_fwd - 1 - i)

    grad_index: Dict[int, int] = {}
    for i in range(n_fwd - 1, -1, -1):
        gid = grad_id(i)
        fwd_node = forward.nodes[i]
        users = forward.successors(i)

        grad_deps: Set[int] = set()
        bwd_cost = 0.0
        if i == loss_node:
            # Seed of backpropagation: dL/dL = 1; computing it only needs the
            # forward loss value.  Give it the loss node's (tiny) cost & memory.
            grad_deps.add(i)
            bwd_cost = cfg.backward_cost_factor * fwd_node.cost
        else:
            for j in users:
                grad_deps.add(grad_id(j))
                # Saved activations consumed by user j's backward op: j's inputs
                # (which include i itself) and optionally j's own output.
                grad_deps.update(forward.predecessors(j))
                if cfg.grad_needs_consumer_output:
                    grad_deps.add(j)
                # Split user j's backward cost evenly across its inputs so that
                # the total backward cost is backward_cost_factor * forward cost.
                fan_in = max(1, len(forward.predecessors(j)))
                bwd_cost += cfg.backward_cost_factor * forward.cost(j) / fan_in
            if not users:
                # A forward node with no consumers other than being an output;
                # its gradient comes straight from the loss gradient.
                grad_deps.add(grad_id(loss_node))
                grad_deps.add(i)
                bwd_cost = cfg.backward_cost_factor * fwd_node.cost

        nodes.append(
            NodeInfo(
                name=f"grad_{fwd_node.name}",
                cost=float(bwd_cost),
                memory=int(fwd_node.memory),
                is_backward=True,
                layer_id=fwd_node.layer_id,
            )
        )
        deps[gid] = sorted(grad_deps)
        grad_index[i] = gid

    meta = dict(forward.meta)
    meta["grad_index"] = grad_index
    meta["n_forward"] = n_fwd
    return DFGraph(
        nodes=nodes,
        deps=deps,
        input_memory=forward.input_memory,
        parameter_memory=forward.parameter_memory,
        name=f"{forward.name}-train",
        meta=meta,
    )
