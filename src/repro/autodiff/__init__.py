"""Reverse-mode automatic differentiation at the graph level.

Checkmate operates on the *training* graph: forward operations plus the
gradient operations produced by reverse-mode AD.  In the original system this
graph is extracted from TensorFlow; here :func:`make_training_graph` constructs
it directly from a forward :class:`~repro.core.dfgraph.DFGraph`.
"""

from .backward import BackwardConfig, make_training_graph

__all__ = ["BackwardConfig", "make_training_graph"]
