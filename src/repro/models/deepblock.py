"""DeepBlock: a deliberately repetitive residual family for analysis studies.

Every block is byte-identical in structure -- ``conv -> conv -> add ->
identity`` at constant channel count and resolution -- so the forward graph is
one stem followed by ``blocks`` copies of the same articulation-point segment.
That makes DeepBlock the showcase preset for the static-analysis layer:

* :func:`~repro.analysis.analyses.isomorphic_segment_groups` groups all
  ``blocks`` segments under a single structural hash (repeated structure the
  MILP would otherwise pay for node-by-node), and
* the ``identity`` block-output alias is a zero-cost single-input node, so
  :class:`~repro.analysis.passes.ZeroCostChainFusion` removes one node per
  block, which is what the CI ``analysis-smoke`` job gates the nnz reduction
  on.

All ops have NumPy kernels, so the preset is executable end to end and the
provenance-decoded schedules can be proven bit-exact by the
:class:`~repro.execution.report.ExecutionReport`.
"""

from __future__ import annotations

from ..core.dfgraph import DFGraph
from .builder import INPUT, LayerGraphBuilder

__all__ = ["deepblock"]


def deepblock(
    *,
    blocks: int = 8,
    channels: int = 16,
    resolution: int = 16,
    num_classes: int = 10,
    batch_size: int = 1,
) -> DFGraph:
    """Build the DeepBlock forward graph.

    ``blocks`` identical residual blocks at constant width; each block
    contributes four nodes (two convolutions, the residual ``add``, and the
    zero-cost ``identity`` block-output alias the canonicalizer fuses away).
    """
    if blocks < 1:
        raise ValueError("blocks must be at least 1")
    b = LayerGraphBuilder(f"DeepBlock{blocks}", (3, resolution, resolution),
                          batch_size)
    h = b.conv("stem", INPUT, channels, kernel=3, padding="same")
    for k in range(1, blocks + 1):
        c1 = b.conv(f"block{k}_conv1", h, channels, kernel=3, padding="same")
        c2 = b.conv(f"block{k}_conv2", c1, channels, kernel=3, padding="same")
        s = b.add(f"block{k}_add", [h, c2])
        h = b.identity(f"block{k}_out", s)
    p = b.global_avgpool("head_pool", h)
    f = b.flatten("head_flatten", p)
    d = b.dense("head_fc", f, num_classes)
    b.softmax_loss("loss", d)
    return b.build()
