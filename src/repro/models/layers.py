"""Layer-level shape, FLOP and parameter arithmetic.

Checkmate's cost model (paper §4.10) needs, for every operation in the
network, (a) the size of the output tensor -- which determines the memory
``M_i`` consumed when the value is resident -- and (b) a compute cost ``C_i``.
The paper obtains costs either statically as FLOPs (Figure 6, Table 2) or from
on-device profiles (Figure 5).  This module provides the closed-form shape and
FLOP formulas for the layer types appearing in the evaluated architectures
(VGG, ResNet, MobileNet, U-Net, FCN, SegNet, DenseNet): convolutions,
depthwise convolutions, transposed convolutions, pooling, dense layers,
batch-norm, activations, element-wise addition and concatenation.

Conventions
-----------
* Spatial tensors are described as ``(channels, height, width)`` for a single
  example; the batch dimension is applied by the graph builder.
* FLOPs count multiply-accumulate operations as 2 FLOPs, the common convention
  used in the architecture literature.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

__all__ = [
    "Shape",
    "numel",
    "conv2d_output_shape",
    "conv2d_flops",
    "conv2d_params",
    "depthwise_conv2d_flops",
    "depthwise_conv2d_params",
    "conv_transpose2d_output_shape",
    "conv_transpose2d_flops",
    "pool2d_output_shape",
    "pool2d_flops",
    "global_pool_output_shape",
    "dense_flops",
    "dense_params",
    "batchnorm_flops",
    "batchnorm_params",
    "activation_flops",
    "elementwise_flops",
    "concat_output_shape",
    "upsample_output_shape",
    "upsample_flops",
    "softmax_flops",
]

Shape = Tuple[int, ...]


def numel(shape: Shape) -> int:
    """Number of scalar elements in a tensor of the given shape."""
    total = 1
    for d in shape:
        total *= int(d)
    return total


def _pair(value: int | Tuple[int, int]) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return int(value[0]), int(value[1])
    return int(value), int(value)


# --------------------------------------------------------------------------- #
# Convolutions
# --------------------------------------------------------------------------- #
def conv2d_output_shape(
    in_shape: Shape,
    out_channels: int,
    kernel: int | Tuple[int, int],
    stride: int | Tuple[int, int] = 1,
    padding: str | int = "same",
) -> Shape:
    """Output shape of a 2-D convolution over a ``(C, H, W)`` input.

    ``padding`` may be ``"same"`` (output spatial size ``ceil(H / stride)``),
    ``"valid"`` or an explicit integer amount applied to both sides.
    """
    _, h, w = in_shape
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride)
    if padding == "same":
        oh = -(-h // sh)
        ow = -(-w // sw)
    elif padding == "valid":
        oh = (h - kh) // sh + 1
        ow = (w - kw) // sw + 1
    else:
        p = int(padding)
        oh = (h + 2 * p - kh) // sh + 1
        ow = (w + 2 * p - kw) // sw + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(f"conv2d output collapsed to non-positive size for input {in_shape}")
    return (int(out_channels), int(oh), int(ow))


def conv2d_flops(in_shape: Shape, out_shape: Shape, kernel: int | Tuple[int, int]) -> float:
    """FLOPs of a standard convolution: ``2 * Cin * Kh * Kw * Cout * Hout * Wout``."""
    cin = in_shape[0]
    cout, oh, ow = out_shape
    kh, kw = _pair(kernel)
    return 2.0 * cin * kh * kw * cout * oh * ow


def conv2d_params(in_channels: int, out_channels: int, kernel: int | Tuple[int, int],
                  bias: bool = True) -> int:
    """Parameter count of a standard convolution."""
    kh, kw = _pair(kernel)
    params = in_channels * out_channels * kh * kw
    if bias:
        params += out_channels
    return int(params)


def depthwise_conv2d_flops(in_shape: Shape, out_shape: Shape,
                           kernel: int | Tuple[int, int]) -> float:
    """FLOPs of a depthwise convolution (each channel convolved independently)."""
    cout, oh, ow = out_shape
    kh, kw = _pair(kernel)
    return 2.0 * kh * kw * cout * oh * ow


def depthwise_conv2d_params(channels: int, kernel: int | Tuple[int, int],
                            bias: bool = True) -> int:
    kh, kw = _pair(kernel)
    params = channels * kh * kw
    if bias:
        params += channels
    return int(params)


def conv_transpose2d_output_shape(in_shape: Shape, out_channels: int,
                                  kernel: int | Tuple[int, int],
                                  stride: int | Tuple[int, int] = 2) -> Shape:
    """Output shape of a transposed (up-sampling) convolution with "same"-style padding."""
    _, h, w = in_shape
    sh, sw = _pair(stride)
    return (int(out_channels), int(h * sh), int(w * sw))


def conv_transpose2d_flops(in_shape: Shape, out_shape: Shape,
                           kernel: int | Tuple[int, int]) -> float:
    """FLOPs of a transposed convolution (same arithmetic as conv over the output)."""
    cin = in_shape[0]
    cout, oh, ow = out_shape
    kh, kw = _pair(kernel)
    return 2.0 * cin * kh * kw * cout * oh * ow


# --------------------------------------------------------------------------- #
# Pooling / resampling
# --------------------------------------------------------------------------- #
def pool2d_output_shape(in_shape: Shape, kernel: int | Tuple[int, int] = 2,
                        stride: Optional[int | Tuple[int, int]] = None) -> Shape:
    """Output shape of max/average pooling (default non-overlapping 2x2)."""
    c, h, w = in_shape
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride if stride is not None else kernel)
    return (int(c), int(max(1, h // sh)), int(max(1, w // sw)))


def pool2d_flops(out_shape: Shape, kernel: int | Tuple[int, int] = 2) -> float:
    """FLOPs of pooling: one comparison/add per kernel element per output."""
    kh, kw = _pair(kernel)
    return float(numel(out_shape) * kh * kw)


def global_pool_output_shape(in_shape: Shape) -> Shape:
    """Global average pooling collapses the spatial dimensions."""
    return (int(in_shape[0]), 1, 1)


def upsample_output_shape(in_shape: Shape, factor: int = 2) -> Shape:
    """Nearest-neighbour / bilinear up-sampling by an integer factor."""
    c, h, w = in_shape
    return (int(c), int(h * factor), int(w * factor))


def upsample_flops(out_shape: Shape) -> float:
    """Up-sampling costs roughly one copy (or 4-tap interpolation) per output element."""
    return 4.0 * numel(out_shape)


# --------------------------------------------------------------------------- #
# Dense / normalization / activations / merges
# --------------------------------------------------------------------------- #
def dense_flops(in_features: int, out_features: int) -> float:
    """FLOPs of a fully connected layer: ``2 * in * out``."""
    return 2.0 * in_features * out_features


def dense_params(in_features: int, out_features: int, bias: bool = True) -> int:
    params = in_features * out_features
    if bias:
        params += out_features
    return int(params)


def batchnorm_flops(shape: Shape) -> float:
    """Batch normalization: roughly 4 FLOPs per element (normalize + scale/shift)."""
    return 4.0 * numel(shape)


def batchnorm_params(channels: int) -> int:
    """Scale and shift per channel (running statistics excluded, as they are buffers)."""
    return int(2 * channels)


def activation_flops(shape: Shape) -> float:
    """Element-wise activation (ReLU, ReLU6, sigmoid): one FLOP per element."""
    return float(numel(shape))


def elementwise_flops(shape: Shape) -> float:
    """Element-wise binary op (residual add): one FLOP per output element."""
    return float(numel(shape))


def softmax_flops(shape: Shape) -> float:
    """Softmax / cross-entropy style op: ~5 FLOPs per element (exp, sum, div)."""
    return 5.0 * numel(shape)


def concat_output_shape(shapes: Sequence[Shape]) -> Shape:
    """Channel-wise concatenation of ``(C, H, W)`` tensors with equal spatial dims."""
    if not shapes:
        raise ValueError("concat requires at least one input")
    h, w = shapes[0][1], shapes[0][2]
    for s in shapes:
        if (s[1], s[2]) != (h, w):
            raise ValueError(f"concat spatial dimensions differ: {shapes}")
    return (int(sum(s[0] for s in shapes)), int(h), int(w))
