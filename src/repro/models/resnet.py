"""ResNet forward graphs (He et al., 2016).

ResNet-50 is the paper's representative *non-linear* classification
architecture: residual (skip) connections break the linear-graph assumption of
prior checkpointing work, which is why Checkmate's AP / linearized baseline
generalizations exist.  Smaller variants (ResNet-18/34 and a configurable
"tiny" ResNet) are provided for unit tests and CI-scale benchmarks where the
full 50-layer MILP would be too slow on one core.
"""

from __future__ import annotations

from typing import Sequence

from ..core.dfgraph import DFGraph
from .builder import INPUT, LayerGraphBuilder

__all__ = ["resnet18", "resnet34", "resnet50", "resnet_tiny", "resnet_generic"]


def _basic_block(b: LayerGraphBuilder, name: str, parent: int, channels: int,
                 stride: int, coarse: bool) -> int:
    """Two 3x3 convolutions plus identity (or 1x1 projection) shortcut."""
    if coarse:
        c1 = b.conv(f"{name}_conv1", parent, channels, kernel=3, stride=stride, bias=False)
        c2 = b.conv(f"{name}_conv2", c1, channels, kernel=3, stride=1, bias=False)
    else:
        c1 = b.conv_bn_relu(f"{name}_1", parent, channels, kernel=3, stride=stride)
        c2_conv = b.conv(f"{name}_2_conv", c1, channels, kernel=3, stride=1, bias=False)
        c2 = b.batchnorm(f"{name}_2_bn", c2_conv)
    shortcut = parent
    if stride != 1 or b.shape_of(parent)[0] != channels:
        shortcut = b.conv(f"{name}_proj", parent, channels, kernel=1, stride=stride, bias=False)
    out = b.add(f"{name}_add", [c2, shortcut])
    if not coarse:
        out = b.relu(f"{name}_out_relu", out)
    return out


def _bottleneck_block(b: LayerGraphBuilder, name: str, parent: int, channels: int,
                      stride: int, coarse: bool, expansion: int = 4) -> int:
    """1x1 reduce -> 3x3 -> 1x1 expand bottleneck with shortcut (ResNet-50 style)."""
    out_channels = channels * expansion
    if coarse:
        c1 = b.conv(f"{name}_conv1", parent, channels, kernel=1, stride=1, bias=False)
        c2 = b.conv(f"{name}_conv2", c1, channels, kernel=3, stride=stride, bias=False)
        c3 = b.conv(f"{name}_conv3", c2, out_channels, kernel=1, stride=1, bias=False)
    else:
        c1 = b.conv_bn_relu(f"{name}_1", parent, channels, kernel=1, stride=1)
        c2 = b.conv_bn_relu(f"{name}_2", c1, channels, kernel=3, stride=stride)
        c3_conv = b.conv(f"{name}_3_conv", c2, out_channels, kernel=1, stride=1, bias=False)
        c3 = b.batchnorm(f"{name}_3_bn", c3_conv)
    shortcut = parent
    if stride != 1 or b.shape_of(parent)[0] != out_channels:
        shortcut = b.conv(f"{name}_proj", parent, out_channels, kernel=1, stride=stride, bias=False)
    out = b.add(f"{name}_add", [c3, shortcut])
    if not coarse:
        out = b.relu(f"{name}_out_relu", out)
    return out


def resnet_generic(
    stage_blocks: Sequence[int],
    name: str,
    *,
    bottleneck: bool,
    batch_size: int = 1,
    resolution: int = 224,
    num_classes: int = 1000,
    coarse: bool = True,
    base_channels: int = 64,
) -> DFGraph:
    """Build a ResNet with the given per-stage block counts."""
    b = LayerGraphBuilder(name, (3, resolution, resolution), batch_size)
    stem = b.conv("stem_conv", INPUT, base_channels, kernel=7, stride=2, bias=False)
    if not coarse:
        stem = b.relu("stem_relu", b.batchnorm("stem_bn", stem))
    prev = b.maxpool("stem_pool", stem, kernel=3, stride=2)
    channels = base_channels
    block_fn = _bottleneck_block if bottleneck else _basic_block
    for stage, num_blocks in enumerate(stage_blocks, start=1):
        for block in range(num_blocks):
            stride = 2 if (stage > 1 and block == 0) else 1
            prev = block_fn(b, f"s{stage}b{block}", prev, channels, stride, coarse)
        channels *= 2
    pooled = b.global_avgpool("avgpool", prev)
    logits = b.dense("fc", pooled, num_classes)
    b.softmax_loss("loss", logits)
    return b.build()


def resnet18(batch_size: int = 1, resolution: int = 224, num_classes: int = 1000,
             coarse: bool = True) -> DFGraph:
    """ResNet-18: basic blocks, stages [2, 2, 2, 2]."""
    return resnet_generic([2, 2, 2, 2], f"ResNet18-b{batch_size}-r{resolution}",
                          bottleneck=False, batch_size=batch_size, resolution=resolution,
                          num_classes=num_classes, coarse=coarse)


def resnet34(batch_size: int = 1, resolution: int = 224, num_classes: int = 1000,
             coarse: bool = True) -> DFGraph:
    """ResNet-34: basic blocks, stages [3, 4, 6, 3]."""
    return resnet_generic([3, 4, 6, 3], f"ResNet34-b{batch_size}-r{resolution}",
                          bottleneck=False, batch_size=batch_size, resolution=resolution,
                          num_classes=num_classes, coarse=coarse)


def resnet50(batch_size: int = 1, resolution: int = 224, num_classes: int = 1000,
             coarse: bool = True) -> DFGraph:
    """ResNet-50: bottleneck blocks, stages [3, 4, 6, 3] -- as used in the paper."""
    return resnet_generic([3, 4, 6, 3], f"ResNet50-b{batch_size}-r{resolution}",
                          bottleneck=True, batch_size=batch_size, resolution=resolution,
                          num_classes=num_classes, coarse=coarse)


def resnet_tiny(batch_size: int = 1, resolution: int = 32, num_classes: int = 10,
                blocks_per_stage: int = 1, coarse: bool = True) -> DFGraph:
    """A small CIFAR-scale residual network used by tests and CI-scale benches.

    It preserves the structural property that matters for Checkmate -- skip
    connections that defeat linear-graph heuristics -- while keeping the MILP
    instance small enough to solve to optimality in seconds.
    """
    return resnet_generic([blocks_per_stage] * 3,
                          f"ResNetTiny-b{batch_size}-r{resolution}",
                          bottleneck=False, batch_size=batch_size, resolution=resolution,
                          num_classes=num_classes, coarse=coarse, base_channels=16)
