"""Simple linear (path-graph) networks: MLPs and plain CNN chains.

Linear graphs are the setting of the prior work Checkmate generalizes
(Griewank & Walther's REVOLVE, Chen et al.'s sqrt(n) heuristic), the subject
of the Appendix-A integrality-gap study (an 8-layer linear network) and the
workload behind Figure 1.  These builders produce forward graphs that are
strict chains, optionally with non-uniform widths so costs and memories vary
per layer.
"""

from __future__ import annotations

from typing import Sequence

from ..core.dfgraph import DFGraph
from .builder import INPUT, LayerGraphBuilder

__all__ = ["linear_mlp", "linear_cnn"]


def linear_mlp(hidden_sizes: Sequence[int], *, batch_size: int = 1, input_features: int = 128,
               name: str | None = None) -> DFGraph:
    """A chain of dense layers; widths control the per-layer cost/memory profile."""
    b = LayerGraphBuilder(name or f"MLP-{len(hidden_sizes)}L-b{batch_size}",
                          (int(input_features),), batch_size)
    prev = INPUT
    for i, width in enumerate(hidden_sizes, start=1):
        prev = b.dense(f"fc{i}", prev, int(width))
    b.softmax_loss("loss", prev)
    return b.build()


def linear_cnn(num_layers: int = 8, *, batch_size: int = 1, resolution: int = 64,
               channels: int = 32, pool_every: int = 0, name: str | None = None,
               coarse: bool = True) -> DFGraph:
    """A plain chain of convolutions (optionally with periodic pooling).

    With ``pool_every = 0`` the activation size is constant across layers (the
    idealized unit-memory setting of prior checkpointing work); with pooling
    the activation sizes decay geometrically, exercising memory-awareness.
    """
    b = LayerGraphBuilder(name or f"LinearCNN-{num_layers}L-b{batch_size}",
                          (3, resolution, resolution), batch_size)
    prev = INPUT
    for i in range(1, num_layers + 1):
        if coarse:
            prev = b.conv(f"conv{i}", prev, channels, kernel=3)
        else:
            prev = b.conv_relu(f"conv{i}", prev, channels, kernel=3)
        if pool_every and i % pool_every == 0 and i < num_layers:
            prev = b.maxpool(f"pool{i}", prev, kernel=2)
    b.softmax_loss("loss", prev)
    return b.build()
