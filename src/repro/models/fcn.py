"""FCN-8s forward graph (Long, Shelhamer & Darrell, 2015) with a VGG16 backbone.

FCN8 appears in Figure 6 of the paper (max-batch-size study at 416x608).  The
architecture adds two *skip* fusions from intermediate pooling stages of the
VGG encoder to the up-sampled coarse predictions, making the graph non-linear
(though less aggressively so than U-Net).
"""

from __future__ import annotations

from typing import Sequence

from ..core.dfgraph import DFGraph
from .builder import INPUT, LayerGraphBuilder

__all__ = ["fcn8"]

_VGG16_BLOCKS: Sequence[Sequence[int]] = [
    [64, 64],
    [128, 128],
    [256, 256, 256],
    [512, 512, 512],
    [512, 512, 512],
]


def fcn8(batch_size: int = 1, resolution: tuple[int, int] = (416, 608),
         num_classes: int = 21, coarse: bool = True,
         encoder_cfg: Sequence[Sequence[int]] | None = None) -> DFGraph:
    """FCN-8s: VGG16 encoder, 1x1 score heads on pool3/pool4/pool5, fused by upsampling."""
    cfg = _VGG16_BLOCKS if encoder_cfg is None else encoder_cfg
    h, w = resolution
    b = LayerGraphBuilder(f"FCN8-b{batch_size}-r{h}x{w}", (3, h, w), batch_size)

    prev = INPUT
    pool_outputs = []
    for stage, channels in enumerate(cfg, start=1):
        for i, c in enumerate(channels, start=1):
            if coarse:
                prev = b.conv(f"conv{stage}_{i}", prev, c, kernel=3)
            else:
                prev = b.conv_relu(f"conv{stage}_{i}", prev, c, kernel=3)
        prev = b.maxpool(f"pool{stage}", prev, kernel=2)
        pool_outputs.append(prev)

    # Fully convolutional "classifier" head on top of pool5 (fc6/fc7 as convs).
    fc6 = b.conv("fc6", prev, 4096, kernel=7) if not coarse else b.conv("fc6", prev, 1024, kernel=7)
    fc7 = b.conv("fc7", fc6, 4096, kernel=1) if not coarse else b.conv("fc7", fc6, 1024, kernel=1)
    score_fr = b.conv("score_fr", fc7, num_classes, kernel=1)

    # FCN-8 skip architecture: fuse with pool4 and pool3 scores.
    num_stages = len(cfg)
    up2 = b.conv_transpose("upscore2", score_fr, num_classes, kernel=4, stride=2)
    if num_stages >= 2:
        score_pool4 = b.conv("score_pool4", pool_outputs[-2], num_classes, kernel=1)
        fuse_pool4 = b.add("fuse_pool4", [up2, score_pool4])
    else:  # very small test configurations
        fuse_pool4 = up2
    up4 = b.conv_transpose("upscore_pool4", fuse_pool4, num_classes, kernel=4, stride=2)
    if num_stages >= 3:
        score_pool3 = b.conv("score_pool3", pool_outputs[-3], num_classes, kernel=1)
        fuse_pool3 = b.add("fuse_pool3", [up4, score_pool3])
    else:
        fuse_pool3 = up4
    upfinal = b.conv_transpose("upscore8", fuse_pool3, num_classes, kernel=16, stride=8)
    b.softmax_loss("loss", upfinal)
    return b.build()
