"""MobileNet-v1 forward graph (Howard et al., 2017).

MobileNet is the second linear architecture of Figure 5 (batch size 512) and
the network for which Checkmate reports its headline 5.1x larger-batch result
in Figure 6.  The network is a stack of depthwise-separable convolution blocks
(depthwise 3x3 followed by pointwise 1x1), which gives a high dynamic range of
per-layer costs -- exactly the situation where cost-aware rematerialization
beats unit-cost heuristics.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..core.dfgraph import DFGraph
from .builder import INPUT, LayerGraphBuilder

__all__ = ["mobilenet_v1"]

# (pointwise output channels, stride of the depthwise stage)
_MOBILENET_CFG: Sequence[Tuple[int, int]] = [
    (64, 1),
    (128, 2), (128, 1),
    (256, 2), (256, 1),
    (512, 2), (512, 1), (512, 1), (512, 1), (512, 1), (512, 1),
    (1024, 2), (1024, 1),
]


def mobilenet_v1(batch_size: int = 1, resolution: int = 224, num_classes: int = 1000,
                 width_multiplier: float = 1.0, coarse: bool = True) -> DFGraph:
    """MobileNet-v1 forward graph.

    Parameters
    ----------
    width_multiplier:
        Thins every layer's channel count (the ``alpha`` hyper-parameter of the
        MobileNet paper); useful for building smaller test instances.
    coarse:
        Fuse BatchNorm+ReLU into the preceding convolution node (halves node
        count, preserves the activation/checkpointing structure).
    """
    def c(channels: int) -> int:
        return max(8, int(channels * width_multiplier))

    b = LayerGraphBuilder(f"MobileNet-b{batch_size}-r{resolution}",
                          (3, resolution, resolution), batch_size)
    if coarse:
        prev = b.conv("conv0", INPUT, c(32), kernel=3, stride=2, bias=False)
    else:
        prev = b.conv_bn_relu("conv0", INPUT, c(32), kernel=3, stride=2)
    for idx, (channels, stride) in enumerate(_MOBILENET_CFG, start=1):
        if coarse:
            dw = b.depthwise_conv(f"dw{idx}", prev, kernel=3, stride=stride)
            prev = b.conv(f"pw{idx}", dw, c(channels), kernel=1, stride=1, bias=False)
        else:
            dw = b.depthwise_conv(f"dw{idx}_conv", prev, kernel=3, stride=stride)
            dw = b.relu(f"dw{idx}_relu", b.batchnorm(f"dw{idx}_bn", dw))
            pw = b.conv(f"pw{idx}_conv", dw, c(channels), kernel=1, stride=1, bias=False)
            prev = b.relu(f"pw{idx}_relu", b.batchnorm(f"pw{idx}_bn", pw))
    pooled = b.global_avgpool("avgpool", prev)
    logits = b.dense("fc", pooled, num_classes)
    b.softmax_loss("loss", logits)
    return b.build()
