"""VGG-16 and VGG-19 forward graphs (Simonyan & Zisserman, 2014).

VGG is the canonical *linear* architecture in the paper's evaluation: Figure 5
sweeps VGG16 at batch size 256, Figure 7 visualizes VGG19 schedules, and both
appear in the Table 2 approximation-ratio study.  The paper also uses VGG to
motivate cost-awareness: its largest layer is six orders of magnitude more
expensive than its smallest.
"""

from __future__ import annotations

from typing import Sequence

from ..core.dfgraph import DFGraph
from .builder import INPUT, LayerGraphBuilder

__all__ = ["vgg16", "vgg19", "vgg_generic"]

# Configuration strings: number = conv output channels, "M" = 2x2 max pooling.
_VGG16_CFG: Sequence[object] = [64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
                                512, 512, 512, "M", 512, 512, 512, "M"]
_VGG19_CFG: Sequence[object] = [64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M",
                                512, 512, 512, 512, "M", 512, 512, 512, 512, "M"]


def vgg_generic(
    cfg: Sequence[object],
    name: str,
    *,
    batch_size: int = 1,
    resolution: int = 224,
    num_classes: int = 1000,
    coarse: bool = True,
    include_classifier: bool = True,
) -> DFGraph:
    """Build a VGG-style network from a channel/pool configuration list.

    Parameters
    ----------
    coarse:
        When ``True`` each Conv+ReLU pair is fused into a single graph node
        (the ReLU FLOPs are folded into the convolution).  This halves the node
        count, which keeps MILP instances tractable on small machines, without
        changing the memory/therefore-checkpointing structure: the fused node's
        output is exactly the activation the backward pass needs.
    """
    b = LayerGraphBuilder(name, (3, resolution, resolution), batch_size)
    prev = INPUT
    block, conv_idx = 1, 1
    for item in cfg:
        if item == "M":
            prev = b.maxpool(f"pool{block}", prev, kernel=2)
            block += 1
            conv_idx = 1
        else:
            channels = int(item)
            layer_name = f"conv{block}_{conv_idx}"
            if coarse:
                c = b.conv(layer_name, prev, channels, kernel=3, padding="same")
                prev = c
            else:
                prev = b.conv_relu(layer_name, prev, channels, kernel=3, padding="same")
            conv_idx += 1
    if include_classifier:
        flat = b.flatten("flatten", prev)
        fc1 = b.dense("fc1", flat, 4096)
        fc2 = b.dense("fc2", fc1, 4096)
        logits = b.dense("fc3", fc2, num_classes)
        b.softmax_loss("loss", logits)
    else:
        b.softmax_loss("loss", prev)
    return b.build()


def vgg16(batch_size: int = 1, resolution: int = 224, num_classes: int = 1000,
          coarse: bool = True) -> DFGraph:
    """VGG-16 forward graph at the given batch size and input resolution."""
    return vgg_generic(_VGG16_CFG, f"VGG16-b{batch_size}-r{resolution}",
                       batch_size=batch_size, resolution=resolution,
                       num_classes=num_classes, coarse=coarse)


def vgg19(batch_size: int = 1, resolution: int = 224, num_classes: int = 1000,
          coarse: bool = True) -> DFGraph:
    """VGG-19 forward graph at the given batch size and input resolution."""
    return vgg_generic(_VGG19_CFG, f"VGG19-b{batch_size}-r{resolution}",
                       batch_size=batch_size, resolution=resolution,
                       num_classes=num_classes, coarse=coarse)
