"""Forward-graph builder: assembles architectures into :class:`DFGraph` objects.

The builder plays the role of Keras model tracing in the original Checkmate
system: the user (or one of the architecture modules in this package) declares
layers and their connectivity, and the builder performs shape inference,
computes per-layer FLOPs / parameter counts / activation sizes, and emits a
forward-pass :class:`~repro.core.dfgraph.DFGraph` whose

* node ``cost``   is the layer's forward FLOPs for the whole batch, and
* node ``memory`` is the layer's output activation size in bytes for the batch.

The network input is *not* a graph node -- following the paper, inputs (and
parameters) are assumed permanently resident and accounted as the constant
overhead term of Eq. (2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.dfgraph import DFGraph, NodeInfo
from . import layers as L

__all__ = ["LayerGraphBuilder", "INPUT"]

#: Sentinel parent meaning "the network input tensor".
INPUT = -1


@dataclass
class _LayerRecord:
    name: str
    op_type: str
    parents: Tuple[int, ...]
    out_shape: L.Shape
    flops: float
    params: int
    attrs: Dict[str, object] = field(default_factory=dict)


class LayerGraphBuilder:
    """Incrementally build a forward-pass data-flow graph.

    Parameters
    ----------
    name:
        Architecture name, propagated to the resulting graph.
    input_shape:
        Per-example input shape, e.g. ``(3, 224, 224)``.
    batch_size:
        Mini-batch size; multiplies activation memory and FLOPs.
    dtype_bytes:
        Bytes per scalar (4 for fp32 as in the paper).

    Layer-adding methods return the integer node id of the new layer, which is
    then used as the ``parent`` argument of downstream layers.  ``INPUT`` (-1)
    refers to the network input.
    """

    def __init__(self, name: str, input_shape: L.Shape, batch_size: int = 1,
                 dtype_bytes: int = 4) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.name = name
        self.input_shape: L.Shape = tuple(int(d) for d in input_shape)
        self.batch_size = int(batch_size)
        self.dtype_bytes = int(dtype_bytes)
        self._records: List[_LayerRecord] = []

    # ------------------------------------------------------------------ #
    # Core
    # ------------------------------------------------------------------ #
    def shape_of(self, node: int) -> L.Shape:
        """Output shape (per example) of a node, or of the input for ``INPUT``."""
        if node == INPUT:
            return self.input_shape
        if not (0 <= node < len(self._records)):
            raise ValueError(f"unknown layer id {node}")
        return self._records[node].out_shape

    def add_layer(self, name: str, op_type: str, parents: Sequence[int],
                  out_shape: L.Shape, flops: float, params: int = 0,
                  attrs: Optional[Dict[str, object]] = None) -> int:
        """Add an arbitrary layer with explicit shape / FLOPs / parameter count.

        ``attrs`` records the operation's hyper-parameters (kernel size,
        stride, padding, ...) so that downstream consumers -- notably the
        NumPy execution backend, which binds a real tensor function to every
        node -- can reconstruct the op exactly instead of inferring it from
        shapes.
        """
        resolved: List[int] = []
        for p in parents:
            if p == INPUT:
                continue  # the input tensor is not a graph node
            if not (0 <= p < len(self._records)):
                raise ValueError(f"layer {name!r}: unknown parent id {p}")
            resolved.append(int(p))
        record = _LayerRecord(
            name=name,
            op_type=op_type,
            parents=tuple(sorted(set(resolved))),
            out_shape=tuple(int(d) for d in out_shape),
            flops=float(flops),
            params=int(params),
            attrs=dict(attrs or {}),
        )
        self._records.append(record)
        return len(self._records) - 1

    # ------------------------------------------------------------------ #
    # Convenience layer constructors
    # ------------------------------------------------------------------ #
    def conv(self, name: str, parent: int, out_channels: int, kernel: int = 3,
             stride: int = 1, padding: str | int = "same", bias: bool = True) -> int:
        """Standard 2-D convolution."""
        in_shape = self.shape_of(parent)
        out_shape = L.conv2d_output_shape(in_shape, out_channels, kernel, stride, padding)
        flops = L.conv2d_flops(in_shape, out_shape, kernel)
        params = L.conv2d_params(in_shape[0], out_channels, kernel, bias)
        return self.add_layer(name, "conv2d", [parent], out_shape, flops, params,
                              attrs={"kernel": kernel, "stride": stride,
                                     "padding": padding, "bias": bias})

    def depthwise_conv(self, name: str, parent: int, kernel: int = 3, stride: int = 1) -> int:
        """Depthwise separable convolution's depthwise stage (MobileNet)."""
        in_shape = self.shape_of(parent)
        out_shape = L.conv2d_output_shape(in_shape, in_shape[0], kernel, stride, "same")
        flops = L.depthwise_conv2d_flops(in_shape, out_shape, kernel)
        params = L.depthwise_conv2d_params(in_shape[0], kernel)
        return self.add_layer(name, "depthwise_conv2d", [parent], out_shape, flops, params,
                              attrs={"kernel": kernel, "stride": stride,
                                     "padding": "same", "bias": True})

    def conv_transpose(self, name: str, parent: int, out_channels: int, kernel: int = 2,
                       stride: int = 2) -> int:
        """Transposed convolution used by the U-Net / FCN decoders."""
        in_shape = self.shape_of(parent)
        out_shape = L.conv_transpose2d_output_shape(in_shape, out_channels, kernel, stride)
        flops = L.conv_transpose2d_flops(in_shape, out_shape, kernel)
        params = L.conv2d_params(in_shape[0], out_channels, kernel)
        return self.add_layer(name, "conv_transpose2d", [parent], out_shape, flops, params,
                              attrs={"kernel": kernel, "stride": stride, "bias": True})

    def maxpool(self, name: str, parent: int, kernel: int = 2, stride: Optional[int] = None) -> int:
        in_shape = self.shape_of(parent)
        out_shape = L.pool2d_output_shape(in_shape, kernel, stride)
        return self.add_layer(name, "maxpool2d", [parent], out_shape,
                              L.pool2d_flops(out_shape, kernel),
                              attrs={"kernel": kernel,
                                     "stride": stride if stride is not None else kernel})

    def avgpool(self, name: str, parent: int, kernel: int = 2, stride: Optional[int] = None) -> int:
        in_shape = self.shape_of(parent)
        out_shape = L.pool2d_output_shape(in_shape, kernel, stride)
        return self.add_layer(name, "avgpool2d", [parent], out_shape,
                              L.pool2d_flops(out_shape, kernel),
                              attrs={"kernel": kernel,
                                     "stride": stride if stride is not None else kernel})

    def global_avgpool(self, name: str, parent: int) -> int:
        in_shape = self.shape_of(parent)
        out_shape = L.global_pool_output_shape(in_shape)
        return self.add_layer(name, "global_avgpool", [parent], out_shape, float(L.numel(in_shape)))

    def upsample(self, name: str, parent: int, factor: int = 2) -> int:
        in_shape = self.shape_of(parent)
        out_shape = L.upsample_output_shape(in_shape, factor)
        return self.add_layer(name, "upsample2d", [parent], out_shape,
                              L.upsample_flops(out_shape), attrs={"factor": factor})

    def relu(self, name: str, parent: int) -> int:
        shape = self.shape_of(parent)
        return self.add_layer(name, "relu", [parent], shape, L.activation_flops(shape))

    def batchnorm(self, name: str, parent: int) -> int:
        shape = self.shape_of(parent)
        return self.add_layer(name, "batchnorm", [parent], shape, L.batchnorm_flops(shape),
                              L.batchnorm_params(shape[0]))

    def add(self, name: str, parents: Sequence[int]) -> int:
        """Element-wise addition (residual connections)."""
        shapes = [self.shape_of(p) for p in parents]
        base = shapes[0]
        for s in shapes[1:]:
            if s != base:
                raise ValueError(f"add {name!r}: mismatched shapes {shapes}")
        return self.add_layer(name, "add", parents, base, L.elementwise_flops(base))

    def concat(self, name: str, parents: Sequence[int]) -> int:
        """Channel-wise concatenation (U-Net skip connections, DenseNet blocks)."""
        shapes = [self.shape_of(p) for p in parents]
        out_shape = L.concat_output_shape(shapes)
        return self.add_layer(name, "concat", parents, out_shape, float(L.numel(out_shape)))

    def flatten(self, name: str, parent: int) -> int:
        shape = self.shape_of(parent)
        return self.add_layer(name, "flatten", [parent], (L.numel(shape),), 0.0)

    def identity(self, name: str, parent: int) -> int:
        """Shape- and value-preserving pass-through (cost 0).

        Stands in for the framework ops that materialize a new tensor name
        without computing anything -- views, block-output aliases, residual
        joins in traced graphs.  Zero-cost single-input nodes are exactly
        what :class:`~repro.analysis.passes.ZeroCostChainFusion` merges into
        their dependency before the MILP is compiled.
        """
        shape = self.shape_of(parent)
        return self.add_layer(name, "identity", [parent], shape, 0.0)

    def dense(self, name: str, parent: int, out_features: int, bias: bool = True) -> int:
        shape = self.shape_of(parent)
        in_features = L.numel(shape)
        return self.add_layer(name, "dense", [parent], (int(out_features),),
                              L.dense_flops(in_features, out_features),
                              L.dense_params(in_features, out_features, bias),
                              attrs={"bias": bias})

    def softmax_loss(self, name: str, parent: int) -> int:
        """Classification head: softmax + loss collapsed into a single scalar-output node."""
        shape = self.shape_of(parent)
        return self.add_layer(name, "softmax_loss", [parent], (1,), L.softmax_flops(shape))

    # ------------------------------------------------------------------ #
    # Compound blocks shared by several architectures
    # ------------------------------------------------------------------ #
    def conv_bn_relu(self, name: str, parent: int, out_channels: int, kernel: int = 3,
                     stride: int = 1, padding: str | int = "same") -> int:
        """Conv -> BatchNorm -> ReLU, the standard block in ResNet/MobileNet/SegNet."""
        c = self.conv(f"{name}_conv", parent, out_channels, kernel, stride, padding, bias=False)
        b = self.batchnorm(f"{name}_bn", c)
        return self.relu(f"{name}_relu", b)

    def conv_relu(self, name: str, parent: int, out_channels: int, kernel: int = 3,
                  stride: int = 1, padding: str | int = "same") -> int:
        """Conv -> ReLU, the VGG-style block."""
        c = self.conv(f"{name}_conv", parent, out_channels, kernel, stride, padding)
        return self.relu(f"{name}_relu", c)

    # ------------------------------------------------------------------ #
    # Finalization
    # ------------------------------------------------------------------ #
    @property
    def num_layers(self) -> int:
        return len(self._records)

    def total_params(self) -> int:
        return sum(r.params for r in self._records)

    def build(self) -> DFGraph:
        """Emit the forward-pass :class:`DFGraph`.

        The graph's per-node cost is the layer's batch FLOPs and per-node memory
        is the batch activation size in bytes.  Layer metadata (op types,
        per-example shapes, FLOPs, parameter counts) is preserved in
        ``graph.meta`` for cost models and reporting.
        """
        if not self._records:
            raise ValueError("cannot build an empty network")
        nodes: List[NodeInfo] = []
        deps: Dict[int, List[int]] = {}
        for idx, rec in enumerate(self._records):
            memory = self.batch_size * L.numel(rec.out_shape) * self.dtype_bytes
            cost = rec.flops * self.batch_size
            nodes.append(NodeInfo(name=rec.name, cost=cost, memory=memory,
                                  is_backward=False, layer_id=idx))
            deps[idx] = list(rec.parents)
        input_memory = self.batch_size * L.numel(self.input_shape) * self.dtype_bytes
        parameter_memory = self.total_params() * self.dtype_bytes
        meta = {
            "batch_size": self.batch_size,
            "dtype_bytes": self.dtype_bytes,
            "input_shape": self.input_shape,
            "op_types": [r.op_type for r in self._records],
            "op_attrs": [r.attrs for r in self._records],
            "shapes": [r.out_shape for r in self._records],
            "flops": [r.flops * self.batch_size for r in self._records],
            "params": [r.params for r in self._records],
        }
        return DFGraph(nodes=nodes, deps=deps, input_memory=input_memory,
                       parameter_memory=parameter_memory, name=self.name, meta=meta)
