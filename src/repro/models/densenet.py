"""DenseNet forward graphs (Huang et al., 2017).

DenseNet-161 is the paper's example of an architecture whose rematerialization
MILP is *not* tractable ("no feasible solution was found within one day",
§5) -- every layer inside a dense block consumes the concatenation of all
previous layers, so the graph is extremely edge-dense.  We include it so the
approximation-algorithm path and the intractability anecdote can both be
exercised; a small configurable variant keeps unit tests fast.
"""

from __future__ import annotations

from typing import Sequence

from ..core.dfgraph import DFGraph
from .builder import INPUT, LayerGraphBuilder

__all__ = ["densenet", "densenet121", "densenet161"]


def densenet(block_config: Sequence[int], name: str, *, growth_rate: int = 32,
             batch_size: int = 1, resolution: int = 224, num_classes: int = 1000,
             init_channels: int = 64, coarse: bool = True) -> DFGraph:
    """Build a DenseNet with the given per-block layer counts."""
    b = LayerGraphBuilder(name, (3, resolution, resolution), batch_size)
    prev = b.conv("stem_conv", INPUT, init_channels, kernel=7, stride=2, bias=False)
    prev = b.maxpool("stem_pool", prev, kernel=3, stride=2)
    channels = init_channels
    for block_idx, num_layers in enumerate(block_config, start=1):
        features = [prev]
        for layer_idx in range(1, num_layers + 1):
            inp = features[0] if len(features) == 1 else b.concat(
                f"b{block_idx}l{layer_idx}_concat", features)
            if coarse:
                bott = b.conv(f"b{block_idx}l{layer_idx}_conv1", inp, 4 * growth_rate,
                              kernel=1, bias=False)
                new = b.conv(f"b{block_idx}l{layer_idx}_conv2", bott, growth_rate,
                             kernel=3, bias=False)
            else:
                bott = b.conv_bn_relu(f"b{block_idx}l{layer_idx}_1", inp, 4 * growth_rate, kernel=1)
                new = b.conv_bn_relu(f"b{block_idx}l{layer_idx}_2", bott, growth_rate, kernel=3)
            features.append(new)
            channels += growth_rate
        prev = b.concat(f"b{block_idx}_out", features)
        if block_idx < len(block_config):
            channels //= 2
            prev = b.conv(f"trans{block_idx}_conv", prev, channels, kernel=1, bias=False)
            prev = b.avgpool(f"trans{block_idx}_pool", prev, kernel=2)
    pooled = b.global_avgpool("avgpool", prev)
    logits = b.dense("fc", pooled, num_classes)
    b.softmax_loss("loss", logits)
    return b.build()


def densenet121(batch_size: int = 1, resolution: int = 224, num_classes: int = 1000,
                coarse: bool = True) -> DFGraph:
    """DenseNet-121: blocks [6, 12, 24, 16], growth rate 32."""
    return densenet([6, 12, 24, 16], f"DenseNet121-b{batch_size}-r{resolution}",
                    growth_rate=32, batch_size=batch_size, resolution=resolution,
                    num_classes=num_classes, coarse=coarse)


def densenet161(batch_size: int = 1, resolution: int = 224, num_classes: int = 1000,
                coarse: bool = True) -> DFGraph:
    """DenseNet-161: blocks [6, 12, 36, 24], growth rate 48 (the intractable MILP case)."""
    return densenet([6, 12, 36, 24], f"DenseNet161-b{batch_size}-r{resolution}",
                    growth_rate=48, batch_size=batch_size, resolution=resolution,
                    num_classes=num_classes, init_channels=96, coarse=coarse)
