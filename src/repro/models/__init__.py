"""Architecture zoo: forward-graph builders for every network in the paper's evaluation.

The registry maps the names used throughout the paper's figures and tables to
builder callables.  ``get_model(name, ...)`` is the main entry point used by
examples, tests and the experiment harness.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..core.dfgraph import DFGraph
from .builder import INPUT, LayerGraphBuilder
from .deepblock import deepblock
from .densenet import densenet, densenet121, densenet161
from .fcn import fcn8
from .linear import linear_cnn, linear_mlp
from .mobilenet import mobilenet_v1
from .resnet import resnet18, resnet34, resnet50, resnet_generic, resnet_tiny
from .segnet import segnet
from .unet import unet
from .vgg import vgg16, vgg19, vgg_generic

__all__ = [
    "INPUT",
    "LayerGraphBuilder",
    "MODEL_REGISTRY",
    "get_model",
    "deepblock",
    "densenet",
    "densenet121",
    "densenet161",
    "fcn8",
    "linear_cnn",
    "linear_mlp",
    "mobilenet_v1",
    "resnet18",
    "resnet34",
    "resnet50",
    "resnet_generic",
    "resnet_tiny",
    "segnet",
    "unet",
    "vgg16",
    "vgg19",
    "vgg_generic",
]

#: Canonical model names (as used in the paper's figures) -> builder callables.
MODEL_REGISTRY: Dict[str, Callable[..., DFGraph]] = {
    "vgg16": vgg16,
    "vgg19": vgg19,
    "resnet18": resnet18,
    "resnet34": resnet34,
    "resnet50": resnet50,
    "resnet_tiny": resnet_tiny,
    "mobilenet": mobilenet_v1,
    "unet": unet,
    "fcn8": fcn8,
    "segnet": segnet,
    "densenet121": densenet121,
    "densenet161": densenet161,
    "linear_mlp": linear_mlp,
    "linear_cnn": linear_cnn,
    "deepblock": deepblock,
}


def get_model(name: str, **kwargs) -> DFGraph:
    """Build a forward graph by registry name (case-insensitive).

    Examples
    --------
    >>> g = get_model("vgg16", batch_size=2, resolution=64)
    >>> g.size > 10
    True
    """
    key = name.lower().replace("-", "").replace("_v1", "")
    if key not in MODEL_REGISTRY:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise KeyError(f"unknown model {name!r}; known models: {known}")
    return MODEL_REGISTRY[key](**kwargs)
