"""U-Net forward graph (Ronneberger et al., 2015).

U-Net is the paper's flagship non-linear workload: its long encoder-to-decoder
skip connections mean the graph has *few articulation points*, so the AP
baseline generalizations degrade and Checkmate's ILP shows its largest wins
(1.2x faster than the best baseline at the V100 budget in Figure 5c, 1.73x
larger batches in Figure 6).  The paper runs it for semantic segmentation at
416x608 resolution.
"""

from __future__ import annotations

from ..core.dfgraph import DFGraph
from .builder import INPUT, LayerGraphBuilder

__all__ = ["unet"]


def unet(batch_size: int = 1, resolution: tuple[int, int] = (416, 608),
         base_filters: int = 64, depth: int = 4, num_classes: int = 2,
         coarse: bool = True, convs_per_block: int = 2) -> DFGraph:
    """U-Net with a configurable depth and width.

    Parameters
    ----------
    resolution:
        ``(height, width)`` of the input image; the paper uses 416x608.
    base_filters:
        Channels of the first encoder block; doubled at every down-sampling.
    depth:
        Number of down-sampling steps (the paper's U-Net uses 4).
    convs_per_block:
        Convolutions per encoder/decoder block (2 in the original U-Net).
    coarse:
        Fuse ReLU into each convolution node.
    """
    h, w = resolution
    b = LayerGraphBuilder(f"UNet-b{batch_size}-r{h}x{w}", (3, h, w), batch_size)

    def conv_block(name: str, parent: int, channels: int) -> int:
        prev = parent
        for i in range(convs_per_block):
            if coarse:
                prev = b.conv(f"{name}_conv{i + 1}", prev, channels, kernel=3)
            else:
                prev = b.conv_relu(f"{name}_c{i + 1}", prev, channels, kernel=3)
        return prev

    # Encoder: conv blocks with skip outputs, then 2x2 max-pool.
    skips = []
    prev = INPUT
    filters = base_filters
    for level in range(depth):
        block_out = conv_block(f"enc{level + 1}", prev, filters)
        skips.append(block_out)
        prev = b.maxpool(f"down{level + 1}", block_out, kernel=2)
        filters *= 2

    # Bottleneck.
    prev = conv_block("bottleneck", prev, filters)

    # Decoder: transposed conv, concatenate with the matching encoder output,
    # then a conv block.  The concat edges are the long skip connections that
    # defeat articulation-point checkpointing.
    for level in reversed(range(depth)):
        filters //= 2
        up = b.conv_transpose(f"up{level + 1}", prev, filters, kernel=2, stride=2)
        merged = b.concat(f"skip{level + 1}", [up, skips[level]])
        prev = conv_block(f"dec{level + 1}", merged, filters)

    logits = b.conv("head", prev, num_classes, kernel=1)
    b.softmax_loss("loss", logits)
    return b.build()
