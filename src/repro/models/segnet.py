"""SegNet forward graph (Badrinarayanan et al., 2017).

SegNet is one of the three semantic-segmentation networks of Figure 6
(416x608 inputs).  It is a VGG-style encoder followed by a mirrored decoder
that up-samples with pooling indices; structurally it is (nearly) linear, so it
mainly exercises the cost-aware rather than the general-graph aspect of
Checkmate.
"""

from __future__ import annotations

from typing import Sequence

from ..core.dfgraph import DFGraph
from .builder import INPUT, LayerGraphBuilder

__all__ = ["segnet"]

_ENCODER_CFG: Sequence[Sequence[int]] = [
    [64, 64],
    [128, 128],
    [256, 256, 256],
    [512, 512, 512],
    [512, 512, 512],
]


def segnet(batch_size: int = 1, resolution: tuple[int, int] = (416, 608),
           num_classes: int = 12, coarse: bool = True,
           encoder_cfg: Sequence[Sequence[int]] | None = None) -> DFGraph:
    """SegNet with a VGG16 encoder and mirrored decoder.

    ``encoder_cfg`` may be overridden with a smaller configuration for tests.
    """
    cfg = _ENCODER_CFG if encoder_cfg is None else encoder_cfg
    h, w = resolution
    b = LayerGraphBuilder(f"SegNet-b{batch_size}-r{h}x{w}", (3, h, w), batch_size)

    def block(name: str, parent: int, channels: Sequence[int]) -> int:
        prev = parent
        for i, c in enumerate(channels):
            if coarse:
                prev = b.conv(f"{name}_conv{i + 1}", prev, c, kernel=3)
            else:
                prev = b.conv_bn_relu(f"{name}_{i + 1}", prev, c, kernel=3)
        return prev

    # Encoder.
    prev = INPUT
    for stage, channels in enumerate(cfg, start=1):
        prev = block(f"enc{stage}", prev, channels)
        prev = b.maxpool(f"pool{stage}", prev, kernel=2)

    # Decoder mirrors the encoder: upsample then convolutions, channel counts
    # reversed so the final stage lands back at the first stage's width.
    for stage, channels in enumerate(reversed(cfg), start=1):
        prev = b.upsample(f"unpool{stage}", prev, factor=2)
        decoder_channels = list(reversed(channels))
        prev = block(f"dec{stage}", prev, decoder_channels)

    logits = b.conv("head", prev, num_classes, kernel=3)
    b.softmax_loss("loss", logits)
    return b.build()
