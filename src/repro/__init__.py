"""repro: a from-scratch reproduction of Checkmate (MLSys 2020).

Checkmate formulates tensor rematerialization -- trading recomputation for
activation memory during neural-network training -- as a mixed-integer linear
program, and shows that optimal schedules beat prior checkpointing heuristics
across architectures and budgets while enabling much larger batch sizes.

The public API mirrors the system's pipeline:

1. build a forward graph (:mod:`repro.models`), differentiate it
   (:func:`repro.autodiff.make_training_graph`) and attach costs
   (:mod:`repro.cost_model`);
2. solve for a schedule with the optimal MILP
   (:func:`repro.solvers.solve_ilp_rematerialization`), the LP-rounding
   approximation (:func:`repro.solvers.solve_approx_lp_rounding`) or one of
   the baseline heuristics (:mod:`repro.baselines`) -- or drive any of them
   uniformly through the solve service (:mod:`repro.service`), which adds a
   content-addressed plan cache and parallel (strategy, budget) sweeps;
3. lower the schedule to an execution plan, simulate its memory profile
   (:mod:`repro.core`) or execute it over NumPy tensors
   (:mod:`repro.execution`);
4. regenerate the paper's tables and figures (:mod:`repro.experiments`);
5. or skip the Python entirely: run the solve-as-a-service daemon
   (:mod:`repro.server`, ``repro serve``) and submit jobs over JSON/HTTP --
   priority queueing, single-flighted duplicates and the shared plan cache
   included.

Quickstart
----------
>>> from repro import (make_training_graph, FlopCostModel,
...                    solve_ilp_rematerialization)
>>> from repro.models import vgg16
>>> graph = FlopCostModel().apply(make_training_graph(vgg16(batch_size=4, resolution=64)))
>>> result = solve_ilp_rematerialization(graph, budget=0.5 * graph.total_activation_memory()
...                                      + graph.constant_overhead, time_limit_s=60)
>>> result.feasible
True
"""

from .autodiff import BackwardConfig, make_training_graph
from .baselines import STRATEGIES, get_strategy, solve_checkpoint_all
from .core import (
    DFGraph,
    ExecutionPlan,
    NodeInfo,
    ScheduleMatrices,
    ScheduledResult,
    checkpoint_all_schedule,
    generate_execution_plan,
    schedule_peak_memory,
    simulate_plan,
    validate_correctness_constraints,
)
from .cost_model import (
    CPU_DEVICE,
    NVIDIA_V100,
    DeviceSpec,
    FlopCostModel,
    ProfileCostModel,
    UniformCostModel,
    memory_breakdown,
)
from .execution import (
    ExecutionReport,
    NumericGraph,
    bind_numeric_graph,
    build_execution_report,
    execute_checkpoint_all,
    execute_plan,
)
from .service import (
    PlanCache,
    SolveCancelledError,
    SolveService,
    SolverOptions,
    SolverRegistry,
    SolverSpec,
    SweepCell,
    default_registry,
    get_default_service,
    graph_content_hash,
)
from .solvers import (
    CompiledFormulation,
    MILPFormulation,
    solve_approx_lp_rounding,
    solve_ilp_rematerialization,
    solve_lp_relaxation,
    solve_min_r,
)

__version__ = "1.0.0"

#: Serving-layer exports resolved lazily (PEP 562): the daemon drags in
#: http.server/urllib plus the full preset/model stack, a cost library
#: consumers that never serve should not pay at ``import repro`` time.
_SERVER_EXPORTS = ("JobQueue", "ServeClient", "SolveServer")


def __getattr__(name: str):
    if name in _SERVER_EXPORTS:
        from . import server

        return getattr(server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "__version__",
    "BackwardConfig",
    "make_training_graph",
    "STRATEGIES",
    "get_strategy",
    "solve_checkpoint_all",
    "DFGraph",
    "ExecutionPlan",
    "NodeInfo",
    "ScheduleMatrices",
    "ScheduledResult",
    "checkpoint_all_schedule",
    "generate_execution_plan",
    "schedule_peak_memory",
    "simulate_plan",
    "validate_correctness_constraints",
    "ExecutionReport",
    "NumericGraph",
    "bind_numeric_graph",
    "build_execution_report",
    "execute_checkpoint_all",
    "execute_plan",
    "CPU_DEVICE",
    "NVIDIA_V100",
    "DeviceSpec",
    "FlopCostModel",
    "ProfileCostModel",
    "UniformCostModel",
    "memory_breakdown",
    "JobQueue",
    "ServeClient",
    "SolveServer",
    "PlanCache",
    "SolveCancelledError",
    "SolveService",
    "SolverOptions",
    "SolverRegistry",
    "SolverSpec",
    "SweepCell",
    "default_registry",
    "get_default_service",
    "graph_content_hash",
    "CompiledFormulation",
    "MILPFormulation",
    "solve_approx_lp_rounding",
    "solve_ilp_rematerialization",
    "solve_lp_relaxation",
    "solve_min_r",
]
