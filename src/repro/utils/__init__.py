"""Miscellaneous helpers: formatting, serialization and timing."""

from .formatting import format_bytes, format_table, geomean
from .serialization import (
    graph_from_json,
    graph_from_wire,
    graph_to_json,
    graph_to_wire,
    result_from_wire,
    result_to_wire,
    schedule_from_json,
    schedule_to_json,
)
from .timer import Timer

__all__ = [
    "format_bytes",
    "format_table",
    "geomean",
    "graph_from_json",
    "graph_from_wire",
    "graph_to_json",
    "graph_to_wire",
    "result_from_wire",
    "result_to_wire",
    "schedule_from_json",
    "schedule_to_json",
    "Timer",
]
