"""Miscellaneous helpers: formatting, serialization and timing."""

from .formatting import format_bytes, format_table, geomean
from .serialization import schedule_from_json, schedule_to_json
from .timer import Timer

__all__ = [
    "format_bytes",
    "format_table",
    "geomean",
    "schedule_from_json",
    "schedule_to_json",
    "Timer",
]
