"""Small formatting helpers used by the experiment harness and examples."""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

__all__ = ["format_bytes", "format_table", "geomean"]


def format_bytes(num_bytes: float) -> str:
    """Human readable byte count (``1.50 GiB`` style)."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.2f} {unit}"
        value /= 1024.0
    return f"{value:.2f} TiB"  # pragma: no cover - unreachable


def geomean(values: Iterable[float]) -> float:
    """Geometric mean, as used for the approximation ratios of Table 2."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    if np.any(arr <= 0):
        raise ValueError("geomean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple fixed-width text table (used to print paper tables)."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*["-" * w for w in widths])]
    lines.extend(fmt.format(*row) for row in str_rows)
    return "\n".join(lines)
