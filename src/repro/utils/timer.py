"""A tiny context-manager timer used for solver wall-clock reporting."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Measure elapsed wall-clock time of a ``with`` block.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start
