"""JSON (de)serialization: schedules, graphs and solve results.

Checkmate solves the MILP once per (architecture, batch size, budget) and then
reuses the schedule for millions of training iterations, so schedules need to
be persistable.  With the solve-as-a-service daemon the same need extends to
the other two halves of a solve: clients upload a :class:`DFGraph` over the
wire and download a :class:`~repro.core.schedule.ScheduledResult`, and the
plan cache persists results across processes.  This module is the single wire
format for all three:

* :func:`schedule_to_json` / :func:`schedule_from_json` -- the ``(R, S)``
  decision matrices plus enough metadata to detect mismatched graphs;
* :func:`graph_to_wire` / :func:`graph_from_wire` -- a complete
  :class:`DFGraph` (nodes, deps, memories, ``meta``).  Round-tripping
  preserves the content hash, so a graph uploaded to the solve server hits
  the same plan-cache entries as the original object;
* :func:`result_to_wire` / :func:`result_from_wire` -- a
  :class:`ScheduledResult` *without* its graph (results are resolved against
  the caller's graph on decode, so a corrupt payload degrades to an error,
  never to a silently wrong schedule).

``*_wire`` functions speak plain-JSON dicts (what an HTTP body or a cache
file holds after ``json.loads``); ``*_json`` convenience wrappers speak
strings.
"""

from __future__ import annotations

import json
from typing import Optional, Union

import numpy as np

from ..core.dfgraph import DFGraph, NodeInfo
from ..core.schedule import ScheduleMatrices, ScheduledResult

__all__ = [
    "SCHEDULE_FORMAT",
    "GRAPH_FORMAT",
    "RESULT_FORMAT",
    "OPTIONS_FORMAT",
    "schedule_to_json",
    "schedule_from_json",
    "graph_to_wire",
    "graph_from_wire",
    "graph_to_json",
    "graph_from_json",
    "result_to_wire",
    "result_from_wire",
    "options_to_wire",
    "options_from_wire",
    "jsonable",
]

SCHEDULE_FORMAT = "repro.checkmate.schedule/v1"
GRAPH_FORMAT = "repro.checkmate.dfgraph/v1"
RESULT_FORMAT = "repro.checkmate.result/v1"
OPTIONS_FORMAT = "repro.checkmate.options/v1"


def schedule_to_json(graph: DFGraph, matrices: ScheduleMatrices, *, strategy: str = "") -> str:
    """Serialize a schedule to a JSON string."""
    payload = {
        "format": SCHEDULE_FORMAT,
        "graph_name": graph.name,
        "graph_size": graph.size,
        "graph_num_edges": graph.num_edges,
        "strategy": strategy,
        "R": matrices.R.astype(int).tolist(),
        "S": matrices.S.astype(int).tolist(),
    }
    return json.dumps(payload)


def schedule_from_json(data: str, graph: Optional[DFGraph] = None) -> ScheduleMatrices:
    """Load a schedule from JSON, optionally validating it against a graph."""
    payload = json.loads(data)
    if payload.get("format") != SCHEDULE_FORMAT:
        raise ValueError("not a serialized repro schedule")
    R = np.asarray(payload["R"], dtype=np.uint8)
    S = np.asarray(payload["S"], dtype=np.uint8)
    if graph is not None:
        if payload["graph_size"] != graph.size or R.shape[1] != graph.size:
            raise ValueError(
                f"schedule was produced for a graph with {payload['graph_size']} nodes, "
                f"but the supplied graph has {graph.size}"
            )
    return ScheduleMatrices(R, S)


# --------------------------------------------------------------------------- #
# meta encoding
# --------------------------------------------------------------------------- #
# ``DFGraph.meta`` is typed ``Dict[str, object]`` but in practice holds two
# shapes JSON cannot represent natively: dicts with integer keys (the
# autodiff ``grad_index`` that the segmenting baselines index with ints) and
# numpy arrays/scalars.  Both are encoded as tagged lists so that decoding
# restores the exact Python types -- a round-tripped graph must produce the
# same ``graph_content_hash`` as the original, and the baselines must keep
# working on it.

_DICT_TAG = "__kvdict__"
_NDARRAY_TAG = "__ndarray__"


def _encode_meta(value):
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value):
            return {k: _encode_meta(v) for k, v in value.items()}
        return [_DICT_TAG, [[_encode_meta(k), _encode_meta(v)]
                            for k, v in value.items()]]
    if isinstance(value, np.ndarray):
        return [_NDARRAY_TAG, value.dtype.str, list(value.shape), value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_encode_meta(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(f"meta value {value!r} of type {type(value).__name__} "
                    "is not wire-serializable")


def _decode_meta(value):
    if isinstance(value, dict):
        return {k: _decode_meta(v) for k, v in value.items()}
    if isinstance(value, list):
        if len(value) == 2 and value[0] == _DICT_TAG:
            return {_decode_meta(k): _decode_meta(v) for k, v in value[1]}
        if len(value) == 4 and value[0] == _NDARRAY_TAG:
            return np.asarray(value[3], dtype=np.dtype(value[1])).reshape(value[2])
        return [_decode_meta(v) for v in value]
    return value


# --------------------------------------------------------------------------- #
# DFGraph wire format
# --------------------------------------------------------------------------- #
def graph_to_wire(graph: DFGraph) -> dict:
    """Serialize a :class:`DFGraph` to a plain-JSON dict.

    The payload covers everything that participates in the content hash
    (nodes, deps, input/parameter memory, name, ``meta``), so
    ``graph_content_hash(graph_from_wire(graph_to_wire(g))) ==
    graph_content_hash(g)``.
    """
    return {
        "format": GRAPH_FORMAT,
        "name": graph.name,
        "nodes": [[v.name, float(v.cost), int(v.memory), bool(v.is_backward),
                   v.layer_id] for v in graph.nodes],
        "deps": {str(j): list(graph.deps[j]) for j in range(graph.size)},
        "input_memory": int(graph.input_memory),
        "parameter_memory": int(graph.parameter_memory),
        "meta": _encode_meta(graph.meta),
    }


def graph_from_wire(payload: dict) -> DFGraph:
    """Reconstruct a :class:`DFGraph` from :func:`graph_to_wire` output."""
    if not isinstance(payload, dict) or payload.get("format") != GRAPH_FORMAT:
        raise ValueError("not a serialized repro DFGraph")
    nodes = [NodeInfo(name=str(n[0]), cost=float(n[1]), memory=int(n[2]),
                      is_backward=bool(n[3]),
                      layer_id=None if n[4] is None else int(n[4]))
             for n in payload["nodes"]]
    deps = {int(j): [int(i) for i in parents]
            for j, parents in payload["deps"].items()}
    return DFGraph(
        nodes=nodes,
        deps=deps,
        input_memory=int(payload.get("input_memory", 0)),
        parameter_memory=int(payload.get("parameter_memory", 0)),
        name=str(payload.get("name", "graph")),
        meta=_decode_meta(payload.get("meta") or {}),
    )


def graph_to_json(graph: DFGraph) -> str:
    """String-typed convenience wrapper around :func:`graph_to_wire`."""
    return json.dumps(graph_to_wire(graph))


def graph_from_json(data: Union[str, bytes, dict]) -> DFGraph:
    """Accept a JSON string (or an already-parsed dict) and decode the graph."""
    payload = json.loads(data) if isinstance(data, (str, bytes)) else data
    return graph_from_wire(payload)


# --------------------------------------------------------------------------- #
# SolverOptions wire format
# --------------------------------------------------------------------------- #
def options_to_wire(options) -> dict:
    """Serialize a :class:`~repro.service.options.SolverOptions` to a dict.

    Only non-``None`` fields travel; ``checkpoints`` (a tuple) becomes a
    list.  The process-pool backend ships options to worker processes with
    this, so the round trip must preserve every field exactly --
    ``options_from_wire(options_to_wire(o)) == o``.
    """
    import dataclasses

    fields = {}
    for field in dataclasses.fields(options):
        value = getattr(options, field.name)
        if value is None:
            continue
        if isinstance(value, tuple):
            value = list(value)
        fields[field.name] = value
    return {"format": OPTIONS_FORMAT, "fields": fields}


def options_from_wire(payload: dict):
    """Rebuild a :class:`~repro.service.options.SolverOptions` from
    :func:`options_to_wire` output.  Unknown fields raise ``ValueError``
    (a newer client talking to an older worker must fail loudly, not
    silently drop a solver knob)."""
    # Imported lazily: repro.service.cache imports this module at package
    # init, so a top-level import of repro.service here would be circular.
    from ..service.options import SolverOptions

    if not isinstance(payload, dict) or payload.get("format") != OPTIONS_FORMAT:
        raise ValueError("not serialized repro solver options")
    fields = payload.get("fields") or {}
    known = set(SolverOptions.__dataclass_fields__)
    unknown = set(fields) - known
    if unknown:
        raise ValueError(f"unknown solver option fields on the wire: "
                         f"{sorted(unknown)}")
    for tuple_field in ("checkpoints", "entrants"):
        if fields.get(tuple_field) is not None:
            fields = dict(fields, **{tuple_field: tuple(fields[tuple_field])})
    return SolverOptions(**fields)


# --------------------------------------------------------------------------- #
# ScheduledResult wire format
# --------------------------------------------------------------------------- #
def jsonable(value):
    """Best-effort projection of a result's ``extra`` dict onto plain JSON.

    NumPy scalars become Python numbers and tuples become lists; keys whose
    values still refuse to serialize are dropped rather than failing the
    encode -- a payload with partial ``extra`` beats no payload.
    """
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            try:
                json.dumps(converted := jsonable(v))
            except (TypeError, ValueError):
                continue
            out[str(k)] = converted
        return out
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


def result_to_wire(result: ScheduledResult) -> dict:
    """Serialize a :class:`ScheduledResult` to a plain-JSON dict.

    The graph itself is *not* embedded (the caller already has it -- a server
    client uploaded it, a cache lookup supplied it); the schedule payload
    carries the graph size so decode-time mismatches are detected.

    ``compute_cost`` is ``None`` when not finite (infeasible results carry
    ``float("inf")``, which strict JSON per RFC 8259 cannot represent --
    non-Python clients would choke on a bare ``Infinity`` token).  Decoding
    recomputes the metrics from the schedule anyway, so nothing is lost.
    """
    import math

    cost = float(result.compute_cost)
    return {
        "format": RESULT_FORMAT,
        "strategy": result.strategy,
        "budget": result.budget,
        "feasible": bool(result.feasible),
        "solver_status": result.solver_status,
        "solve_time_s": float(result.solve_time_s),
        "compute_cost": cost if math.isfinite(cost) else None,
        "peak_memory": int(result.peak_memory),
        "has_plan": result.plan is not None,
        "extra": jsonable(result.extra),
        "schedule": (schedule_to_json(result.graph, result.matrices,
                                      strategy=result.strategy)
                     if result.matrices is not None else None),
    }


def result_from_wire(payload: dict, graph: DFGraph) -> ScheduledResult:
    """Rebuild a :class:`ScheduledResult` against the caller's ``graph``.

    The schedule matrices are re-validated and the derived metrics (compute
    cost, peak memory, plan) recomputed from the graph, so a payload that
    does not match the graph raises ``ValueError`` instead of producing a
    wrong schedule.
    """
    from ..solvers.common import build_scheduled_result

    if not isinstance(payload, dict) or payload.get("format") != RESULT_FORMAT:
        raise ValueError("not a serialized repro solve result")
    matrices = (schedule_from_json(payload["schedule"], graph)
                if payload.get("schedule") else None)
    return build_scheduled_result(
        str(payload["strategy"]), graph, matrices,
        budget=payload.get("budget"),
        feasible=bool(payload.get("feasible")),
        solve_time_s=float(payload.get("solve_time_s", 0.0)),
        solver_status=str(payload.get("solver_status", "cached")),
        generate_plan=bool(payload.get("has_plan", True)),
        validate=True,
        extra=payload.get("extra") or {},
    )
