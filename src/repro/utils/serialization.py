"""JSON (de)serialization of schedules.

Checkmate solves the MILP once per (architecture, batch size, budget) and then
reuses the schedule for millions of training iterations, so schedules need to
be persistable.  We serialize the ``(R, S)`` matrices together with enough
metadata to detect mismatched graphs on reload.
"""

from __future__ import annotations

import json
from typing import Optional

import numpy as np

from ..core.dfgraph import DFGraph
from ..core.schedule import ScheduleMatrices

__all__ = ["schedule_to_json", "schedule_from_json"]


def schedule_to_json(graph: DFGraph, matrices: ScheduleMatrices, *, strategy: str = "") -> str:
    """Serialize a schedule to a JSON string."""
    payload = {
        "format": "repro.checkmate.schedule/v1",
        "graph_name": graph.name,
        "graph_size": graph.size,
        "graph_num_edges": graph.num_edges,
        "strategy": strategy,
        "R": matrices.R.astype(int).tolist(),
        "S": matrices.S.astype(int).tolist(),
    }
    return json.dumps(payload)


def schedule_from_json(data: str, graph: Optional[DFGraph] = None) -> ScheduleMatrices:
    """Load a schedule from JSON, optionally validating it against a graph."""
    payload = json.loads(data)
    if payload.get("format") != "repro.checkmate.schedule/v1":
        raise ValueError("not a serialized repro schedule")
    R = np.asarray(payload["R"], dtype=np.uint8)
    S = np.asarray(payload["S"], dtype=np.uint8)
    if graph is not None:
        if payload["graph_size"] != graph.size or R.shape[1] != graph.size:
            raise ValueError(
                f"schedule was produced for a graph with {payload['graph_size']} nodes, "
                f"but the supplied graph has {graph.size}"
            )
    return ScheduleMatrices(R, S)
