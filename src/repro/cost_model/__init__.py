"""Cost models: map graph nodes to compute costs and account memory.

The paper's solver is *hardware-aware* through a profile-based cost model
(§4.10): per-layer runtimes are profiled on the target accelerator, and tensor
memory is computed statically from shapes.  Since no GPU is available in this
environment, :class:`ProfileCostModel` provides a deterministic analytic stand
in (roofline-style timing for a parameterized device), while
:class:`FlopCostModel` reproduces the statically-counted-FLOPs setting the
paper uses for Figure 6 and Table 2.
"""

from .devices import DeviceSpec, NVIDIA_V100, NVIDIA_P100, CPU_DEVICE
from .memory import MemoryBreakdown, memory_breakdown
from .models import CostModel, FlopCostModel, ProfileCostModel, UniformCostModel

#: Name -> class map shared by every surface that takes a cost model by name
#: (the HTTP API's ``cost_model`` field, the CLI's ``--cost-model`` flag).
COST_MODELS = {
    "flop": FlopCostModel,
    "profile": ProfileCostModel,
    "uniform": UniformCostModel,
}

__all__ = [
    "COST_MODELS",
    "DeviceSpec",
    "NVIDIA_V100",
    "NVIDIA_P100",
    "CPU_DEVICE",
    "MemoryBreakdown",
    "memory_breakdown",
    "CostModel",
    "FlopCostModel",
    "ProfileCostModel",
    "UniformCostModel",
]
