"""Accelerator device descriptions used by the profile-based cost model.

The paper profiles layers on an NVIDIA V100 (16 GB).  We describe devices by
the parameters a roofline-style timing model needs: peak floating point
throughput, DRAM bandwidth, per-kernel launch overhead and memory capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "NVIDIA_V100", "NVIDIA_P100", "CPU_DEVICE"]

GiB = 2**30


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of an accelerator.

    Attributes
    ----------
    name: marketing name used in reports.
    peak_flops: peak single-precision throughput in FLOP/s.
    memory_bandwidth: DRAM bandwidth in bytes/s.
    kernel_launch_overhead: fixed per-operation overhead in seconds.
    memory_bytes: usable device memory (the rematerialization budget ceiling).
    """

    name: str
    peak_flops: float
    memory_bandwidth: float
    kernel_launch_overhead: float
    memory_bytes: int

    @property
    def memory_gb(self) -> float:
        return self.memory_bytes / GiB


#: The device used throughout the paper's evaluation (16 GB SXM2 V100).
NVIDIA_V100 = DeviceSpec(
    name="NVIDIA V100 16GB",
    peak_flops=15.7e12,
    memory_bandwidth=900e9,
    kernel_launch_overhead=5e-6,
    memory_bytes=16 * GiB,
)

NVIDIA_P100 = DeviceSpec(
    name="NVIDIA P100 16GB",
    peak_flops=9.3e12,
    memory_bandwidth=732e9,
    kernel_launch_overhead=5e-6,
    memory_bytes=16 * GiB,
)

#: A deliberately small "device" for unit tests and laptop-scale examples.
CPU_DEVICE = DeviceSpec(
    name="CPU (reference)",
    peak_flops=2e11,
    memory_bandwidth=50e9,
    kernel_launch_overhead=1e-6,
    memory_bytes=8 * GiB,
)
