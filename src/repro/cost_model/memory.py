"""Static memory accounting: the Figure-3 breakdown of training memory.

The paper's Figure 3 decomposes training memory into feature (activation)
memory, parameter memory, parameter-gradient memory and workspace memory, and
shows features dominate.  :func:`memory_breakdown` reproduces that accounting
from a graph produced by the model builders.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dfgraph import DFGraph

__all__ = ["MemoryBreakdown", "memory_breakdown"]


@dataclass(frozen=True)
class MemoryBreakdown:
    """Bytes used by each category when *all* activations are retained."""

    model: str
    features: int
    parameters: int
    parameter_gradients: int
    workspace: int
    inputs: int

    @property
    def total(self) -> int:
        return (self.features + self.parameters + self.parameter_gradients
                + self.workspace + self.inputs)

    def feature_fraction(self) -> float:
        """Fraction of total memory consumed by activations (the paper's headline point)."""
        return self.features / self.total if self.total else 0.0

    def as_row(self) -> tuple:
        return (self.model, self.features, self.parameters, self.parameter_gradients,
                self.workspace, self.inputs, self.total)


def memory_breakdown(graph: DFGraph, *, workspace_fraction: float = 0.05) -> MemoryBreakdown:
    """Compute the checkpoint-all memory breakdown of a graph.

    Parameters
    ----------
    graph:
        Either a forward graph or a training graph; only forward nodes count as
        "features" (gradient tensors are transient in the checkpoint-all
        policy, so following the paper they are folded into workspace).
    workspace_fraction:
        cuDNN-style scratch space modelled as a fraction of feature memory.
    """
    features = sum(graph.memory(i) for i in graph.forward_nodes())
    params = graph.parameter_memory
    workspace = int(workspace_fraction * features)
    return MemoryBreakdown(
        model=graph.name,
        features=int(features),
        parameters=int(params),
        parameter_gradients=int(params),
        workspace=workspace,
        inputs=int(graph.input_memory),
    )
