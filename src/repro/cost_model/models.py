"""Cost models assigning per-node compute costs ``C_i`` to graph nodes.

Three models are provided:

* :class:`FlopCostModel` -- the statically counted FLOPs already attached to
  the graph by the model builders (paper Figure 6 / Table 2 setting).
* :class:`ProfileCostModel` -- a deterministic, device-parameterized roofline
  timing model standing in for the paper's on-accelerator profiling
  (Figure 5 setting).  Layers are timed as
  ``max(flops / effective_flops, bytes / bandwidth) + launch overhead`` where
  the effective throughput depends on an op-specific efficiency and the
  operation's arithmetic size (small ops achieve a fraction of peak, exactly
  the behaviour measured on real GPUs).  A small deterministic per-layer jitter
  emulates profiling noise without breaking reproducibility.
* :class:`UniformCostModel` -- the unit-cost assumption baked into prior work
  (Griewank & Walther, Chen et al.), useful for ablations showing why cost
  awareness matters.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..core.dfgraph import DFGraph
from .devices import DeviceSpec, NVIDIA_V100

__all__ = ["CostModel", "FlopCostModel", "ProfileCostModel", "UniformCostModel"]

# Fraction of peak throughput typically achieved per op type (dense GEMM-like
# kernels come close to peak; memory-bound elementwise ops do not).
_OP_EFFICIENCY = {
    "conv2d": 0.55,
    "conv_transpose2d": 0.50,
    "depthwise_conv2d": 0.15,
    "dense": 0.60,
    "maxpool2d": 0.05,
    "avgpool2d": 0.05,
    "global_avgpool": 0.05,
    "upsample2d": 0.05,
    "relu": 0.04,
    "batchnorm": 0.05,
    "add": 0.04,
    "concat": 0.04,
    "flatten": 0.02,
    "identity": 0.02,
    "softmax_loss": 0.05,
}
_DEFAULT_EFFICIENCY = 0.30
_BACKWARD_EFFICIENCY_SCALE = 0.9  # backward kernels are slightly less efficient


class CostModel(ABC):
    """Interface: produce a per-node cost vector for a graph."""

    @abstractmethod
    def costs(self, graph: DFGraph) -> np.ndarray:
        """Return a float vector of per-node costs (length ``graph.size``)."""

    def apply(self, graph: DFGraph) -> DFGraph:
        """Return a copy of ``graph`` whose node costs come from this model."""
        return graph.with_costs(self.costs(graph))


class FlopCostModel(CostModel):
    """Use the FLOP counts already attached to the graph as costs.

    The model builders set forward node costs to batch FLOPs and the autodiff
    pass derives backward costs from them, so this model simply normalizes the
    existing costs (optionally rescaling to GFLOPs for readability).
    """

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = float(scale)

    def costs(self, graph: DFGraph) -> np.ndarray:
        return graph.cost_vector * self.scale


class UniformCostModel(CostModel):
    """Every node costs one unit -- the assumption of prior checkpointing work."""

    def costs(self, graph: DFGraph) -> np.ndarray:
        return np.ones(graph.size, dtype=np.float64)


class ProfileCostModel(CostModel):
    """Deterministic analytic stand-in for on-device layer profiling.

    Parameters
    ----------
    device:
        Accelerator description (defaults to the paper's V100).
    jitter:
        Relative amplitude of the deterministic pseudo-random measurement
        noise added per layer (0.03 = +/-3%).  Derived from a hash of the layer
        name so repeated runs and equal layers get identical costs.
    backward_cost_factor_hint:
        Only used when the graph has no per-node FLOP metadata at all.
    """

    def __init__(self, device: DeviceSpec = NVIDIA_V100, jitter: float = 0.03,
                 seed: int = 0) -> None:
        self.device = device
        self.jitter = float(jitter)
        self.seed = int(seed)

    # ------------------------------------------------------------------ #
    def _noise(self, name: str) -> float:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        unit = int.from_bytes(digest[:8], "little") / 2**64  # in [0, 1)
        return 1.0 + self.jitter * (2.0 * unit - 1.0)

    def _node_time(self, flops: float, bytes_moved: float, op_type: str,
                   is_backward: bool, name: str) -> float:
        efficiency = _OP_EFFICIENCY.get(op_type, _DEFAULT_EFFICIENCY)
        if is_backward:
            efficiency *= _BACKWARD_EFFICIENCY_SCALE
        # Small kernels never reach peak efficiency: ramp up with problem size.
        size_ramp = flops / (flops + 1e8) if flops > 0 else 0.0
        effective_flops = self.device.peak_flops * max(0.02, efficiency * size_ramp)
        compute_time = flops / effective_flops if flops > 0 else 0.0
        memory_time = bytes_moved / self.device.memory_bandwidth
        return (max(compute_time, memory_time) + self.device.kernel_launch_overhead) \
            * self._noise(name)

    def costs(self, graph: DFGraph) -> np.ndarray:
        op_types: Sequence[str] = graph.meta.get("op_types", [])
        out = np.zeros(graph.size, dtype=np.float64)
        for i, node in enumerate(graph.nodes):
            if node.layer_id is not None and node.layer_id < len(op_types):
                op_type = op_types[node.layer_id]
            else:
                op_type = "unknown"
            # Node cost carries the batch FLOPs (forward) or the derived backward
            # FLOPs; bytes moved ~ output size plus inputs read.
            flops = node.cost
            bytes_moved = float(node.memory)
            for p in graph.predecessors(i):
                bytes_moved += float(graph.memory(p))
            out[i] = self._node_time(flops, bytes_moved, op_type, node.is_backward, node.name)
        return out
