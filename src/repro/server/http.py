"""JSON-over-HTTP API for the solve daemon (stdlib only).

Endpoints (all JSON bodies/responses, ``/v1`` prefix):

============================== =============================================
``POST /v1/solve``             submit one solve; 202 + job handle
``POST /v1/sweep``             submit a (strategy, budget) sweep; 202 + job
``POST /v1/execute``           solve + run over NumPy tensors; 202 + job
``POST /v1/pareto``            bisection Pareto-frontier trace; 202 + job
``POST /v1/lint``              structured graph diagnostics; 200 (synchronous)
``GET  /v1/jobs``              list retained jobs (``?state=queued`` filter)
``GET  /v1/jobs/{id}``         job status/lifecycle
``GET  /v1/jobs/{id}/result``  result payload (409 until terminal)
``POST /v1/jobs/{id}/cancel``  cancel (also ``DELETE /v1/jobs/{id}``)
``GET  /v1/healthz``           liveness + queue depth
``GET  /v1/metrics``           queue/cache/latency counters (JSON); add
                               ``?format=prometheus`` for text exposition
``GET  /v1/trace/{id}``        span tree of a job's solve trace; add
                               ``?format=chrome`` for Chrome trace JSON
``GET  /v1/strategies``        the solver registry
``GET  /v1/presets``           experiment presets addressable in requests
============================== =============================================

Graphs enter a request either **by value** -- ``"graph": <wire dict>`` in the
:func:`repro.utils.serialization.graph_to_wire` format -- or **by preset** --
``"preset": "unet"`` plus optional ``"scale"``/``"batch_size"``/
``"cost_model"``, which builds the named experiment workload server-side
(forward graph, reverse-mode differentiation, cost model) so shell clients
never need to construct a graph at all.

The server is a ``ThreadingHTTPServer``: request handling is concurrent and
cheap (submission just enqueues), while actual solver work happens on the
:class:`~repro.server.jobs.JobQueue` worker pool.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..core.dfgraph import DFGraph
from ..cost_model import COST_MODELS
from ..experiments.presets import EXPERIMENT_MODELS, build_training_graph
from ..obs.logging import get_logger
from ..obs.metrics import flatten_numeric, get_metrics_registry
from ..obs.trace import chrome_trace, get_tracer, span_tree
from ..service import SolveService, SolverOptions, SweepCell
from ..utils.serialization import graph_from_wire, result_to_wire
from .jobs import Job, JobQueue, JobState, QueueFullError

__all__ = ["SolveServer", "DEFAULT_PORT", "serve"]

DEFAULT_PORT = 8765
API_VERSION = "v1"

_log = get_logger("server.http")

_COST_MODELS = COST_MODELS

_OPTION_FIELDS = frozenset(SolverOptions.__dataclass_fields__)


class ApiError(Exception):
    """An error with an HTTP status, rendered as a JSON body.

    ``headers`` are extra response headers (e.g. ``Retry-After`` on a 503)
    and ``extra`` is merged into the JSON error body.
    """

    def __init__(self, status: int, message: str, *,
                 headers: Optional[dict] = None,
                 extra: Optional[dict] = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})
        self.extra = dict(extra or {})


def _queue_full(exc: QueueFullError) -> ApiError:
    """Map admission-control rejection onto the 503 shed contract."""
    import math

    retry_after = max(1, math.ceil(exc.retry_after_s))
    return ApiError(503, str(exc),
                    headers={"Retry-After": str(retry_after)},
                    extra={"retry_after_s": exc.retry_after_s,
                           "queue_depth": exc.depth,
                           "max_queue_depth": exc.limit})


def _parse_deadline(payload: dict) -> Optional[float]:
    value = payload.get("deadline_s")
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)) \
            or value <= 0:
        raise ApiError(400, "'deadline_s' must be a positive number of seconds")
    return float(value)


def _parse_options(payload: Optional[dict]) -> Optional[SolverOptions]:
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise ApiError(400, "'options' must be an object")
    unknown = set(payload) - _OPTION_FIELDS
    if unknown:
        raise ApiError(400, f"unknown solver options: {sorted(unknown)}; "
                            f"known: {sorted(_OPTION_FIELDS)}")
    try:
        checkpoints = payload.get("checkpoints")
        if checkpoints is not None:
            payload = dict(payload, checkpoints=tuple(checkpoints))
        return SolverOptions(**payload)
    except (TypeError, ValueError) as exc:
        raise ApiError(400, f"invalid solver options: {exc}") from None


def _parse_budget(value) -> Optional[float]:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ApiError(400, "'budget' must be a number of bytes (or null)")
    if value < 0:
        raise ApiError(400, "'budget' must be non-negative")
    return float(value)


def _build_graph(payload: dict) -> DFGraph:
    """Resolve the request's graph: by wire value or by named preset."""
    has_graph = "graph" in payload and payload["graph"] is not None
    has_preset = "preset" in payload and payload["preset"] is not None
    if has_graph == has_preset:
        raise ApiError(400, "exactly one of 'graph' (wire format) or "
                            "'preset' (named workload) is required")
    if has_graph:
        try:
            return graph_from_wire(payload["graph"])
        except (ValueError, KeyError, TypeError) as exc:
            raise ApiError(400, f"invalid graph payload: {exc}") from None

    preset = payload["preset"]
    if preset not in EXPERIMENT_MODELS:
        raise ApiError(404, f"unknown preset {preset!r}; "
                            f"known: {sorted(EXPERIMENT_MODELS)}")
    scale = payload.get("scale", "ci")
    if scale not in ("ci", "paper"):
        raise ApiError(400, "'scale' must be 'ci' or 'paper'")
    cost_model_name = payload.get("cost_model", "flop")
    if cost_model_name not in _COST_MODELS:
        raise ApiError(400, f"unknown cost_model {cost_model_name!r}; "
                            f"known: {sorted(_COST_MODELS)}")
    batch_size = payload.get("batch_size")
    if batch_size is not None and (isinstance(batch_size, bool)
                                   or not isinstance(batch_size, int)
                                   or batch_size < 1):
        raise ApiError(400, "'batch_size' must be a positive integer")
    try:
        return build_training_graph(preset, scale=scale, batch_size=batch_size,
                                    cost_model=_COST_MODELS[cost_model_name]())
    except (ValueError, TypeError, KeyError) as exc:
        raise ApiError(400, f"failed to build preset graph: {exc}") from None


class _App:
    """Routing + request handling, independent of the HTTP plumbing."""

    def __init__(self, queue: JobQueue) -> None:
        self.queue = queue

    # ------------------------------ submissions ----------------------- #
    def post_solve(self, payload: dict) -> Tuple[int, dict]:
        graph = _build_graph(payload)
        strategy = payload.get("strategy")
        if not isinstance(strategy, str):
            raise ApiError(400, "'strategy' (string) is required")
        budget = _parse_budget(payload.get("budget"))
        options = _parse_options(payload.get("options"))
        priority = payload.get("priority", 0)
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise ApiError(400, "'priority' must be an integer (lower runs first)")
        deadline_s = _parse_deadline(payload)
        try:
            job = self.queue.submit_solve(graph, strategy, budget, options,
                                          priority=priority,
                                          deadline_s=deadline_s)
        except KeyError as exc:
            raise ApiError(404, str(exc.args[0])) from None
        except QueueFullError as exc:
            raise _queue_full(exc) from None
        return 202, self._job_accepted(job)

    def post_lint(self, payload: dict) -> Tuple[int, dict]:
        """Lint a graph (by wire value or preset) and return the diagnostics.

        Synchronous -- linting is pure analysis, far cheaper than a solve, so
        there is no job to queue: the response is the
        :meth:`~repro.analysis.lint.LintReport.to_dict` payload directly.  An
        optional ``budget`` (bytes) enables the ``B001`` feasibility
        pre-check.  The HTTP status is 200 even when the report contains
        errors -- the *lint* succeeded; ``"ok"`` in the body carries the
        verdict.
        """
        from ..analysis.lint import lint_graph

        graph = _build_graph(payload)
        budget = _parse_budget(payload.get("budget"))
        report = lint_graph(graph, budget=budget)
        return 200, report.to_dict()

    def post_execute(self, payload: dict) -> Tuple[int, dict]:
        """Solve one cell, lower the plan and run it over real tensors.

        Same payload as ``/v1/solve`` plus an optional integer ``seed``
        steering the deterministic parameter/input binding.  The job's result
        is the predicted-vs-measured
        :class:`~repro.execution.report.ExecutionReport`.  The graph (preset
        or wire value) must carry builder metadata with executable op types;
        toy/hand-built graphs are rejected with 400 at submission.
        """
        graph = _build_graph(payload)
        from ..execution import unsupported_op_types
        unsupported = unsupported_op_types(graph)
        if unsupported:
            raise ApiError(400, f"graph {graph.name!r} is not executable: "
                                f"unsupported op types {unsupported}")
        strategy = payload.get("strategy")
        if not isinstance(strategy, str):
            raise ApiError(400, "'strategy' (string) is required")
        budget = _parse_budget(payload.get("budget"))
        options = _parse_options(payload.get("options"))
        seed = payload.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ApiError(400, "'seed' must be an integer")
        priority = payload.get("priority", 0)
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise ApiError(400, "'priority' must be an integer (lower runs first)")
        deadline_s = _parse_deadline(payload)
        try:
            job = self.queue.submit_execute(graph, strategy, budget, options,
                                            seed=seed, priority=priority,
                                            deadline_s=deadline_s)
        except KeyError as exc:
            raise ApiError(404, str(exc.args[0])) from None
        except QueueFullError as exc:
            raise _queue_full(exc) from None
        return 202, self._job_accepted(job)

    def post_sweep(self, payload: dict) -> Tuple[int, dict]:
        graph = _build_graph(payload)
        options = _parse_options(payload.get("options"))
        priority = payload.get("priority", 0)
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise ApiError(400, "'priority' must be an integer (lower runs first)")
        cells = []
        if payload.get("cells") is not None:
            if not isinstance(payload["cells"], list):
                raise ApiError(400, "'cells' must be a list of "
                                    "{strategy, budget, options?} objects")
            for entry in payload["cells"]:
                if not isinstance(entry, dict) or "strategy" not in entry:
                    raise ApiError(400, "each cell needs at least a 'strategy'")
                cells.append(SweepCell(
                    strategy=entry["strategy"],
                    budget=_parse_budget(entry.get("budget")),
                    options=_parse_options(entry.get("options")),
                ))
        elif payload.get("strategies") is not None:
            strategies = payload["strategies"]
            budgets = payload.get("budgets", [None])
            if not isinstance(strategies, list) or not isinstance(budgets, list):
                raise ApiError(400, "'strategies' and 'budgets' must be lists")
            cells = [SweepCell(strategy=s, budget=_parse_budget(b))
                     for s in strategies for b in budgets]
        else:
            raise ApiError(400, "provide 'cells' or 'strategies' (+ 'budgets')")
        deadline_s = _parse_deadline(payload)
        try:
            job = self.queue.submit_sweep(graph, cells, options,
                                          priority=priority,
                                          deadline_s=deadline_s)
        except KeyError as exc:
            raise ApiError(404, str(exc.args[0])) from None
        except QueueFullError as exc:
            raise _queue_full(exc) from None
        except ValueError as exc:
            raise ApiError(400, str(exc)) from None
        return 202, self._job_accepted(job)

    def post_pareto(self, payload: dict) -> Tuple[int, dict]:
        """Trace the memory-vs-recompute frontier by warm-seeded bisection.

        Payload: a graph (preset or wire value), optional ``strategy``
        (default ``checkmate_ilp``), optional ``low``/``high`` budget bounds
        and ``resolution`` in bytes, optional ``options``.  The job's result
        is the :class:`~repro.service.pareto.ParetoFront` as a dict.
        """
        graph = _build_graph(payload)
        strategy = payload.get("strategy", "checkmate_ilp")
        if not isinstance(strategy, str):
            raise ApiError(400, "'strategy' must be a string")
        low = _parse_budget(payload.get("low"))
        high = _parse_budget(payload.get("high"))
        resolution = payload.get("resolution")
        if resolution is not None:
            if (isinstance(resolution, bool)
                    or not isinstance(resolution, (int, float))
                    or resolution <= 0):
                raise ApiError(400, "'resolution' must be a positive number of bytes")
            resolution = float(resolution)
        options = _parse_options(payload.get("options"))
        priority = payload.get("priority", 0)
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise ApiError(400, "'priority' must be an integer (lower runs first)")
        deadline_s = _parse_deadline(payload)
        try:
            job = self.queue.submit_pareto(graph, strategy, low=low, high=high,
                                           resolution=resolution, options=options,
                                           priority=priority,
                                           deadline_s=deadline_s)
        except KeyError as exc:
            raise ApiError(404, str(exc.args[0])) from None
        except QueueFullError as exc:
            raise _queue_full(exc) from None
        except ValueError as exc:
            raise ApiError(400, str(exc)) from None
        return 202, self._job_accepted(job)

    @staticmethod
    def _job_accepted(job: Job) -> dict:
        return {
            "job_id": job.id,
            "state": job.state.value,
            "deduplicated": job.deduplicated,
            "status_url": f"/{API_VERSION}/jobs/{job.id}",
            "result_url": f"/{API_VERSION}/jobs/{job.id}/result",
        }

    # ------------------------------ job access ------------------------ #
    def _job(self, job_id: str) -> Job:
        try:
            return self.queue.job(job_id)
        except KeyError:
            raise ApiError(404, f"unknown job {job_id!r}") from None

    def get_jobs(self, state: Optional[str]) -> Tuple[int, dict]:
        state_filter = None
        if state is not None:
            try:
                state_filter = JobState(state)
            except ValueError:
                raise ApiError(400, f"unknown state filter {state!r}") from None
        return 200, {"jobs": [j.to_dict() for j in self.queue.jobs(state_filter)]}

    def get_job(self, job_id: str) -> Tuple[int, dict]:
        return 200, self._job(job_id).to_dict()

    def get_result(self, job_id: str) -> Tuple[int, dict]:
        job = self._job(job_id)
        if job.state in (JobState.QUEUED, JobState.RUNNING):
            raise ApiError(409, f"job {job_id} is {job.state.value}; "
                                "result not available yet")
        if job.state is not JobState.DONE:
            raise ApiError(409, f"job {job_id} {job.state.value}: {job.error}")
        if job.kind == "solve":
            body = {"job": job.to_dict(), "result": result_to_wire(job.result)}
        elif job.kind == "execute":
            body = {"job": job.to_dict(), "report": job.result.to_dict()}
        elif job.kind == "pareto":
            body = {"job": job.to_dict(), "front": job.result.to_dict()}
        else:
            body = {"job": job.to_dict(),
                    "results": [result_to_wire(r) for r in job.result]}
        return 200, body

    def cancel_job(self, job_id: str) -> Tuple[int, dict]:
        try:
            job = self.queue.cancel(job_id)
        except KeyError:
            raise ApiError(404, f"unknown job {job_id!r}") from None
        return 200, job.to_dict()

    # ------------------------------ operational ----------------------- #
    def get_healthz(self) -> Tuple[int, dict]:
        metrics = self.queue.metrics()
        return 200, {
            "status": "ok",
            "uptime_s": metrics["uptime_s"],
            "backend": self.queue.backend.name,
            "workers": metrics["workers"],
            "queue_depth": metrics["queue_depth"],
            "max_queue_depth": metrics["max_queue_depth"],
            "running": metrics["running"],
        }

    def get_metrics(self, fmt: Optional[str] = None):
        """``/v1/metrics``: JSON by default, text exposition with
        ``?format=prometheus``.

        The Prometheus view renders the typed instrument registry (HTTP
        request counters, per-phase latency histograms) and flattens the
        whole JSON payload into ``repro_*`` gauges, so every counter in
        ``SolveService.statistics()`` is scrapeable.
        """
        payload = self.queue.metrics()
        tracer = get_tracer()
        payload["tracing"] = dict(tracer.store.stats(),
                                  enabled=tracer.enabled)
        if fmt is None or fmt == "json":
            return 200, payload
        if fmt != "prometheus":
            raise ApiError(400, f"unknown metrics format {fmt!r}; "
                                "use 'json' or 'prometheus'")
        registry = get_metrics_registry()
        text = registry.render_prometheus(
            extra_numeric=flatten_numeric(payload, prefix="repro"))
        return 200, text

    def get_trace(self, job_id: str, fmt: Optional[str] = None) -> Tuple[int, dict]:
        """``/v1/trace/{job_id}``: the span tree of the job's flight.

        ``?format=chrome`` returns Chrome trace-event JSON instead (save it
        and load in ``chrome://tracing`` / Perfetto).
        """
        job = self._job(job_id)
        if job.trace_id is None:
            raise ApiError(404, f"job {job_id} has no trace "
                                "(tracing disabled at submission?)")
        spans = get_tracer().store.spans(job.trace_id)
        if not spans:
            raise ApiError(404, f"trace {job.trace_id} of job {job_id} has "
                                "no recorded spans (evicted or still running)")
        if fmt == "chrome":
            return 200, chrome_trace(spans)
        if fmt is not None and fmt != "tree":
            raise ApiError(400, f"unknown trace format {fmt!r}; "
                                "use 'tree' or 'chrome'")
        return 200, {
            "job_id": job.id,
            "trace_id": job.trace_id,
            "state": job.state.value,
            "span_count": len(spans),
            "phases": get_tracer().store.phase_totals(job.trace_id),
            "tree": span_tree(spans),
        }

    def get_strategies(self) -> Tuple[int, dict]:
        entries = []
        for spec in self.queue.service.registry:
            entries.append({
                "key": spec.key,
                "description": spec.description,
                "general_graphs": spec.general_graphs,
                "cost_aware": spec.cost_aware,
                "memory_aware": spec.memory_aware,
                "linear_only": spec.linear_only,
                "has_budget_knob": spec.has_budget_knob,
                "in_table1": spec.in_table1,
                "warm_start_capable": spec.warm_start_capable,
            })
        return 200, {"strategies": entries}

    def get_presets(self) -> Tuple[int, dict]:
        presets = []
        for key, model in EXPERIMENT_MODELS.items():
            presets.append({
                "key": key,
                "name": model.name,
                "ci_kwargs": {k: list(v) if isinstance(v, tuple) else v
                              for k, v in model.ci_kwargs.items()},
                "paper_kwargs": {k: list(v) if isinstance(v, tuple) else v
                                 for k, v in model.paper_kwargs.items()},
            })
        return 200, {"presets": presets, "scales": ["ci", "paper"],
                     "cost_models": sorted(_COST_MODELS)}


_JOB_PATH = re.compile(rf"^/{API_VERSION}/jobs/(?P<job_id>[0-9a-f]+)"
                       r"(?P<sub>/result|/cancel)?$")
_TRACE_PATH = re.compile(rf"^/{API_VERSION}/trace/(?P<job_id>[0-9a-f]+)$")
#: Collapses job ids out of paths for bounded-cardinality route labels.
_ROUTE_LABEL = re.compile(r"/[0-9a-f]{12,}")

_HTTP_REQUESTS = get_metrics_registry().counter(
    "repro_http_requests_total",
    "HTTP requests served by the solve daemon.",
    labelnames=("method", "route", "code"),
)


class _Handler(BaseHTTPRequestHandler):
    """Maps HTTP verbs/paths onto the :class:`_App` methods."""

    server_version = "repro-solve-server/1.0"
    protocol_version = "HTTP/1.1"
    # Socket timeout honored by BaseHTTPRequestHandler: a client that stalls
    # mid-request (or idles on a keep-alive connection) releases its handler
    # thread instead of pinning it forever on the long-lived daemon.
    timeout = 60

    # Set by SolveServer via the server instance.
    @property
    def app(self) -> _App:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # ------------------------------------------------------------------ #
    def _send(self, status: int, body,
              headers: Optional[dict] = None) -> None:
        # Routes return a dict (JSON) or a str (preformatted text body --
        # the Prometheus exposition).
        if isinstance(body, str):
            data = body.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = json.dumps(body).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(data)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        self._body_consumed = True
        if length <= 0:
            raise ApiError(400, "request body required")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ApiError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise ApiError(400, "JSON body must be an object")
        return payload

    def _dispatch(self, method: str) -> None:
        self._body_consumed = False
        path = self.path.partition("?")[0].rstrip("/") or "/"
        route = _ROUTE_LABEL.sub("/{id}", path)
        extra_headers: Optional[dict] = None
        try:
            with get_tracer().span("http-request", method=method,
                                   route=route) as span:
                try:
                    status, body = self._route(method)
                except ApiError as exc:
                    status, body = exc.status, dict({"error": exc.message},
                                                    **exc.extra)
                    extra_headers = exc.headers or None
                except Exception as exc:  # noqa: BLE001 - request isolation boundary
                    _log.error("unhandled error in %s %s: %s: %s",
                               method, path, type(exc).__name__, exc,
                               exc_info=True)
                    status, body = 500, {"error": f"{type(exc).__name__}: {exc}"}
                span.set_attribute("status", status)
            _HTTP_REQUESTS.inc(method=method, route=route, code=str(status))
            self._drain_body()
            self._send(status, body, extra_headers)
        except (TimeoutError, OSError) as exc:
            # Stalled or vanished client: the stream is unusable (a partial
            # body read would corrupt keep-alive framing) -- drop it.
            _log.warning("client connection dropped on %s %s: %s",
                         method, path, exc)
            self.close_connection = True

    def _drain_body(self) -> None:
        # HTTP/1.1 keep-alive: a request whose route errored before reading
        # the body would leave those bytes in rfile, where they would be
        # misparsed as the *next* request line on this connection.
        if getattr(self, "_body_consumed", True):
            return
        length = int(self.headers.get("Content-Length") or 0)
        while length > 0:
            chunk = self.rfile.read(min(length, 65536))
            if not chunk:
                break
            length -= len(chunk)

    def _route(self, method: str) -> Tuple[int, dict]:
        path, _, query = self.path.partition("?")
        path = path.rstrip("/") or "/"
        params = dict(pair.split("=", 1) for pair in query.split("&") if "=" in pair)
        app = self.app

        if method == "GET":
            if path == f"/{API_VERSION}/healthz":
                return app.get_healthz()
            if path == f"/{API_VERSION}/metrics":
                return app.get_metrics(params.get("format"))
            if path == f"/{API_VERSION}/strategies":
                return app.get_strategies()
            if path == f"/{API_VERSION}/presets":
                return app.get_presets()
            if path == f"/{API_VERSION}/jobs":
                return app.get_jobs(params.get("state"))
            match = _TRACE_PATH.match(path)
            if match:
                return app.get_trace(match.group("job_id"),
                                     params.get("format"))
            match = _JOB_PATH.match(path)
            if match and match.group("sub") in (None, "/result"):
                if match.group("sub") == "/result":
                    return app.get_result(match.group("job_id"))
                return app.get_job(match.group("job_id"))
        elif method == "POST":
            if path == f"/{API_VERSION}/solve":
                return app.post_solve(self._read_json())
            if path == f"/{API_VERSION}/sweep":
                return app.post_sweep(self._read_json())
            if path == f"/{API_VERSION}/execute":
                return app.post_execute(self._read_json())
            if path == f"/{API_VERSION}/pareto":
                return app.post_pareto(self._read_json())
            if path == f"/{API_VERSION}/lint":
                return app.post_lint(self._read_json())
            match = _JOB_PATH.match(path)
            if match and match.group("sub") == "/cancel":
                return app.cancel_job(match.group("job_id"))
        elif method == "DELETE":
            match = _JOB_PATH.match(path)
            if match and match.group("sub") is None:
                return app.cancel_job(match.group("job_id"))
        raise ApiError(404, f"no route for {method} {path}")

    def do_GET(self) -> None:  # noqa: N802
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


class SolveServer:
    """The solve daemon: a :class:`JobQueue` behind a threading HTTP server.

    Usage (programmatic; the ``repro serve`` CLI wraps the same class)::

        server = SolveServer(port=0)          # 0 = pick an ephemeral port
        server.start()
        print(server.url)                     # e.g. http://127.0.0.1:53217
        ...
        server.stop()

    Also usable as a context manager.  ``service``/``queue`` default to fresh
    instances; pass your own ``SolveService`` to share a plan cache with
    in-process callers.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT, *,
                 service: Optional[SolveService] = None,
                 queue: Optional[JobQueue] = None,
                 num_workers: Optional[int] = None,
                 backend: str = "thread",
                 max_queue_depth: Optional[int] = None,
                 default_deadline_s: Optional[float] = None,
                 verbose: bool = False,
                 tracing: bool = False) -> None:
        # Bridge finished spans into the per-phase latency histograms so the
        # Prometheus scrape has repro_phase_seconds whenever tracing is on.
        from ..obs import install_phase_histograms

        install_phase_histograms()
        if tracing:
            get_tracer().enable()
        self.queue = queue if queue is not None else JobQueue(
            service, num_workers=num_workers, backend=backend,
            max_queue_depth=max_queue_depth,
            default_deadline_s=default_deadline_s)
        self.app = _App(self.queue)
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.app = self.app  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._serving = False
        self._closed = False

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "SolveServer":
        """Start the worker pool and serve HTTP on a background thread."""
        self.queue.start()
        if self._thread is None:
            self._serving = True
            self._thread = threading.Thread(target=self._httpd.serve_forever,
                                            name="repro-serve-http", daemon=True)
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking variant used by ``repro serve`` (Ctrl-C to stop)."""
        self.queue.start()
        self._serving = True
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            pass
        finally:
            self._serving = False
            self.stop()

    def stop(self) -> None:
        """Stop accepting requests and shut the worker pool down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._serving:
            # shutdown() only returns once a serve_forever loop acknowledges;
            # calling it with no loop running would block forever.
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.queue.shutdown(wait=True, drain=False)

    def __enter__(self) -> "SolveServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def serve(host: str = "127.0.0.1", port: int = DEFAULT_PORT, *,
          service: Optional[SolveService] = None,
          num_workers: Optional[int] = None,
          backend: str = "thread",
          max_queue_depth: Optional[int] = None,
          default_deadline_s: Optional[float] = None,
          verbose: bool = False,
          tracing: bool = False) -> SolveServer:
    """Build and start a :class:`SolveServer` (background thread); returns it."""
    return SolveServer(host, port, service=service, num_workers=num_workers,
                       backend=backend, max_queue_depth=max_queue_depth,
                       default_deadline_s=default_deadline_s,
                       verbose=verbose, tracing=tracing).start()
