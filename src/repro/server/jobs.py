"""Async job queue: priority ordering, bounded workers, single-flighting.

This is the queueing half of the solve-as-a-service daemon.  An HTTP request
(or a programmatic caller) *submits* work and immediately gets back a
:class:`Job` handle; a bounded pool of worker threads drains the queue through
one shared :class:`~repro.service.solve.SolveService`; clients poll (or
:meth:`Job.wait`) for the ``queued -> running -> done/failed/cancelled``
lifecycle to settle and then fetch the result.

Design points, in the order they matter for a serving system:

**Single-flighting.**  Identical concurrent submissions -- same graph content
hash, strategy, budget and solver-visible options, i.e. exactly the plan
cache's key -- are collapsed into one *flight group* that runs the solver
once.  Every member job gets its own id and lifecycle and receives the shared
result when the flight lands; late joiners that arrive while the flight is
already running attach mid-air.  Combined with the
:class:`~repro.service.cache.PlanCache` (which serves *sequential* repeats),
this makes duplicate traffic -- the common case when many users train the
same architecture at the same budget -- cost one MILP solve total, not one
per request.

**Priority.**  The queue is a binary heap ordered by ``(priority, arrival)``:
lower ``priority`` values are served first, ties FIFO.  A follower joining an
existing flight inherits the flight's position (it does not re-sort the
heap).

**Cancellation.**  Cancelling a job settles *that* job immediately.  The
underlying solver invocation is only abandoned when every member of its
flight group is cancelled, and even then cooperatively -- via the service's
``should_cancel`` hook, polled before the solver starts.  A solver already
inside HiGHS runs to completion and populates the plan cache; the result is
simply not delivered to anyone.

**Bounded history.**  Terminal jobs are retained for status queries but
pruned oldest-first past ``max_history``, so a long-lived daemon does not
leak one ``Job`` per request forever.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import os
import threading
import time
import uuid
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..core.dfgraph import DFGraph
from ..obs.logging import get_logger
from ..obs.trace import get_tracer
from ..service import (
    PlanCacheKey,
    SolveCancelledError,
    SolveService,
    SolverOptions,
    SweepCell,
    graph_content_hash,
)
from .backends import (
    ExecuteWork,
    ParetoWork,
    RemoteSolveError,
    SolveWork,
    SweepWork,
    WorkerBackend,
    WorkerCrashError,
    make_backend,
)
from .metrics import LatencyWindow

__all__ = ["JobState", "Job", "JobQueue", "QueueFullError"]

_log = get_logger("server.jobs")


class JobState(str, Enum):
    """Lifecycle of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job can never leave.
TERMINAL_STATES = frozenset({JobState.DONE, JobState.FAILED, JobState.CANCELLED})


# Work descriptions live with the backends now (they are what a backend
# executes); the old private names stay as aliases for continuity.
_SolveWork = SolveWork
_SweepWork = SweepWork
_ExecuteWork = ExecuteWork
_ParetoWork = ParetoWork


class QueueFullError(RuntimeError):
    """Admission control rejected a submission: the queue is at its bounded
    depth.  Carries the shed contract: ``retry_after_s`` is the server's
    estimate of when capacity frees up (the HTTP layer turns it into a 503
    with a ``Retry-After`` header)."""

    def __init__(self, depth: int, limit: int, retry_after_s: float) -> None:
        super().__init__(
            f"queue full: {depth} flights queued (limit {limit}); "
            f"retry in ~{retry_after_s:.0f}s")
        self.depth = depth
        self.limit = limit
        self.retry_after_s = retry_after_s


class Job:
    """Handle for one submitted solve, sweep or execute.

    State transitions are owned by the :class:`JobQueue` (under its lock);
    callers observe ``state``/``result``/``error`` and may :meth:`wait` on
    the terminal event.  ``result`` is a
    :class:`~repro.core.schedule.ScheduledResult` for solve jobs, a list of
    them for sweep jobs and an
    :class:`~repro.execution.report.ExecutionReport` for execute jobs; treat
    it as immutable -- it may be shared with other jobs of the same flight
    group and with the plan cache.
    """

    def __init__(self, kind: str, description: str, priority: int,
                 flight_key: str, graph_hash: str) -> None:
        self.id = uuid.uuid4().hex[:12]
        self.kind = kind
        self.description = description
        self.priority = int(priority)
        self.flight_key = flight_key
        self.graph_hash = graph_hash
        self.state = JobState.QUEUED
        self.deduplicated = False
        self.result: object = None
        self.error: Optional[str] = None
        #: Structured failure payload (worker crash, deadline, remote
        #: exception): ``{"type": ..., "message": ..., ...}``; ``None`` for
        #: successful jobs and plain string-only errors.
        self.error_info: Optional[Dict[str, object]] = None
        self.submitted_at = time.time()
        #: Absolute wall-clock deadline; the job fails with a structured
        #: ``deadline-exceeded`` error if still queued or running past it.
        self.deadline_at: Optional[float] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Trace id of the flight this job rode (None when tracing is off);
        #: ``GET /v1/trace/{job_id}`` resolves the span tree through it.
        self.trace_id: Optional[str] = None
        #: Per-phase wall seconds aggregated from the trace when the flight
        #: lands (e.g. ``{"ilp-solve": 0.12, "decode": 0.001}``).
        self.phases: Optional[Dict[str, float]] = None
        self._terminal = threading.Event()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state; ``False`` on timeout."""
        return self._terminal.wait(timeout)

    def to_dict(self) -> dict:
        """JSON-safe status view (what ``GET /v1/jobs/{id}`` returns)."""
        return {
            "id": self.id,
            "kind": self.kind,
            "description": self.description,
            "state": self.state.value,
            "priority": self.priority,
            "deduplicated": self.deduplicated,
            "graph_hash": self.graph_hash,
            "error": self.error,
            "error_info": self.error_info,
            "deadline_at": self.deadline_at,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wait_s": (self.started_at - self.submitted_at
                       if self.started_at is not None else None),
            "run_s": (self.finished_at - self.started_at
                      if self.finished_at is not None and self.started_at is not None
                      else None),
            "trace_id": self.trace_id,
            "phases": self.phases,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Job({self.id}, {self.kind}, {self.state.value}, {self.description!r})"


class _FlightGroup:
    """All jobs sharing one solver invocation (the single-flight unit)."""

    def __init__(self, key: str, work) -> None:
        self.key = key
        self.work = work
        self.members: List[Job] = []
        self.running = False
        self.finished = False
        #: Trace carried from the submitting thread into the worker (the
        #: first submitter's request trace, or a fresh one when the submit
        #: happened outside any span).  All members share it.
        self.trace_id: Optional[str] = None
        self.trace_parent: Optional[int] = None
        self.submitted_perf = time.perf_counter()

    def live_members(self) -> List[Job]:
        return [j for j in self.members if j.state not in TERMINAL_STATES]


class JobQueue:
    """Priority job queue draining into a shared :class:`SolveService`.

    Parameters
    ----------
    service:
        The solve service all workers share (defaults to a fresh one with its
        own plan cache).  Sharing matters: it is what lets two *sequential*
        identical jobs answer from the cache.
    num_workers:
        Size of the worker pool.  Also the max number of solver invocations
        in flight at once; queued work beyond that waits in priority order.
    max_history:
        Retained terminal jobs.  Active jobs are never pruned.
    backend:
        Flight execution engine: ``"thread"`` (in-process, the default),
        ``"process"`` (ship solves to a spawn-based worker-process pool) or
        a ready :class:`~repro.server.backends.WorkerBackend` instance.
        With the process backend the queue still runs ``num_workers``
        harvesting threads, each blocking on one worker-process future, so
        concurrency is bounded identically either way.
    max_queue_depth:
        Admission control: maximum number of *flights* (distinct cells)
        allowed to wait in the queue.  Submissions beyond it raise
        :class:`QueueFullError` (the HTTP layer sheds them with 503 +
        ``Retry-After``).  Joiners of an existing flight are never shed --
        dedup'd work costs nothing.  ``None`` (default) disables shedding.
    default_deadline_s:
        Deadline applied to submissions that do not carry their own.
    """

    def __init__(self, service: Optional[SolveService] = None, *,
                 num_workers: Optional[int] = None,
                 max_history: int = 4096,
                 latency_window: int = 1024,
                 backend: Union[str, WorkerBackend] = "thread",
                 max_queue_depth: Optional[int] = None,
                 default_deadline_s: Optional[float] = None) -> None:
        self.service = service if service is not None else SolveService()
        self.num_workers = int(num_workers if num_workers is not None
                               else min(4, os.cpu_count() or 1))
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if isinstance(backend, str):
            backend = make_backend(backend, self.service,
                                   num_workers=self.num_workers)
        self.backend: WorkerBackend = backend
        if max_queue_depth is not None and int(max_queue_depth) < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None)")
        self.max_queue_depth = (None if max_queue_depth is None
                                else int(max_queue_depth))
        if default_deadline_s is not None and float(default_deadline_s) <= 0:
            raise ValueError("default_deadline_s must be positive (or None)")
        self.default_deadline_s = (None if default_deadline_s is None
                                   else float(default_deadline_s))
        self.max_history = int(max_history)
        self.latency = LatencyWindow(maxlen=latency_window)
        # Pareto traces are whole-frontier jobs (many solves each); tracking
        # them in the per-solve window would skew its quantiles, so they get
        # their own.
        self.pareto_latency = LatencyWindow(maxlen=latency_window)
        self.started_at = time.time()

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._heap: List[Tuple[int, int, _FlightGroup]] = []
        self._seq = itertools.count()
        self._jobs: "Dict[str, Job]" = {}
        self._flights: Dict[str, _FlightGroup] = {}
        self._workers: List[threading.Thread] = []
        self._shutdown = False
        self._counters = {"submitted": 0, "deduplicated": 0, "done": 0,
                          "failed": 0, "cancelled": 0, "shed": 0,
                          "expired": 0}

    # ------------------------------------------------------------------ #
    # Worker pool lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "JobQueue":
        """Spin up the backend and the worker pool (idempotent)."""
        self.backend.start()
        with self._cond:
            if self._workers:
                return self
            self._shutdown = False
            for i in range(self.num_workers):
                t = threading.Thread(target=self._worker_loop,
                                     name=f"repro-serve-{i}", daemon=True)
                t.start()
                self._workers.append(t)
        return self

    def shutdown(self, *, wait: bool = True, drain: bool = True) -> None:
        """Stop the pool.  ``drain=True`` finishes queued work first;
        ``drain=False`` cancels everything still queued."""
        with self._cond:
            self._shutdown = True
            if not drain:
                for _, _, flight in self._heap:
                    for job in flight.live_members():
                        self._settle_job_locked(job, JobState.CANCELLED,
                                                error="queue shut down")
                    # Retire the flight too: were it left active in _flights,
                    # a submission after a restart would dedup onto it and
                    # wait forever (its heap entry is gone).
                    flight.finished = True
                    if self._flights.get(flight.key) is flight:
                        del self._flights[flight.key]
                self._heap.clear()
            self._cond.notify_all()
        if wait:
            for t in self._workers:
                t.join()
        self._workers = []
        self.backend.shutdown(wait=wait)

    def __enter__(self) -> "JobQueue":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown(wait=True, drain=False)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit_solve(self, graph: DFGraph, strategy: str,
                     budget: Optional[float] = None,
                     options: Optional[SolverOptions] = None, *,
                     priority: int = 0,
                     deadline_s: Optional[float] = None,
                     description: Optional[str] = None) -> Job:
        """Enqueue one (graph, strategy, budget, options) solve.

        Unknown strategies raise ``KeyError`` immediately (submission time),
        not at execution time.  The flight key is exactly the plan cache key,
        so two submissions single-flight iff they would share a cache entry.
        """
        spec = self.service.registry.get(strategy)
        options = options if options is not None else self.service.default_options
        graph_hash = graph_content_hash(graph)
        key = "solve/" + PlanCacheKey.build(graph_hash, spec.key, budget,
                                            options.cache_token(spec.option_map))
        budget_txt = "none" if budget is None else f"{budget:g}"
        description = description or (
            f"solve {graph.name} strategy={spec.key} budget={budget_txt}")
        work = SolveWork(graph, spec.key, budget, options)
        return self._submit("solve", key, work, priority, description,
                            graph_hash, deadline_s)

    def submit_sweep(self, graph: DFGraph,
                     cells: Iterable[Union[SweepCell, Tuple[str, Optional[float]]]],
                     options: Optional[SolverOptions] = None, *,
                     priority: int = 0,
                     deadline_s: Optional[float] = None,
                     description: Optional[str] = None) -> Job:
        """Enqueue a sweep over many (strategy, budget) cells as one job.

        The whole sweep is one queue entry (its internal cells already fan
        out over the service's own thread pool).  Identical concurrent sweep
        submissions single-flight just like solves.
        """
        normalized: List[SweepCell] = []
        for cell in cells:
            if not isinstance(cell, SweepCell):
                strategy, budget = cell
                cell = SweepCell(strategy=strategy, budget=budget)
            self.service.registry.get(cell.strategy)  # fail fast on unknown keys
            normalized.append(cell)
        if not normalized:
            raise ValueError("sweep needs at least one cell")
        options = options if options is not None else self.service.default_options
        graph_hash = graph_content_hash(graph)
        digest = hashlib.sha256()
        digest.update(graph_hash.encode())
        for cell in normalized:
            spec = self.service.registry.get(cell.strategy)
            cell_options = cell.options if cell.options is not None else options
            digest.update(repr((cell.strategy,
                                None if cell.budget is None else float(cell.budget),
                                cell_options.cache_token(spec.option_map))).encode())
        key = "sweep/" + digest.hexdigest()
        description = description or (
            f"sweep {graph.name} cells={len(normalized)}")
        work = SweepWork(graph, tuple(normalized), options)
        return self._submit("sweep", key, work, priority, description,
                            graph_hash, deadline_s)

    def submit_execute(self, graph: DFGraph, strategy: str,
                       budget: Optional[float] = None,
                       options: Optional[SolverOptions] = None, *,
                       seed: int = 0,
                       priority: int = 0,
                       deadline_s: Optional[float] = None,
                       description: Optional[str] = None) -> Job:
        """Enqueue a solve-and-execute job (NumPy execution + cross-check).

        The flight key extends the solve key with the binding ``seed``:
        identical concurrent execute requests ride one solver invocation and
        one tensor execution; an execute and a plain solve of the same cell
        still share the *plan cache* (the execute binds and runs, the solve
        answers from cache or vice versa) without single-flighting.
        """
        spec = self.service.registry.get(strategy)
        options = options if options is not None else self.service.default_options
        graph_hash = graph_content_hash(graph)
        key = ("execute/" + PlanCacheKey.build(graph_hash, spec.key, budget,
                                               options.cache_token(spec.option_map))
               + f"/seed={int(seed)}")
        budget_txt = "none" if budget is None else f"{budget:g}"
        description = description or (
            f"execute {graph.name} strategy={spec.key} budget={budget_txt} seed={seed}")
        work = ExecuteWork(graph, spec.key, budget, options, int(seed))
        return self._submit("execute", key, work, priority, description,
                            graph_hash, deadline_s)

    def submit_pareto(self, graph: DFGraph, strategy: str = "checkmate_ilp", *,
                      low: Optional[float] = None,
                      high: Optional[float] = None,
                      resolution: Optional[float] = None,
                      options: Optional[SolverOptions] = None,
                      priority: int = 0,
                      deadline_s: Optional[float] = None,
                      description: Optional[str] = None) -> Job:
        """Enqueue a bisection Pareto-frontier trace as one job.

        Like a sweep, the whole trace is one queue entry (its probes run
        through the shared service, warm-seeding each other via the plan
        cache's neighbor index).  Identical concurrent traces single-flight.
        """
        spec = self.service.registry.get(strategy)
        if not spec.has_budget_knob:
            raise ValueError(
                f"strategy {spec.key!r} has no budget knob to trace")
        if resolution is not None and float(resolution) <= 0:
            raise ValueError("resolution must be positive")
        options = options if options is not None else self.service.default_options
        graph_hash = graph_content_hash(graph)
        digest = hashlib.sha256()
        digest.update(graph_hash.encode())
        digest.update(repr((spec.key,
                            None if low is None else float(low),
                            None if high is None else float(high),
                            None if resolution is None else float(resolution),
                            options.cache_token(spec.option_map))).encode())
        key = "pareto/" + digest.hexdigest()
        description = description or (
            f"pareto {graph.name} strategy={spec.key}")
        work = ParetoWork(graph, spec.key, low, high, resolution, options)
        return self._submit("pareto", key, work, priority, description,
                            graph_hash, deadline_s)

    def _submit(self, kind: str, key: str, work, priority: int,
                description: str, graph_hash: str,
                deadline_s: Optional[float] = None) -> Job:
        job = Job(kind, description, priority, key, graph_hash)
        deadline_s = (deadline_s if deadline_s is not None
                      else self.default_deadline_s)
        if deadline_s is not None:
            if float(deadline_s) <= 0:
                raise ValueError("deadline_s must be positive")
            job.deadline_at = job.submitted_at + float(deadline_s)
        tracer = get_tracer()
        ctx = tracer.current_context() if tracer.enabled else None
        with self._cond:
            if self._shutdown:
                raise RuntimeError("job queue is shut down")
            self._counters["submitted"] += 1
            flight = self._flights.get(key)
            if ((flight is None or flight.finished)
                    and self.max_queue_depth is not None
                    and len(self._heap) >= self.max_queue_depth):
                # Admission control: only *new* flights are shed (a joiner
                # rides an already-admitted solver invocation for free).
                self._counters["shed"] += 1
                raise QueueFullError(len(self._heap), self.max_queue_depth,
                                     self._retry_after_locked())
            if flight is not None and not flight.finished:
                # Single-flight: ride the existing solver invocation.  The
                # follower inherits the flight's trace -- one execution, one
                # trace, shared by every member job.
                job.deduplicated = True
                self._counters["deduplicated"] += 1
                flight.members.append(job)
                if flight.running:
                    job.state = JobState.RUNNING
                    job.started_at = time.time()
            else:
                flight = _FlightGroup(key, work)
                if tracer.enabled:
                    # Propagate the submitter's request trace into the worker;
                    # a programmatic submit outside any span opens a new trace
                    # so the job is traceable either way.
                    if ctx is not None:
                        flight.trace_id, flight.trace_parent = ctx
                    else:
                        flight.trace_id = tracer.new_trace_id()
                flight.members.append(job)
                self._flights[key] = flight
                heapq.heappush(self._heap, (int(priority), next(self._seq), flight))
                self._cond.notify()
            job.trace_id = flight.trace_id
            self._jobs[job.id] = job
            self._prune_locked()
        return job

    def _retry_after_locked(self) -> float:
        """Estimate seconds until a queue slot frees: depth drains at about
        one flight per worker per median solve latency."""
        snapshot = self.latency.snapshot()
        p50 = snapshot.get("p50_s") or 1.0
        estimate = p50 * (len(self._heap) + 1) / max(self.num_workers, 1)
        return min(max(estimate, 1.0), 30.0)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def job(self, job_id: str) -> Job:
        with self._lock:
            if job_id not in self._jobs:
                raise KeyError(f"unknown job {job_id!r}")
            return self._jobs[job_id]

    def jobs(self, state: Optional[JobState] = None) -> List[Job]:
        """All retained jobs (optionally filtered), oldest first."""
        with self._lock:
            out = [j for j in self._jobs.values()
                   if state is None or j.state == state]
        return sorted(out, key=lambda j: j.submitted_at)

    def cancel(self, job_id: str) -> Job:
        """Cancel one job; a no-op (returning the job) if already terminal.

        The shared solver invocation is abandoned only if *every* member of
        the flight is cancelled -- see the module docstring.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            if job.state not in TERMINAL_STATES:
                self._settle_job_locked(job, JobState.CANCELLED,
                                        error="cancelled by client")
            return job

    def metrics(self) -> dict:
        """The ``/v1/metrics`` payload: queue, latency and service/cache stats."""
        with self._lock:
            by_state: Dict[str, int] = {s.value: 0 for s in JobState}
            for j in self._jobs.values():
                by_state[j.state.value] += 1
            counters = dict(self._counters)
            workers = len(self._workers)
        return {
            "uptime_s": time.time() - self.started_at,
            "workers": workers,
            "queue_depth": by_state[JobState.QUEUED.value],
            "running": by_state[JobState.RUNNING.value],
            "max_queue_depth": self.max_queue_depth,
            "jobs_by_state": by_state,
            "jobs": counters,
            "solve_latency": self.latency.snapshot(),
            "pareto_latency": self.pareto_latency.snapshot(),
            "service": self.service.statistics(),
            "backend": self.backend.stats(),
        }

    # ------------------------------------------------------------------ #
    # Worker internals
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._heap and not self._shutdown:
                    self._cond.wait()
                if not self._heap:
                    return  # shutdown and fully drained
                _, _, flight = heapq.heappop(self._heap)
                # Deadline check at pop: work that waited past its deadline
                # fails *before* costing solver time (the load-shedding
                # contract -- a late answer nobody waits for is wasted work).
                now = time.time()
                for job in flight.live_members():
                    if job.deadline_at is not None and now >= job.deadline_at:
                        self._expire_job_locked(job, now)
                live = flight.live_members()
                if not live:
                    # Everyone cancelled/expired while queued: never run.
                    flight.finished = True
                    if self._flights.get(flight.key) is flight:
                        del self._flights[flight.key]
                    continue
                flight.running = True
                now = time.time()
                for job in live:
                    job.state = JobState.RUNNING
                    job.started_at = now
            tracer = get_tracer()
            if flight.trace_id is not None:
                tracer.record_span("queue-wait", flight.trace_id,
                                   flight.submitted_perf, time.perf_counter(),
                                   parent_id=flight.trace_parent)
            t_start = time.monotonic()
            try:
                result = self._run_flight(tracer, flight)
            except SolveCancelledError as exc:
                _log.info("job flight cancelled", extra={
                    "flight_key": flight.key, "trace_id": flight.trace_id,
                    "jobs": [j.id for j in flight.members]})
                self._finish_flight(flight, JobState.CANCELLED, error=str(exc))
            except (WorkerCrashError, RemoteSolveError) as exc:
                _log.error("job flight failed in worker: %s", exc, extra={
                    "flight_key": flight.key, "trace_id": flight.trace_id,
                    "jobs": [j.id for j in flight.members]})
                self._finish_flight(flight, JobState.FAILED, error=str(exc),
                                    error_info=exc.info)
            except Exception as exc:  # noqa: BLE001 - job isolation boundary
                _log.error("job flight failed: %s: %s",
                           type(exc).__name__, exc, exc_info=True, extra={
                               "flight_key": flight.key,
                               "trace_id": flight.trace_id,
                               "jobs": [j.id for j in flight.members]})
                self._finish_flight(flight, JobState.FAILED,
                                    error=f"{type(exc).__name__}: {exc}")
            else:
                window = (self.pareto_latency
                          if isinstance(flight.work, ParetoWork) else self.latency)
                window.record(time.monotonic() - t_start)
                self._finish_flight(flight, JobState.DONE, result=result)

    def _run_flight(self, tracer, flight: _FlightGroup):
        """Execute one flight inside its propagated trace context."""
        if flight.trace_id is None:
            return self._execute(flight)
        with tracer.context(flight.trace_id, flight.trace_parent):
            with tracer.span("job-run", kind=flight.members[0].kind,
                             flight_key=flight.key,
                             backend=self.backend.name):
                return self._execute(flight)

    def _execute(self, flight: _FlightGroup):
        def abandoned() -> bool:
            # Polled by the backend while the flight runs.  Expire members
            # whose deadline passed mid-run before taking the verdict: a
            # flight every live member of which is past deadline (or
            # cancelled) has nobody left to deliver to.
            now = time.time()
            with self._cond:
                for job in flight.members:
                    if (job.state is JobState.RUNNING
                            and job.deadline_at is not None
                            and now >= job.deadline_at):
                        self._expire_job_locked(job, now)
                return not any(j.state == JobState.RUNNING
                               for j in flight.members)

        return self.backend.run(flight.work, abandoned)

    def _expire_job_locked(self, job: Job, now: float) -> None:
        waited = now - job.submitted_at
        job.error_info = {
            "type": "deadline-exceeded",
            "deadline_at": job.deadline_at,
            "waited_s": round(waited, 6),
        }
        self._counters["expired"] += 1
        self._settle_job_locked(job, JobState.FAILED,
                                error=f"deadline exceeded after "
                                      f"{waited:.3f}s")

    def _finish_flight(self, flight: _FlightGroup, state: JobState, *,
                       result=None, error: Optional[str] = None,
                       error_info: Optional[dict] = None) -> None:
        phases: Optional[Dict[str, float]] = None
        if flight.trace_id is not None:
            totals = get_tracer().store.phase_totals(flight.trace_id)
            phases = {k: round(v, 6) for k, v in totals.items()} or None
        with self._cond:
            flight.finished = True
            if self._flights.get(flight.key) is flight:
                del self._flights[flight.key]
            live = [job for job in flight.members
                    if job.state not in TERMINAL_STATES]
            if state is JobState.CANCELLED and live and not self._shutdown:
                # The abandonment verdict fired when *every* member was
                # cancelled, so anyone still live joined after it -- an
                # innocent new submission that must not inherit the
                # cancellation.  Re-fly them instead of settling.
                requeued = _FlightGroup(flight.key, flight.work)
                requeued.trace_id = flight.trace_id
                requeued.trace_parent = flight.trace_parent
                requeued.members.extend(live)
                for job in live:
                    job.state = JobState.QUEUED
                    job.started_at = None
                self._flights[flight.key] = requeued
                heapq.heappush(self._heap, (min(j.priority for j in live),
                                            next(self._seq), requeued))
                self._cond.notify()
                self._prune_locked()
                return
            for job in live:
                job.result = result
                job.phases = phases
                if error_info is not None:
                    job.error_info = dict(error_info)
                self._settle_job_locked(job, state, error=error)
            self._prune_locked()

    def _settle_job_locked(self, job: Job, state: JobState,
                           error: Optional[str] = None) -> None:
        job.state = state
        job.error = error
        job.finished_at = time.time()
        self._counters[state.value] += 1
        job._terminal.set()

    def _prune_locked(self) -> None:
        if len(self._jobs) <= self.max_history:
            return
        removable = [j.id for j in sorted(self._jobs.values(),
                                          key=lambda j: j.submitted_at)
                     if j.state in TERMINAL_STATES]
        excess = len(self._jobs) - self.max_history
        for job_id in removable[:excess]:
            del self._jobs[job_id]
