"""Thin stdlib client for the solve daemon's JSON API.

Used by the ``repro`` CLI, the end-to-end tests and
``examples/serve_and_submit.py``; also the reference for how to talk to the
server from any other HTTP client (every method maps 1:1 onto an endpoint).

Results come back as plain wire dicts (see
:func:`repro.utils.serialization.result_to_wire`); callers that hold the
original :class:`~repro.core.dfgraph.DFGraph` can re-materialize a full
:class:`~repro.core.schedule.ScheduledResult` with
:func:`~repro.utils.serialization.result_from_wire`.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Iterable, List, Optional, Tuple, Union

from ..core.dfgraph import DFGraph
from ..utils.serialization import graph_to_wire

__all__ = ["ServeClient", "ServeAPIError"]


class ServeAPIError(RuntimeError):
    """A non-2xx response from the server, carrying its status and message.

    ``retry_after`` is the parsed ``Retry-After`` header in seconds (503
    load shedding), or ``None`` when the server did not send one.
    """

    def __init__(self, status: int, message: str,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after


#: Statuses worth retrying: 503 is the daemon's admission-control shed.
_RETRY_STATUSES = frozenset({503})


class ServeClient:
    """Client for one solve server, e.g. ``ServeClient("http://127.0.0.1:8765")``.

    Shed requests (503 + ``Retry-After``) are retried up to ``max_retries``
    times with jittered exponential backoff; the server's ``Retry-After``
    hint, when present, overrides the computed backoff.  Jitter matters:
    the shed responses of an overloaded daemon arrive nearly simultaneously
    at every client, and un-jittered retries would come back as the same
    thundering herd that caused the shed.  Set ``max_retries=0`` to surface
    every 503 immediately.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0,
                 max_retries: int = 2, backoff_s: float = 0.25,
                 backoff_cap_s: float = 8.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self._rng = random.Random()

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> dict:
        return json.loads(self._request_raw(method, path, payload))

    def _request_raw(self, method: str, path: str,
                     payload: Optional[dict] = None) -> str:
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload)
            except ServeAPIError as exc:
                if (exc.status not in _RETRY_STATUSES
                        or attempt >= self.max_retries):
                    raise
                self._sleep(self._retry_delay(attempt, exc.retry_after))
                attempt += 1

    def _retry_delay(self, attempt: int, retry_after: Optional[float]) -> float:
        """Full-jitter exponential backoff, bounded by the server's hint."""
        cap = min(self.backoff_cap_s, self.backoff_s * (2 ** attempt))
        delay = self._rng.uniform(cap / 2, cap)
        if retry_after is not None:
            # The server knows its own drain rate: wait at least that long
            # (plus our jitter fraction so herds still spread out).
            delay = max(delay, float(retry_after) * self._rng.uniform(1.0, 1.25))
        return delay

    @staticmethod
    def _sleep(delay: float) -> None:  # patchable in tests
        time.sleep(delay)

    def _request_once(self, method: str, path: str,
                      payload: Optional[dict] = None) -> str:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers,
                                         method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error", "")
            except (ValueError, OSError):
                message = exc.reason
            retry_after = None
            raw = exc.headers.get("Retry-After") if exc.headers else None
            if raw is not None:
                try:
                    retry_after = float(raw)
                except ValueError:
                    retry_after = None
            raise ServeAPIError(exc.code, str(message), retry_after) from None
        except urllib.error.URLError as exc:
            raise ServeAPIError(0, f"cannot reach {url}: {exc.reason}") from None

    # ------------------------------------------------------------------ #
    # Operational endpoints
    # ------------------------------------------------------------------ #
    def healthz(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def metrics_prometheus(self) -> str:
        """``GET /v1/metrics?format=prometheus``: the text exposition body."""
        return self._request_raw("GET", "/v1/metrics?format=prometheus")

    def trace(self, job_id: str, fmt: Optional[str] = None) -> dict:
        """``GET /v1/trace/{job_id}``: span tree (or Chrome events with
        ``fmt="chrome"``) for a settled job, while its trace is still in the
        server's bounded trace store."""
        suffix = f"?format={fmt}" if fmt else ""
        return self._request("GET", f"/v1/trace/{job_id}{suffix}")

    def strategies(self) -> List[dict]:
        return self._request("GET", "/v1/strategies")["strategies"]

    def presets(self) -> dict:
        return self._request("GET", "/v1/presets")

    # ------------------------------------------------------------------ #
    # Jobs
    # ------------------------------------------------------------------ #
    def submit_solve(self, *, strategy: str,
                     graph: Optional[DFGraph] = None,
                     preset: Optional[str] = None,
                     scale: str = "ci",
                     batch_size: Optional[int] = None,
                     cost_model: Optional[str] = None,
                     budget: Optional[float] = None,
                     options: Optional[dict] = None,
                     priority: int = 0,
                     deadline_s: Optional[float] = None) -> dict:
        """``POST /v1/solve``: returns the job handle dict (id, state, urls)."""
        payload = self._graph_payload(graph, preset, scale, batch_size, cost_model)
        payload.update({"strategy": strategy, "budget": budget,
                        "priority": priority})
        if options:
            payload["options"] = options
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        return self._request("POST", "/v1/solve", payload)

    def submit_execute(self, *, strategy: str,
                       graph: Optional[DFGraph] = None,
                       preset: Optional[str] = None,
                       scale: str = "ci",
                       batch_size: Optional[int] = None,
                       cost_model: Optional[str] = None,
                       budget: Optional[float] = None,
                       options: Optional[dict] = None,
                       seed: int = 0,
                       priority: int = 0,
                       deadline_s: Optional[float] = None) -> dict:
        """``POST /v1/execute``: solve + run over NumPy tensors; job handle dict."""
        payload = self._graph_payload(graph, preset, scale, batch_size, cost_model)
        payload.update({"strategy": strategy, "budget": budget,
                        "seed": seed, "priority": priority})
        if options:
            payload["options"] = options
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        return self._request("POST", "/v1/execute", payload)

    def submit_sweep(self, *,
                     graph: Optional[DFGraph] = None,
                     preset: Optional[str] = None,
                     scale: str = "ci",
                     batch_size: Optional[int] = None,
                     cost_model: Optional[str] = None,
                     strategies: Optional[Iterable[str]] = None,
                     budgets: Optional[Iterable[Optional[float]]] = None,
                     cells: Optional[Iterable[Union[dict, Tuple[str, Optional[float]]]]] = None,
                     options: Optional[dict] = None,
                     priority: int = 0,
                     deadline_s: Optional[float] = None) -> dict:
        """``POST /v1/sweep``: grid (strategies x budgets) or explicit cells."""
        payload = self._graph_payload(graph, preset, scale, batch_size, cost_model)
        if cells is not None:
            payload["cells"] = [
                cell if isinstance(cell, dict)
                else {"strategy": cell[0], "budget": cell[1]}
                for cell in cells
            ]
        else:
            payload["strategies"] = list(strategies or [])
            if budgets is not None:
                payload["budgets"] = list(budgets)
        payload["priority"] = priority
        if options:
            payload["options"] = options
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        return self._request("POST", "/v1/sweep", payload)

    def submit_pareto(self, *, strategy: str = "checkmate_ilp",
                      graph: Optional[DFGraph] = None,
                      preset: Optional[str] = None,
                      scale: str = "ci",
                      batch_size: Optional[int] = None,
                      cost_model: Optional[str] = None,
                      low: Optional[float] = None,
                      high: Optional[float] = None,
                      resolution: Optional[float] = None,
                      options: Optional[dict] = None,
                      priority: int = 0,
                      deadline_s: Optional[float] = None) -> dict:
        """``POST /v1/pareto``: bisection frontier trace; job handle dict."""
        payload = self._graph_payload(graph, preset, scale, batch_size, cost_model)
        payload.update({"strategy": strategy, "priority": priority})
        if low is not None:
            payload["low"] = low
        if high is not None:
            payload["high"] = high
        if resolution is not None:
            payload["resolution"] = resolution
        if options:
            payload["options"] = options
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        return self._request("POST", "/v1/pareto", payload)

    def lint(self, *, graph: Optional[DFGraph] = None,
             preset: Optional[str] = None,
             scale: str = "ci",
             batch_size: Optional[int] = None,
             cost_model: Optional[str] = None,
             budget: Optional[float] = None) -> dict:
        """``POST /v1/lint``: structured graph diagnostics (synchronous)."""
        payload = self._graph_payload(graph, preset, scale, batch_size, cost_model)
        if budget is not None:
            payload["budget"] = budget
        return self._request("POST", "/v1/lint", payload)

    @staticmethod
    def _graph_payload(graph, preset, scale, batch_size, cost_model) -> dict:
        if (graph is None) == (preset is None):
            raise ValueError("pass exactly one of graph= or preset=")
        if graph is not None:
            return {"graph": graph_to_wire(graph)}
        payload: dict = {"preset": preset, "scale": scale}
        if batch_size is not None:
            payload["batch_size"] = batch_size
        if cost_model is not None:
            payload["cost_model"] = cost_model
        return payload

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self, state: Optional[str] = None) -> List[dict]:
        suffix = f"?state={state}" if state else ""
        return self._request("GET", f"/v1/jobs{suffix}")["jobs"]

    def result(self, job_id: str) -> dict:
        """The raw result payload; raises :class:`ServeAPIError` (409) until done."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def wait(self, job_id: str, *, timeout: float = 300.0,
             poll_interval: float = 0.1) -> dict:
        """Poll until the job settles; returns its final status dict.

        Raises :class:`TimeoutError` if the job is still queued/running when
        ``timeout`` elapses (the job itself is left untouched).
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["state"] not in ("queued", "running"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout:g}s")
            time.sleep(poll_interval)
