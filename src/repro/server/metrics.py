"""Serving metrics: counters and a bounded latency window with quantiles.

The daemon's ``/v1/metrics`` endpoint reports p50/p95/p99 solve latency.
Keeping every latency forever would grow without bound on a long-lived
server, so :class:`LatencyWindow` keeps a sliding window of the most recent
``maxlen`` observations -- the standard trade-off for operational
percentiles (they describe *recent* behaviour, which is what an operator
watching a dashboard wants).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, List, Optional

__all__ = ["LatencyWindow"]


def _nearest_rank(ordered: List[float], q: float) -> Optional[float]:
    """Nearest-rank quantile of an already-sorted sample list."""
    if not ordered:
        return None
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


class LatencyWindow:
    """Thread-safe sliding window of durations (seconds) with quantiles."""

    def __init__(self, maxlen: int = 1024) -> None:
        self._samples: "deque[float]" = deque(maxlen=maxlen)
        self._count = 0
        self._total = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(float(seconds))
            self._count += 1
            self._total += float(seconds)

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile over the current window (``None`` when empty)."""
        if not (0.0 <= q <= 1.0):
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            ordered = sorted(self._samples)
        return _nearest_rank(ordered, q)

    def snapshot(self) -> Dict[str, object]:
        """Counters plus p50/p95/p99 in one consistent view."""
        with self._lock:
            ordered = sorted(self._samples)
            count, total = self._count, self._total
        return {
            "count": count,
            "total_s": total,
            "window": len(ordered),
            "p50_s": _nearest_rank(ordered, 0.50),
            "p95_s": _nearest_rank(ordered, 0.95),
            "p99_s": _nearest_rank(ordered, 0.99),
        }
