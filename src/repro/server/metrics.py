"""Serving metrics: counters and a bounded latency window with quantiles.

The daemon's ``/v1/metrics`` endpoint reports p50/p95 solve latency.  Keeping
every latency forever would grow without bound on a long-lived server, so
:class:`LatencyWindow` keeps a sliding window of the most recent ``maxlen``
observations -- the standard trade-off for operational percentiles (they
describe *recent* behaviour, which is what an operator watching a dashboard
wants).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Optional

__all__ = ["LatencyWindow"]


class LatencyWindow:
    """Thread-safe sliding window of durations (seconds) with quantiles."""

    def __init__(self, maxlen: int = 1024) -> None:
        self._samples: "deque[float]" = deque(maxlen=maxlen)
        self._count = 0
        self._total = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(float(seconds))
            self._count += 1
            self._total += float(seconds)

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile over the current window (``None`` when empty)."""
        if not (0.0 <= q <= 1.0):
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if not self._samples:
                return None
            ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> Dict[str, object]:
        """Counters plus p50/p95 in one consistent view."""
        with self._lock:
            ordered = sorted(self._samples)
            count, total = self._count, self._total

        def q(p: float) -> Optional[float]:
            if not ordered:
                return None
            return ordered[min(len(ordered) - 1, max(0, round(p * (len(ordered) - 1))))]

        return {
            "count": count,
            "total_s": total,
            "window": len(ordered),
            "p50_s": q(0.50),
            "p95_s": q(0.95),
        }
