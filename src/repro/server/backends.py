"""Pluggable worker backends for the solve daemon's job queue.

The :class:`~repro.server.jobs.JobQueue` owns queueing policy -- priority
order, single-flighting, admission control, deadlines -- and delegates the
actual execution of one flight to a :class:`WorkerBackend`:

* :class:`ThreadBackend` runs the flight synchronously on the queue's worker
  thread through the shared in-process :class:`SolveService`.  This is the
  original daemon behavior: cheapest possible dispatch, but every solve in
  the process contends on one GIL for its Python-side work (graph hashing,
  formulation compile, schedule decode, plan generation, JSON).
* :class:`ProcessBackend` ships solver invocations to a pool of long-lived
  worker *processes* over the wire formats in
  :mod:`repro.utils.serialization` (graph/options out, result back), so
  solves scale across cores.  Each worker process rebuilds its own
  :class:`SolveService` in ``_worker_init``; a shared on-disk plan-cache
  directory makes any worker's solve a disk hit for all the others (and for
  the parent).  Queue-level single-flighting still holds: duplicate
  submissions collapse into one flight *before* the backend sees them, so
  the pool receives one task per distinct cell no matter how many processes
  drain it.

Crash containment (the health/reap path): a worker that dies mid-task --
OOM-killed, segfaulted native code -- surfaces as ``BrokenProcessPool`` on
the harvesting thread.  The backend converts that into a structured
:class:`WorkerCrashError` (the queue marks the flight's jobs ``failed`` with
the payload) and rebuilds the pool under a lock, so one crash costs one
flight, never the daemon.  Worker exceptions never travel as live exception
objects: ``_run_task`` catches everything in the child and returns a plain
``{"ok": False, "error": {...}}`` dict, so an unpicklable exception type
cannot poison the result channel.

Tracing: workers record their solve spans into their own in-process tracer,
ship the raw span rows back with the result, and the parent grafts them --
ids remapped, clock rebased via a shared wall-clock anchor -- under the
flight's ``job-run`` span, so ``GET /v1/trace/{job_id}`` shows one tree
whether the solve ran in-process or three processes away.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..core.dfgraph import DFGraph
from ..obs.logging import get_logger
from ..obs.trace import get_tracer
from ..service import SolveCancelledError, SolveService, SolverOptions, SweepCell
from ..utils.serialization import (
    graph_from_wire,
    graph_to_wire,
    options_from_wire,
    options_to_wire,
    result_from_wire,
    result_to_wire,
)

__all__ = [
    "SolveWork",
    "SweepWork",
    "ExecuteWork",
    "ParetoWork",
    "WorkerBackend",
    "WorkerCrashError",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
]

_log = get_logger("server.backends")


# --------------------------------------------------------------------------- #
# Work descriptions (what one flight executes)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SolveWork:
    graph: DFGraph
    strategy: str
    budget: Optional[float]
    options: Optional[SolverOptions]


@dataclass(frozen=True)
class SweepWork:
    graph: DFGraph
    cells: Tuple[SweepCell, ...]
    options: Optional[SolverOptions]


@dataclass(frozen=True)
class ExecuteWork:
    graph: DFGraph
    strategy: str
    budget: Optional[float]
    options: Optional[SolverOptions]
    seed: int


@dataclass(frozen=True)
class ParetoWork:
    graph: DFGraph
    strategy: str
    low: Optional[float]
    high: Optional[float]
    resolution: Optional[float]
    options: Optional[SolverOptions]


Work = Union[SolveWork, SweepWork, ExecuteWork, ParetoWork]


class WorkerCrashError(RuntimeError):
    """A worker process died mid-flight; ``info`` is the structured payload
    the queue attaches to the failed jobs."""

    def __init__(self, message: str, info: Optional[dict] = None) -> None:
        super().__init__(message)
        self.info = dict(info or {}, type="worker-crash", message=message)


class WorkerBackend:
    """Protocol for flight execution engines (duck-typed; subclassing is
    optional).

    ``run`` executes one flight's work synchronously from the calling queue
    worker thread and either returns the result object or raises
    (:class:`SolveCancelledError` for abandonment, anything else fails the
    flight).  ``should_abandon`` is the queue's cooperative hook: it returns
    ``True`` once no live job wants the result anymore (all cancelled or past
    their deadline), and backends poll it to stop waiting.
    """

    name = "abstract"

    def start(self) -> "WorkerBackend":
        return self

    def shutdown(self, *, wait: bool = True) -> None:
        return None

    def run(self, work: Work, should_abandon: Callable[[], bool]):
        raise NotImplementedError

    def stats(self) -> dict:
        return {"name": self.name}


class ThreadBackend(WorkerBackend):
    """Run flights in-process on the queue's own worker threads."""

    name = "thread"

    def __init__(self, service: SolveService) -> None:
        self.service = service

    def run(self, work: Work, should_abandon: Callable[[], bool]):
        if isinstance(work, SolveWork):
            return self.service.solve(work.graph, work.strategy, work.budget,
                                      work.options, should_cancel=should_abandon)
        if isinstance(work, ExecuteWork):
            return self.service.execute(work.graph, work.strategy, work.budget,
                                        work.options, seed=work.seed,
                                        should_cancel=should_abandon)
        if isinstance(work, ParetoWork):
            return self.service.pareto(work.graph, work.strategy,
                                       low=work.low, high=work.high,
                                       resolution=work.resolution,
                                       options=work.options,
                                       should_cancel=should_abandon)
        return self.service.sweep(work.graph, work.cells, options=work.options,
                                  should_cancel=should_abandon)

    def stats(self) -> dict:
        return {"name": self.name}


# --------------------------------------------------------------------------- #
# Worker-process side (module-level so spawn can pickle them by reference)
# --------------------------------------------------------------------------- #
_WORKER_SERVICE: Optional[SolveService] = None


def _worker_init(cache_dir: Optional[str], cache_entries: int) -> None:
    """Build this worker process's own :class:`SolveService`.

    ``cache_dir`` is the *shared* disk tier: every worker (and the parent)
    points its :class:`PlanCache` at the same directory, so one worker's
    solve persists a JSON plan all the others hit.
    """
    global _WORKER_SERVICE
    from ..service import PlanCache

    cache = (PlanCache(max_entries=cache_entries, cache_dir=cache_dir)
             if (cache_entries > 0 or cache_dir) else None)
    _WORKER_SERVICE = SolveService(cache=cache)


def _worker_ping() -> int:
    """Warmup probe: forces the worker up and its imports resolved."""
    return os.getpid()


def _run_task(payload: dict) -> dict:
    """Execute one shipped task inside the worker process.

    The contract is "never raise": every failure -- including exception
    types that would not survive pickling back to the parent -- is folded
    into a plain-dict ``{"ok": False, "error": {...}}`` response.  Only an
    abrupt process death can break the channel, and the parent handles that
    separately (``BrokenProcessPool`` -> :class:`WorkerCrashError`).
    """
    try:
        service = _WORKER_SERVICE
        if service is None:  # initializer not run (direct use in tests)
            _worker_init(None, 0)
            service = _WORKER_SERVICE
        graph = graph_from_wire(payload["graph"])
        options = (options_from_wire(payload["options"])
                   if payload.get("options") is not None else None)
        want_trace = bool(payload.get("trace"))
        tracer = get_tracer()
        trace_id = None
        wall_anchor = perf_anchor = 0.0
        if want_trace:
            if not tracer.enabled:
                tracer.enable()
            trace_id = tracer.new_trace_id()
            wall_anchor = time.time()
            perf_anchor = time.perf_counter()
        ctx = (tracer.context(trace_id) if trace_id is not None
               else _NULL_CONTEXT)
        with ctx:
            if payload["kind"] == "sweep":
                cells = tuple(
                    SweepCell(strategy=c["strategy"], budget=c.get("budget"),
                              options=(options_from_wire(c["options"])
                                       if c.get("options") is not None else None))
                    for c in payload["cells"])
                results = service.sweep(graph, cells, options=options)
                result_wire: object = [result_to_wire(r) for r in results]
            else:
                result = service.solve(graph, payload["strategy"],
                                       payload.get("budget"), options)
                result_wire = result_to_wire(result)
        rows: List[tuple] = []
        if trace_id is not None:
            rows = tracer.store.pop_rows(trace_id)
        return {
            "ok": True,
            "pid": os.getpid(),
            "result": result_wire,
            # Echo of the decoded options: lets callers assert the wire
            # round-trip field-for-field against what they sent.
            "options_echo": (options_to_wire(options)
                            if options is not None else None),
            "stats": _worker_stats_snapshot(service),
            "spans": rows,
            "wall_anchor": wall_anchor,
            "perf_anchor": perf_anchor,
        }
    except BaseException as exc:  # noqa: BLE001 - process isolation boundary
        return {
            "ok": False,
            "pid": os.getpid(),
            "error": {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(limit=20),
            },
        }


def _worker_stats_snapshot(service: SolveService) -> dict:
    """Cumulative counters for this worker process (JSON-safe)."""
    stats = service.statistics()
    return {
        "solver_calls": stats["solver_calls"],
        "cache_hits": stats["cache_hits"],
        "cache_misses": stats["cache_misses"],
        "warm_seeds": stats["warm_seeds"],
        "disk_hits": (stats["cache"] or {}).get("disk_hits", 0),
    }


class _NullContext:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


_NULL_CONTEXT = _NullContext()


# --------------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------------- #
class ProcessBackend(WorkerBackend):
    """Ship solver invocations to a pool of long-lived worker processes.

    Parameters
    ----------
    service:
        The parent's service.  Still used for (a) the parent-side plan-cache
        tiers (checked before paying IPC, populated after harvest so repeat
        submissions answer without touching the pool) and (b) local fallback
        of work kinds whose results have no wire format (execute, pareto).
    num_workers:
        Pool size.  Workers are spawned (never forked: the daemon is heavily
        threaded and fork would inherit locks in unknown states).
    poll_interval_s:
        Cadence of the cooperative ``should_abandon`` poll while waiting on
        a worker future.
    """

    name = "process"

    def __init__(self, service: SolveService, *, num_workers: int = 2,
                 poll_interval_s: float = 0.05) -> None:
        self.service = service
        self.num_workers = max(1, int(num_workers))
        self.poll_interval_s = float(poll_interval_s)
        cache = service.cache
        self._cache_dir = cache.cache_dir if cache is not None else None
        self._cache_entries = cache.max_entries if cache is not None else 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._worker_stats: Dict[int, dict] = {}
        self._tasks_shipped = 0
        self._local_fallbacks = 0
        self._crashes = 0
        self._pool_rebuilds = 0

    # ------------------------------ lifecycle ------------------------- #
    def start(self) -> "ProcessBackend":
        with self._pool_lock:
            if self._pool is None:
                self._pool = self._new_pool()
        # Best-effort warmup: pay the interpreter+numpy+scipy import cost
        # now, not inside the first request's latency.
        pool = self._pool
        try:
            for future in [pool.submit(_worker_ping)
                           for _ in range(self.num_workers)]:
                future.result(timeout=60)
        except Exception:  # pragma: no cover - warmup is advisory
            pass
        return self

    def _new_pool(self) -> ProcessPoolExecutor:
        import multiprocessing

        return ProcessPoolExecutor(
            max_workers=self.num_workers,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_worker_init,
            initargs=(self._cache_dir, self._cache_entries),
        )

    def shutdown(self, *, wait: bool = True) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)

    def worker_pids(self, timeout: float = 60.0) -> List[int]:
        """Pids of (a sample of) live workers -- the crash test's handle."""
        pool = self._require_pool()
        futures = [pool.submit(_worker_ping) for _ in range(self.num_workers)]
        return sorted({f.result(timeout=timeout) for f in futures})

    def _require_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = self._new_pool()
            return self._pool

    # ------------------------------ execution ------------------------- #
    def run(self, work: Work, should_abandon: Callable[[], bool]):
        if isinstance(work, (ExecuteWork, ParetoWork)):
            # No result wire format for these kinds (reports carry live
            # tensors / frontier objects); run them on the parent service.
            with self._stats_lock:
                self._local_fallbacks += 1
            return ThreadBackend(self.service).run(work, should_abandon)
        if isinstance(work, SolveWork):
            cached = self._cache_lookup(work)
            if cached is not None:
                return cached
        payload = self._encode(work)
        response = self._ship(payload, should_abandon)
        self._graft_trace(response)
        if not response["ok"]:
            error = response["error"]
            if error["type"] == "SolveCancelledError":
                raise SolveCancelledError(error["message"])
            raise RemoteSolveError(error)
        if isinstance(work, SweepWork):
            return [result_from_wire(r, work.graph) for r in response["result"]]
        result = result_from_wire(response["result"], work.graph)
        self._cache_store(work, result)
        return result

    def _encode(self, work: Work) -> dict:
        tracer = get_tracer()
        payload: dict = {
            "graph": graph_to_wire(work.graph),
            "options": (options_to_wire(work.options)
                        if work.options is not None else None),
            "trace": bool(tracer.enabled
                          and tracer.current_trace_id() is not None),
        }
        if isinstance(work, SweepWork):
            payload["kind"] = "sweep"
            payload["cells"] = [
                {"strategy": c.strategy, "budget": c.budget,
                 "options": (options_to_wire(c.options)
                             if c.options is not None else None)}
                for c in work.cells]
        else:
            payload["kind"] = "solve"
            payload["strategy"] = work.strategy
            payload["budget"] = work.budget
        return payload

    def _ship(self, payload: dict, should_abandon: Callable[[], bool]) -> dict:
        if should_abandon():
            raise SolveCancelledError("flight abandoned before dispatch")
        pool = self._require_pool()
        try:
            future = pool.submit(_run_task, payload)
        except BrokenProcessPool as exc:
            raise self._reap(pool, exc) from None
        with self._stats_lock:
            self._tasks_shipped += 1
        while True:
            try:
                response = future.result(timeout=self.poll_interval_s)
            except _FutureTimeout:
                if should_abandon():
                    if future.cancel():
                        # Never started: nothing to wait for.
                        raise SolveCancelledError(
                            "flight abandoned while queued for a worker")
                    # Already running in the worker: let it finish (it still
                    # populates the shared disk cache), then discard.
                    try:
                        response = future.result()
                    except BrokenProcessPool as exc:
                        raise self._reap(pool, exc) from None
                    self._harvest_stats(response)
                    raise SolveCancelledError(
                        "flight abandoned while running in a worker")
                continue
            except BrokenProcessPool as exc:
                raise self._reap(pool, exc) from None
            except Exception:
                # concurrent.futures re-raises whatever the task raised;
                # _run_task never raises, so anything here is transport-level.
                raise
            self._harvest_stats(response)
            return response

    def _reap(self, broken_pool: ProcessPoolExecutor,
              exc: BaseException) -> WorkerCrashError:
        """Tear down a broken pool and stand up a fresh one (the reap path).

        Only the flight whose worker died fails; the queue keeps draining
        into the rebuilt pool.  Concurrent harvesters racing into this
        method rebuild once: the lock plus the identity check make the
        second caller a no-op.
        """
        with self._pool_lock:
            if self._pool is broken_pool:
                self._pool = None
                try:
                    broken_pool.shutdown(wait=False, cancel_futures=True)
                except Exception:  # pragma: no cover - already broken
                    pass
                self._pool_rebuilds += 1
        with self._stats_lock:
            self._crashes += 1
        _log.error("worker process crashed; pool rebuilt: %s", exc)
        return WorkerCrashError(
            f"worker process died mid-flight ({exc}); pool rebuilt",
            info={"exception": type(exc).__name__})

    # ------------------------------ cache tiers ----------------------- #
    def _cache_key(self, work: SolveWork):
        from ..service import PlanCacheKey, graph_content_hash

        service = self.service
        if service.cache is None:
            return None, None
        spec = service.registry.get(work.strategy)
        options = (work.options if work.options is not None
                   else service.default_options)
        graph_hash = graph_content_hash(work.graph)
        token = options.cache_token(spec.option_map)
        key = PlanCacheKey.build(graph_hash, spec.key, work.budget, token)
        family = "|".join((graph_hash, spec.key, token))
        return key, family

    def _cache_lookup(self, work: SolveWork):
        key, _ = self._cache_key(work)
        if key is None:
            return None
        cached = self.service.cache.get(key, work.graph)
        if cached is not None:
            self.service.stats.record(solver_call=False, cache_hit=True)
        return cached

    def _cache_store(self, work: SolveWork, result) -> None:
        key, family = self._cache_key(work)
        if key is None:
            return
        from ..service.solve import _cacheable

        if _cacheable(result):
            self.service.cache.put(key, result, family=family,
                                   budget=work.budget)

    # ------------------------------ observability --------------------- #
    def _harvest_stats(self, response: dict) -> None:
        pid = response.get("pid")
        stats = response.get("stats")
        if pid is None:
            return
        with self._stats_lock:
            if stats is not None:
                self._worker_stats[pid] = stats
            # Bound the per-pid map: drop oldest entries past 4x the pool
            # size (crashed workers leave their last snapshot behind).
            while len(self._worker_stats) > 4 * self.num_workers:
                self._worker_stats.pop(next(iter(self._worker_stats)))

    def _graft_trace(self, response: dict) -> None:
        rows = response.get("spans")
        if not rows:
            return
        tracer = get_tracer()
        ctx = tracer.current_context()
        if ctx is None or not tracer.enabled:
            return
        trace_id, parent_id = ctx
        # Rebase the worker's perf_counter() clock onto the parent's: both
        # sides stamp a (wall, perf) anchor pair, and wall clocks are shared
        # across processes on one host.
        now_perf = time.perf_counter()
        now_wall = time.time()
        offset = ((response["wall_anchor"] - response["perf_anchor"])
                  + (now_perf - now_wall))
        tracer.graft_rows(rows, trace_id, parent_id=parent_id,
                          offset_s=offset)

    def stats(self) -> dict:
        with self._stats_lock:
            workers = {str(pid): dict(s)
                       for pid, s in self._worker_stats.items()}
            aggregate = {
                "solver_calls": sum(s.get("solver_calls", 0)
                                    for s in self._worker_stats.values()),
                "cache_hits": sum(s.get("cache_hits", 0)
                                  for s in self._worker_stats.values()),
                "disk_hits": sum(s.get("disk_hits", 0)
                                 for s in self._worker_stats.values()),
            }
            return {
                "name": self.name,
                "pool_size": self.num_workers,
                "tasks_shipped": self._tasks_shipped,
                "local_fallbacks": self._local_fallbacks,
                "crashes": self._crashes,
                "pool_rebuilds": self._pool_rebuilds,
                "worker_totals": aggregate,
                "workers": workers,
            }


class RemoteSolveError(RuntimeError):
    """A worker-side exception, rebuilt from its structured wire payload."""

    def __init__(self, error: dict) -> None:
        super().__init__(f"{error.get('type', 'Error')}: "
                         f"{error.get('message', '')}")
        self.info = dict(error, type=error.get("type", "Error"))


def make_backend(name: str, service: SolveService, *,
                 num_workers: int = 2) -> WorkerBackend:
    """Resolve a backend by CLI name (``thread`` or ``process``)."""
    if name == "thread":
        return ThreadBackend(service)
    if name == "process":
        return ProcessBackend(service, num_workers=num_workers)
    raise ValueError(f"unknown worker backend {name!r}; "
                     "use 'thread' or 'process'")
