"""Solve-as-a-service: async job queue, HTTP API and client.

This package turns the in-process :class:`~repro.service.solve.SolveService`
into a long-lived daemon -- the serving layer a production deployment puts in
front of the solvers:

* :mod:`repro.server.jobs` -- :class:`JobQueue`: priority ordering, a bounded
  worker pool, the ``queued -> running -> done/failed/cancelled`` lifecycle,
  and single-flighting of identical concurrent submissions (one solver
  invocation, shared by every duplicate, all backed by the plan cache);
* :mod:`repro.server.http` -- :class:`SolveServer`: the stdlib JSON-over-HTTP
  API (``/v1/solve``, ``/v1/sweep``, ``/v1/jobs/{id}``, ``/v1/healthz``,
  ``/v1/metrics``, ...) with graphs uploaded in the
  :mod:`repro.utils.serialization` wire format or addressed by experiment
  preset name;
* :mod:`repro.server.client` -- :class:`ServeClient`: the urllib client the
  ``repro`` CLI, the tests and the examples drive the daemon with;
* :mod:`repro.server.metrics` -- the latency window behind the p50/p95
  numbers in ``/v1/metrics``.

Quick use::

    from repro.server import SolveServer, ServeClient

    with SolveServer(port=0) as server:          # ephemeral port
        client = ServeClient(server.url)
        handle = client.submit_solve(preset="unet", strategy="checkmate_approx",
                                     budget=2 * 2**30)
        client.wait(handle["job_id"])
        print(client.result(handle["job_id"])["result"]["compute_cost"])

From the shell: ``repro serve`` (see ``repro --help``).
"""

from .client import ServeAPIError, ServeClient
from .http import DEFAULT_PORT, SolveServer, serve
from .jobs import Job, JobQueue, JobState
from .metrics import LatencyWindow

__all__ = [
    "ServeAPIError",
    "ServeClient",
    "DEFAULT_PORT",
    "SolveServer",
    "serve",
    "Job",
    "JobQueue",
    "JobState",
    "LatencyWindow",
]
