"""Model/workload presets used by the experiment harness.

Two scales are provided for every architecture in the paper's evaluation:

* ``ci`` -- reduced batch size and resolution so that a full reproduction run
  (including MILP solves) completes on a single CPU core in minutes.  The
  *relative* comparisons between strategies (who wins, where the crossovers
  are) are preserved at this scale.
* ``paper`` -- the batch sizes and resolutions reported in the paper
  (Figure 5: VGG16 b=256, MobileNet b=512, U-Net b=32 at 416x608; Figure 6:
  segmentation networks at 416x608, classification at 224x224).  Expect long
  solver runtimes at this scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..autodiff import BackwardConfig, make_training_graph
from ..core.dfgraph import DFGraph
from ..cost_model import CostModel, FlopCostModel
from ..models import deepblock, fcn8, mobilenet_v1, resnet50, resnet_tiny, segnet, unet, vgg16, vgg19
from ..models.linear import linear_cnn, linear_mlp

__all__ = ["ExperimentModel", "EXPERIMENT_MODELS", "preset_model",
           "build_training_graph", "build_numeric_training_graph"]


@dataclass(frozen=True)
class ExperimentModel:
    """One workload of the paper's evaluation with CI- and paper-scale settings."""

    name: str
    builder: Callable[..., DFGraph]
    ci_kwargs: dict
    paper_kwargs: dict


EXPERIMENT_MODELS: Dict[str, ExperimentModel] = {
    "vgg16": ExperimentModel(
        name="VGG16",
        builder=vgg16,
        ci_kwargs={"batch_size": 16, "resolution": 64},
        paper_kwargs={"batch_size": 256, "resolution": 224},
    ),
    "vgg19": ExperimentModel(
        name="VGG19",
        builder=vgg19,
        ci_kwargs={"batch_size": 16, "resolution": 64},
        paper_kwargs={"batch_size": 167, "resolution": 224},
    ),
    "mobilenet": ExperimentModel(
        name="MobileNet",
        builder=mobilenet_v1,
        ci_kwargs={"batch_size": 32, "resolution": 64},
        paper_kwargs={"batch_size": 512, "resolution": 224},
    ),
    "unet": ExperimentModel(
        name="U-Net",
        builder=unet,
        ci_kwargs={"batch_size": 2, "resolution": (96, 128), "base_filters": 16, "depth": 3},
        paper_kwargs={"batch_size": 32, "resolution": (416, 608)},
    ),
    "fcn8": ExperimentModel(
        name="FCN8",
        builder=fcn8,
        ci_kwargs={"batch_size": 2, "resolution": (96, 128),
                   "encoder_cfg": [[32, 32], [64, 64], [128, 128], [128, 128], [128, 128]]},
        paper_kwargs={"batch_size": 16, "resolution": (416, 608)},
    ),
    "segnet": ExperimentModel(
        name="SegNet",
        builder=segnet,
        ci_kwargs={"batch_size": 2, "resolution": (96, 128),
                   "encoder_cfg": [[32, 32], [64, 64], [128, 128]]},
        paper_kwargs={"batch_size": 21, "resolution": (416, 608)},
    ),
    "resnet50": ExperimentModel(
        name="ResNet50",
        builder=resnet50,
        ci_kwargs={"batch_size": 8, "resolution": 64},
        paper_kwargs={"batch_size": 167, "resolution": 224},
    ),
    "resnet_tiny": ExperimentModel(
        name="ResNetTiny",
        builder=resnet_tiny,
        ci_kwargs={"batch_size": 4, "resolution": 32},
        paper_kwargs={"batch_size": 64, "resolution": 32},
    ),
    # Linear/chain workloads: the setting of the prior checkpointing work the
    # paper generalizes (Appendix A, Figure 1).  Small enough that exact MILP
    # solves finish in seconds, and -- like every builder graph -- executable
    # over real tensors via the NumPy backend.
    "linear_mlp": ExperimentModel(
        name="LinearMLP",
        builder=linear_mlp,
        ci_kwargs={"hidden_sizes": [64] * 8, "batch_size": 8, "input_features": 64},
        paper_kwargs={"hidden_sizes": [4096] * 8, "batch_size": 256,
                      "input_features": 4096},
    ),
    "linear_cnn": ExperimentModel(
        name="LinearCNN",
        builder=linear_cnn,
        ci_kwargs={"num_layers": 8, "batch_size": 2, "resolution": 32,
                   "channels": 16, "pool_every": 3},
        paper_kwargs={"num_layers": 8, "batch_size": 64, "resolution": 224,
                      "channels": 64, "pool_every": 3},
    ),
    # Deep repeated-block family: every residual block is structurally
    # identical and carries a zero-cost identity alias, making this the
    # showcase (and CI gate) for the graph-canonicalization passes and the
    # isomorphic-segment census -- see repro.models.deepblock.
    "deepblock": ExperimentModel(
        name="DeepBlock",
        builder=deepblock,
        ci_kwargs={"blocks": 4, "channels": 8, "resolution": 8, "batch_size": 2},
        paper_kwargs={"blocks": 16, "channels": 64, "resolution": 56,
                      "batch_size": 32},
    ),
}


def preset_model(key: str, *, scale: str = "ci", batch_size: Optional[int] = None,
                 **overrides) -> DFGraph:
    """Build a forward graph for a named preset at the requested scale."""
    if key not in EXPERIMENT_MODELS:
        raise KeyError(f"unknown experiment model {key!r}; known: {sorted(EXPERIMENT_MODELS)}")
    preset = EXPERIMENT_MODELS[key]
    kwargs = dict(preset.ci_kwargs if scale == "ci" else preset.paper_kwargs)
    kwargs.update(overrides)
    if batch_size is not None:
        kwargs["batch_size"] = batch_size
    return preset.builder(**kwargs)


def build_training_graph(
    key_or_graph,
    *,
    scale: str = "ci",
    cost_model: Optional[CostModel] = None,
    batch_size: Optional[int] = None,
    backward_config: Optional[BackwardConfig] = None,
    **overrides,
) -> DFGraph:
    """Convenience: preset/forward graph -> training graph with costs applied.

    ``key_or_graph`` may be a preset key (``"vgg16"``) or an already-built
    forward :class:`DFGraph`.  ``cost_model`` defaults to the FLOP model used
    by the paper's Figure 6 / Table 2; pass ``ProfileCostModel()`` for the
    Figure 5 setting.
    """
    if isinstance(key_or_graph, DFGraph):
        forward = key_or_graph
    else:
        forward = preset_model(key_or_graph, scale=scale, batch_size=batch_size, **overrides)
    training = make_training_graph(forward, backward_config)
    model = cost_model or FlopCostModel()
    return model.apply(training)


def build_numeric_training_graph(
    key_or_graph,
    *,
    scale: str = "ci",
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    batch_size: Optional[int] = None,
    backward_config: Optional[BackwardConfig] = None,
    **overrides,
):
    """Preset/forward graph -> *executable* training graph.

    Builds the same training graph as :func:`build_training_graph` and binds
    NumPy forward and backward functions to every node (deterministic in
    ``seed``), returning a :class:`~repro.execution.ops.NumericGraph` whose
    schedules can be run over real tensors with
    :func:`~repro.execution.execute_plan` /
    :func:`~repro.execution.build_execution_report`.
    """
    from ..execution import bind_numeric_graph

    training = build_training_graph(
        key_or_graph, scale=scale, cost_model=cost_model, batch_size=batch_size,
        backward_config=backward_config, **overrides)
    return bind_numeric_graph(training, seed=seed)
