"""Figure 3: where training memory goes, per architecture.

The paper motivates rematerialization by showing that activation (feature)
memory dwarfs parameter memory for popular architectures, and that models are
designed right up against the GPU memory limit.  This module tabulates the
same breakdown for the architectures available in :mod:`repro.models`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..core.dfgraph import DFGraph
from ..cost_model import MemoryBreakdown, memory_breakdown
from ..utils.formatting import format_bytes, format_table

__all__ = ["memory_breakdown_table", "format_memory_breakdown"]


def memory_breakdown_table(forward_graphs: Dict[str, DFGraph]) -> List[MemoryBreakdown]:
    """Compute the Figure-3 breakdown for each forward graph."""
    return [memory_breakdown(graph) for graph in forward_graphs.values()]


def format_memory_breakdown(breakdowns: Iterable[MemoryBreakdown],
                            gpu_limit_bytes: Optional[int] = None) -> str:
    """Render the breakdown as text, optionally flagging models over a GPU limit."""
    headers = ["model", "features", "params", "param grads", "workspace", "total", "feature %"]
    rows: List[Tuple] = []
    for b in breakdowns:
        over = ""
        if gpu_limit_bytes is not None and b.total > gpu_limit_bytes:
            over = " (over limit)"
        rows.append((
            b.model,
            format_bytes(b.features),
            format_bytes(b.parameters),
            format_bytes(b.parameter_gradients),
            format_bytes(b.workspace),
            format_bytes(b.total) + over,
            f"{100 * b.feature_fraction():.1f}%",
        ))
    return format_table(headers, rows)
