"""Figure 1: memory over time for retain-all versus rematerialized execution.

The paper opens with a 32-layer network whose checkpoint-all execution needs
30 GB of activation memory; rematerializing reduces the high-water mark by
21 GB for a modest runtime increase.  This module replays both schedules'
execution plans through the simulator to produce the memory-over-time traces
behind that figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


from ..core.dfgraph import DFGraph
from ..core.schedule import checkpoint_all_schedule
from ..core.scheduler import generate_execution_plan
from ..core.simulator import MemoryTrace, simulate_plan
from ..service import SolveService, SolverOptions, get_default_service

__all__ = ["MemoryTimeline", "memory_timeline"]


@dataclass
class MemoryTimeline:
    """Memory-over-time traces for the two policies of Figure 1."""

    graph_name: str
    budget: int
    retain_all: MemoryTrace
    rematerialized: Optional[MemoryTrace]
    rematerialize_feasible: bool

    @property
    def peak_reduction_bytes(self) -> int:
        if self.rematerialized is None:
            return 0
        return int(self.retain_all.peak_memory - self.rematerialized.peak_memory)

    @property
    def runtime_increase(self) -> float:
        if self.rematerialized is None or self.retain_all.total_cost == 0:
            return float("nan")
        return self.rematerialized.total_cost / self.retain_all.total_cost


def memory_timeline(
    graph: DFGraph,
    budget: Optional[int] = None,
    *,
    use_ilp: bool = True,
    ilp_time_limit_s: float = 60.0,
    service: Optional[SolveService] = None,
) -> MemoryTimeline:
    """Produce the Figure-1 traces for a training graph.

    Parameters
    ----------
    budget:
        Rematerialization budget; defaults to 45% of the checkpoint-all peak
        (roughly the reduction shown in the paper's Figure 1).
    use_ilp:
        Solve optimally (default) or with the LP-rounding approximation.
    """
    service = service or get_default_service()
    retain_plan = generate_execution_plan(graph, checkpoint_all_schedule(graph), hoist=False)
    retain_trace = simulate_plan(graph, retain_plan)

    if budget is None:
        budget = int(graph.constant_overhead
                     + 0.45 * (retain_trace.peak_memory - graph.constant_overhead))

    result = service.solve(graph, "checkmate_ilp" if use_ilp else "checkmate_approx",
                           budget, SolverOptions(time_limit_s=ilp_time_limit_s))

    remat_trace = None
    if result.feasible and result.plan is not None:
        remat_trace = simulate_plan(graph, result.plan)

    return MemoryTimeline(
        graph_name=graph.name,
        budget=int(budget),
        retain_all=retain_trace,
        rematerialized=remat_trace,
        rematerialize_feasible=result.feasible,
    )
