"""Figure 5: computational overhead versus memory budget.

For each strategy and each memory budget, solve for a schedule and report the
compute overhead relative to the checkpoint-all ideal.  The paper plots this
for VGG16 (batch 256), MobileNet (batch 512) and U-Net (batch 32) against the
Chen, Griewank and generalized baselines; the takeaway is that Checkmate's
in-budget solutions have the lowest overhead at every budget, dramatically so
on the non-linear U-Net.

The sweep is executed through the unified solve service
(:mod:`repro.service`): independent (strategy, budget) cells fan out over a
thread pool and repeated cells are answered from the content-addressed plan
cache.  For solves that run to completion the points are identical to the
original sequential loop; see :meth:`repro.service.SolveService.sweep` for
the time-limited-MILP caveat.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..core.dfgraph import DFGraph
from ..core.schedule import ScheduledResult
from ..service import SolveService, SolverOptions, SweepCell, get_default_service
from ..utils.formatting import format_bytes, format_table

__all__ = ["BudgetSweepPoint", "budget_grid", "budget_sweep", "format_sweep",
           "pass_statistics"]


def pass_statistics(service: "SolveService", before: Optional[dict],
                    t_start: float, **extra: object) -> Dict[str, object]:
    """Pass-with-statistics summary for one experiment run (cf. SNIPPETS.md §2).

    Reports the wall time plus the *deltas* of the service's solver/cache
    counters over the pass -- how many solver invocations the run actually
    performed, how many cells the plan cache answered, and how many
    formulation compiles the compiled fast path needed (1 per graph on a cold
    cache, 0 on a warm one).

    The formulation-cache counters are process-wide (the cache is shared by
    every service in the process), so their deltas attribute *all* concurrent
    formulation traffic to this pass; in a process that is also serving other
    solves (e.g. the daemon), treat them as an upper bound.
    """
    after = service.statistics()

    def delta(*path: str) -> Optional[int]:
        a: object = after
        b: object = before
        for key in path:
            a = a.get(key) if isinstance(a, dict) else None
            b = b.get(key) if isinstance(b, dict) else None
        if not isinstance(a, int):
            return None
        return a - b if isinstance(b, int) else a

    stats: Dict[str, object] = {
        "wall_time_s": time.perf_counter() - t_start,
        "solver_calls": delta("solver_calls"),
        "cache_hits": delta("cache_hits"),
        "cache_misses": delta("cache_misses"),
        "formulation_compiles": delta("formulation_cache", "compiles"),
        "formulation_hits": delta("formulation_cache", "hits"),
    }
    stats.update(extra)
    return stats

#: Strategies plotted in Figure 5 (linear architectures use the originals,
#: non-linear ones their AP / linearized generalizations).
DEFAULT_SWEEP_STRATEGIES = (
    "checkpoint_all",
    "chen_sqrt_n",
    "chen_greedy",
    "griewank_logn",
    "ap_sqrt_n",
    "ap_greedy",
    "linearized_sqrt_n",
    "linearized_greedy",
    "checkmate_approx",
    "checkmate_ilp",
)


@dataclass
class BudgetSweepPoint:
    """One (strategy, budget) point of the Figure 5 trade-off curve."""

    strategy: str
    budget: int
    feasible: bool
    compute_cost: float
    overhead: float
    peak_memory: int
    solve_time_s: float

    def as_row(self) -> tuple:
        return (self.strategy, format_bytes(self.budget),
                "yes" if self.feasible else "no",
                f"{self.overhead:.3f}x" if self.feasible else "-",
                format_bytes(self.peak_memory) if self.feasible else "-",
                f"{self.solve_time_s:.2f}s")


def budget_grid(graph: DFGraph, num_budgets: int = 6, *, low_fraction: float = 0.35,
                high_fraction: float = 1.05) -> List[int]:
    """Budgets spanning from aggressive rematerialization to checkpoint-all.

    The grid is anchored on the checkpoint-all peak memory: the top end sits
    just above it (where no rematerialization is needed) and the bottom end at
    ``low_fraction`` of it.  The constant input/parameter overhead is always
    respected, since no schedule can run below it.
    """
    from ..core.schedule import checkpoint_all_schedule
    from ..core.simulator import schedule_peak_memory

    peak_all = schedule_peak_memory(graph, checkpoint_all_schedule(graph))
    floor = graph.constant_overhead + max(graph.memory_vector.max(), 1) * 3
    low = max(int(peak_all * low_fraction), int(floor))
    high = max(int(peak_all * high_fraction), low + 1)
    return [int(b) for b in np.linspace(low, high, num=num_budgets)]


def _point_from_result(key: str, budget: int,
                       result: ScheduledResult) -> BudgetSweepPoint:
    ok = result.feasible and result.peak_memory <= budget
    return BudgetSweepPoint(
        strategy=key, budget=budget, feasible=ok,
        compute_cost=result.compute_cost if ok else float("inf"),
        overhead=result.overhead if ok else float("inf"),
        peak_memory=result.peak_memory if result.matrices is not None else 0,
        solve_time_s=result.solve_time_s,
    )


def budget_sweep(
    graph: DFGraph,
    budgets: Optional[Sequence[int]] = None,
    *,
    strategies: Sequence[str] = DEFAULT_SWEEP_STRATEGIES,
    ilp_time_limit_s: float = 120.0,
    skip_linear_only_on_nonlinear: bool = True,
    service: Optional[SolveService] = None,
    parallel: bool = True,
    max_workers: Optional[int] = None,
    stats_out: Optional[Dict[str, object]] = None,
) -> List[BudgetSweepPoint]:
    """Run the Figure-5 sweep for one training graph.

    Strategies without a budget knob (sqrt(n), Griewank, checkpoint-all) are
    solved once and their single point replicated across budgets where it
    fits -- matching how the paper plots them as single markers.

    All cells are dispatched through ``service`` (defaulting to the shared
    process-wide :class:`~repro.service.SolveService`): independent solves run
    in parallel, warm-cache reruns perform no solver invocations, and the
    Eq. (9) formulation is compiled once per graph and re-budgeted in O(1)
    for every MILP/LP cell of the grid.

    ``stats_out``, when given, is filled in place with a pass-statistics dict
    (wall time, cell counts, solver/cache counter deltas) describing what the
    sweep actually did.
    """
    from ..baselines.griewank import is_linear_forward_graph

    service = service or get_default_service()
    before = service.statistics() if stats_out is not None else None
    t_start = time.perf_counter()
    budgets = list(budgets) if budgets is not None else budget_grid(graph)
    is_linear = is_linear_forward_graph(graph)
    options = SolverOptions(time_limit_s=ilp_time_limit_s)

    # Plan the independent cells first: budget-knob strategies get one cell per
    # budget, knob-less strategies a single cell at the loosest budget whose
    # result is replicated across the grid.
    cells: List[SweepCell] = []
    plan: List[tuple] = []  # (strategy, budget, cell_index)
    for key in strategies:
        spec = service.registry.get(key)
        if spec.linear_only and skip_linear_only_on_nonlinear and not is_linear:
            continue
        if not spec.has_budget_knob:
            index = len(cells)
            cells.append(SweepCell(strategy=key, budget=max(budgets)))
            for budget in budgets:
                plan.append((key, budget, index))
        else:
            for budget in budgets:
                plan.append((key, budget, len(cells)))
                cells.append(SweepCell(strategy=key, budget=budget))

    results = service.sweep(graph, cells, options=options,
                            parallel=parallel, max_workers=max_workers)
    if stats_out is not None:
        stats_out.update(pass_statistics(
            service, before, t_start,
            cells=len(cells), points=len(plan), budgets=len(budgets),
        ))
    # One assembly path for both kinds of strategy: an infeasible solve has
    # peak_memory == 0 already, so the "matrices is None" guard inside
    # _point_from_result is equivalent to the knob-less replication logic.
    return [_point_from_result(key, budget, results[index])
            for key, budget, index in plan]


def format_sweep(points: Iterable[BudgetSweepPoint]) -> str:
    """Render sweep points as the text analogue of a Figure 5 panel."""
    headers = ["strategy", "budget", "feasible", "overhead", "peak memory", "solve time"]
    return format_table(headers, [p.as_row() for p in points])
