"""Figure 5: computational overhead versus memory budget.

For each strategy and each memory budget, solve for a schedule and report the
compute overhead relative to the checkpoint-all ideal.  The paper plots this
for VGG16 (batch 256), MobileNet (batch 512) and U-Net (batch 32) against the
Chen, Griewank and generalized baselines; the takeaway is that Checkmate's
in-budget solutions have the lowest overhead at every budget, dramatically so
on the non-linear U-Net.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..baselines import STRATEGIES, StrategyInfo
from ..core.dfgraph import DFGraph
from ..core.schedule import ScheduledResult
from ..utils.formatting import format_bytes, format_table

__all__ = ["BudgetSweepPoint", "budget_grid", "budget_sweep", "format_sweep"]

#: Strategies plotted in Figure 5 (linear architectures use the originals,
#: non-linear ones their AP / linearized generalizations).
DEFAULT_SWEEP_STRATEGIES = (
    "checkpoint_all",
    "chen_sqrt_n",
    "chen_greedy",
    "griewank_logn",
    "ap_sqrt_n",
    "ap_greedy",
    "linearized_sqrt_n",
    "linearized_greedy",
    "checkmate_approx",
    "checkmate_ilp",
)


@dataclass
class BudgetSweepPoint:
    """One (strategy, budget) point of the Figure 5 trade-off curve."""

    strategy: str
    budget: int
    feasible: bool
    compute_cost: float
    overhead: float
    peak_memory: int
    solve_time_s: float

    def as_row(self) -> tuple:
        return (self.strategy, format_bytes(self.budget),
                "yes" if self.feasible else "no",
                f"{self.overhead:.3f}x" if self.feasible else "-",
                format_bytes(self.peak_memory) if self.feasible else "-",
                f"{self.solve_time_s:.2f}s")


def budget_grid(graph: DFGraph, num_budgets: int = 6, *, low_fraction: float = 0.35,
                high_fraction: float = 1.05) -> List[int]:
    """Budgets spanning from aggressive rematerialization to checkpoint-all.

    The grid is anchored on the checkpoint-all peak memory: the top end sits
    just above it (where no rematerialization is needed) and the bottom end at
    ``low_fraction`` of it.  The constant input/parameter overhead is always
    respected, since no schedule can run below it.
    """
    from ..core.schedule import checkpoint_all_schedule
    from ..core.simulator import schedule_peak_memory

    peak_all = schedule_peak_memory(graph, checkpoint_all_schedule(graph))
    floor = graph.constant_overhead + max(graph.memory_vector.max(), 1) * 3
    low = max(int(peak_all * low_fraction), int(floor))
    high = max(int(peak_all * high_fraction), low + 1)
    return [int(b) for b in np.linspace(low, high, num=num_budgets)]


def _solve_one(info: StrategyInfo, graph: DFGraph, budget: int,
               ilp_time_limit_s: float) -> ScheduledResult:
    kwargs: Dict[str, object] = {}
    if info.key == "checkmate_ilp":
        kwargs["time_limit_s"] = ilp_time_limit_s
    try:
        return info.solve(graph, budget, **kwargs)
    except ValueError as exc:
        # e.g. Griewank on a non-linear graph.
        from ..solvers.common import build_scheduled_result
        return build_scheduled_result(info.key, graph, None, budget=budget, feasible=False,
                                      solver_status=f"not-applicable: {exc}")


def budget_sweep(
    graph: DFGraph,
    budgets: Optional[Sequence[int]] = None,
    *,
    strategies: Sequence[str] = DEFAULT_SWEEP_STRATEGIES,
    ilp_time_limit_s: float = 120.0,
    skip_linear_only_on_nonlinear: bool = True,
) -> List[BudgetSweepPoint]:
    """Run the Figure-5 sweep for one training graph.

    Strategies without a budget knob (sqrt(n), Griewank, checkpoint-all) are
    solved once and their single point replicated across budgets where it
    fits -- matching how the paper plots them as single markers.
    """
    from ..baselines.griewank import is_linear_forward_graph

    budgets = list(budgets) if budgets is not None else budget_grid(graph)
    is_linear = is_linear_forward_graph(graph)

    points: List[BudgetSweepPoint] = []
    for key in strategies:
        info = STRATEGIES[key]
        if info.linear_only and skip_linear_only_on_nonlinear and not is_linear:
            continue
        if not info.has_budget_knob:
            result = _solve_one(info, graph, max(budgets), ilp_time_limit_s)
            for budget in budgets:
                fits = result.feasible and result.peak_memory <= budget
                points.append(BudgetSweepPoint(
                    strategy=key, budget=budget, feasible=fits,
                    compute_cost=result.compute_cost if fits else float("inf"),
                    overhead=result.overhead if fits else float("inf"),
                    peak_memory=result.peak_memory, solve_time_s=result.solve_time_s,
                ))
            continue
        for budget in budgets:
            result = _solve_one(info, graph, budget, ilp_time_limit_s)
            ok = result.feasible and result.peak_memory <= budget
            points.append(BudgetSweepPoint(
                strategy=key, budget=budget, feasible=ok,
                compute_cost=result.compute_cost if ok else float("inf"),
                overhead=result.overhead if ok else float("inf"),
                peak_memory=result.peak_memory if result.matrices is not None else 0,
                solve_time_s=result.solve_time_s,
            ))
    return points


def format_sweep(points: Iterable[BudgetSweepPoint]) -> str:
    """Render sweep points as the text analogue of a Figure 5 panel."""
    headers = ["strategy", "budget", "feasible", "overhead", "peak memory", "solve time"]
    return format_table(headers, [p.as_row() for p in points])
