"""Experiment harness: reproduces every table and figure of the paper's evaluation.

Each module regenerates one artifact:

==========================  =====================================================
Module                      Paper artifact
==========================  =====================================================
``memory_timeline``         Figure 1 (memory over time, retain-all vs rematerialize)
``memory_breakdown``        Figure 3 (feature vs parameter memory per architecture)
``strategy_matrix``         Table 1 (qualitative capability comparison)
``budget_sweep``            Figure 5 (overhead vs memory budget)
``max_batch``               Figure 6 (maximum batch size at <= 1 extra forward pass)
``approximation_ratio``     Table 2 (approximation ratios vs the optimal ILP)
``schedule_viz``            Figure 7 (R-matrix schedule visualizations)
``rounding_comparison``     Figure 8 + the Section 5.1 naive-rounding negative result
``integrality_gap``         Appendix A (partitioned vs unpartitioned MILP)
==========================  =====================================================

The functions default to CI-scale presets (small batch sizes / resolutions and
short solver time limits) so the whole harness runs on one CPU core; every
entry point accepts explicit parameters to run at the paper's scale.
"""

from .approximation_ratio import ApproximationRatioRow, approximation_ratio_table, format_ratio_table
from .budget_sweep import BudgetSweepPoint, budget_grid, budget_sweep, format_sweep
from .integrality_gap import IntegralityGapResult, integrality_gap_experiment
from .max_batch import MaxBatchResult, max_batch_size, max_batch_experiment
from .memory_breakdown import memory_breakdown_table
from .memory_timeline import MemoryTimeline, memory_timeline
from .presets import (EXPERIMENT_MODELS, build_numeric_training_graph,
                      build_training_graph, preset_model)
from .rounding_comparison import rounding_comparison, naive_rounding_study
from .schedule_viz import render_schedule_ascii, schedule_visualization
from .strategy_matrix import strategy_matrix_rows, format_strategy_matrix

__all__ = [
    "ApproximationRatioRow",
    "approximation_ratio_table",
    "format_ratio_table",
    "BudgetSweepPoint",
    "budget_grid",
    "budget_sweep",
    "format_sweep",
    "IntegralityGapResult",
    "integrality_gap_experiment",
    "MaxBatchResult",
    "max_batch_size",
    "max_batch_experiment",
    "memory_breakdown_table",
    "MemoryTimeline",
    "memory_timeline",
    "EXPERIMENT_MODELS",
    "build_training_graph",
    "build_numeric_training_graph",
    "preset_model",
    "rounding_comparison",
    "naive_rounding_study",
    "render_schedule_ascii",
    "schedule_visualization",
    "strategy_matrix_rows",
    "format_strategy_matrix",
]
