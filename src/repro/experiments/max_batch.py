"""Figure 6: maximum batch size trainable with at most one extra forward pass.

The paper asks: how large can the batch get before (a) the schedule no longer
fits in 16 GB even with rematerialization, or (b) the recomputation overhead
exceeds one additional forward pass (Eq. 10: total cost <= 2 * forward +
backward)?  The original formulation makes the batch size a decision variable,
which turns the MILP quadratic; following the substitution documented in
DESIGN.md we instead run an outer search over integer batch sizes, solving the
(linear) feasibility problem at each candidate -- the optimum over integers is
the same, and like the paper we report a lower bound whenever the solver hits
its time limit.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..autodiff import make_training_graph
from ..core.dfgraph import DFGraph
from ..cost_model import CostModel, FlopCostModel
from ..service import SolveService, SolverOptions, get_default_service, parallel_map
from ..utils.formatting import format_table
from .budget_sweep import pass_statistics

__all__ = ["MaxBatchResult", "TrainingGraphMemo", "max_batch_size",
           "max_batch_experiment", "cost_cap"]

#: Strategies reported in Figure 6.
DEFAULT_MAX_BATCH_STRATEGIES = ("checkpoint_all", "ap_sqrt_n", "linearized_greedy",
                                "checkmate_approx")


@dataclass
class MaxBatchResult:
    """Largest feasible batch size found for one (model, strategy) pair."""

    model: str
    strategy: str
    max_batch_size: int
    budget: int
    normalized: float = 1.0  # relative to checkpoint-all, filled in by the experiment

    def as_row(self) -> tuple:
        return (self.model, self.strategy, self.max_batch_size, f"{self.normalized:.2f}x")


def cost_cap(training_graph: DFGraph) -> float:
    """Eq. (10): at most one extra forward pass of overhead."""
    return 2.0 * training_graph.forward_cost() + training_graph.backward_cost()


class TrainingGraphMemo:
    """Thread-safe per-batch-size memo of built training graphs.

    The Figure 6 search probes the same batch sizes for every strategy of one
    model (the exponential bracket always visits 1, 2, 4, ...), and every
    probe otherwise rebuilds forward graph + autodiff + cost model from
    scratch.  Sharing one memo across the strategy searches means each batch
    size is built once -- and, because the returned object is the *same*
    ``DFGraph`` instance, its content hash and compiled formulation memos are
    shared across strategies too instead of being recomputed per probe.
    """

    def __init__(self, forward_builder: Callable[[int], DFGraph],
                 cost_model: CostModel) -> None:
        self._builder = forward_builder
        self._cost_model = cost_model
        self._graphs: Dict[int, DFGraph] = {}
        self._lock = threading.Lock()

    def __call__(self, batch_size: int) -> DFGraph:
        with self._lock:
            graph = self._graphs.get(batch_size)
        if graph is None:
            graph = self._cost_model.apply(make_training_graph(self._builder(batch_size)))
            with self._lock:
                graph = self._graphs.setdefault(batch_size, graph)
        return graph


def _feasible_at_batch(
    training_builder: Callable[[int], DFGraph],
    batch_size: int,
    strategy_key: str,
    budget: int,
    ilp_time_limit_s: float,
    service: SolveService,
) -> bool:
    """Check whether ``strategy`` trains at ``batch_size`` within budget and cost cap."""
    graph = training_builder(batch_size)
    if graph.constant_overhead >= budget:
        return False
    result = service.solve(graph, strategy_key, budget,
                           SolverOptions(time_limit_s=ilp_time_limit_s))
    if not result.feasible or result.peak_memory > budget:
        return False
    return result.compute_cost <= cost_cap(graph) * (1.0 + 1e-9)


def max_batch_size(
    forward_builder: Callable[[int], DFGraph],
    strategy_key: str,
    *,
    budget: int,
    cost_model: Optional[CostModel] = None,
    max_batch: int = 4096,
    ilp_time_limit_s: float = 60.0,
    service: Optional[SolveService] = None,
    graph_memo: Optional[TrainingGraphMemo] = None,
) -> int:
    """Binary-search the largest batch size a strategy can train under Eq. (10).

    ``forward_builder(batch)`` must return the forward graph at that batch
    size.  Returns 0 when even batch size 1 is infeasible.  Solves go through
    the plan cache, so probing a batch size the search (or a previous search)
    has already visited is free; ``graph_memo`` (shared across the strategy
    searches by :func:`max_batch_experiment`) additionally deduplicates the
    graph builds themselves.
    """
    cost_model = cost_model or FlopCostModel()
    service = service or get_default_service()
    training_builder = graph_memo or TrainingGraphMemo(forward_builder, cost_model)

    def feasible(b: int) -> bool:
        return _feasible_at_batch(training_builder, b, strategy_key, budget,
                                  ilp_time_limit_s, service)

    if not feasible(1):
        return 0
    # Exponential growth phase to bracket the answer, then binary search.
    lo, hi = 1, 2
    while hi <= max_batch and feasible(hi):
        lo, hi = hi, hi * 2
    hi = min(hi, max_batch + 1)
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if feasible(mid):
            lo = mid
        else:
            hi = mid
    return lo


def max_batch_experiment(
    models: Dict[str, Callable[[int], DFGraph]],
    *,
    budget: int,
    strategies: Sequence[str] = DEFAULT_MAX_BATCH_STRATEGIES,
    cost_model: Optional[CostModel] = None,
    max_batch: int = 4096,
    ilp_time_limit_s: float = 60.0,
    service: Optional[SolveService] = None,
    parallel: bool = True,
    max_workers: Optional[int] = None,
    stats_out: Optional[Dict[str, object]] = None,
) -> List[MaxBatchResult]:
    """Run the Figure-6 study over a set of models.

    ``models`` maps display names to ``builder(batch_size) -> forward graph``
    callables.  Results include the batch size normalized against the
    checkpoint-all strategy for the same model (the bar heights of Figure 6).

    Each (model, strategy) search is independent; they fan out over a thread
    pool (the binary search itself stays sequential) and results keep the
    deterministic (model, strategy) iteration order.

    Reproducibility caveat: with ``checkmate_ilp`` among the strategies, a
    wall-clock-limited MILP probe can return a different incumbent under
    parallel CPU contention, and the binary search amplifies one flipped
    probe into a different max batch -- pass ``parallel=False`` (as the
    figure benchmarks do for their ILP sweeps) when exact run-to-run
    reproducibility matters.  The default strategies use only heuristics and
    the LP rounding, which are deterministic either way.
    """
    service = service or get_default_service()
    before = service.statistics() if stats_out is not None else None
    t_start = time.perf_counter()
    # One training-graph memo per model, shared by all of its strategy
    # searches: every probed batch size is built (and content-hashed) once.
    memos = {model_name: TrainingGraphMemo(builder, cost_model or FlopCostModel())
             for model_name, builder in models.items()}
    pairs = [(model_name, builder, strategy)
             for model_name, builder in models.items() for strategy in strategies]

    def search(pair) -> MaxBatchResult:
        model_name, builder, strategy = pair
        best = max_batch_size(builder, strategy, budget=budget, cost_model=cost_model,
                              max_batch=max_batch, ilp_time_limit_s=ilp_time_limit_s,
                              service=service, graph_memo=memos[model_name])
        return MaxBatchResult(model=model_name, strategy=strategy,
                              max_batch_size=best, budget=budget)

    flat = parallel_map(search, pairs, max_workers=max_workers, parallel=parallel,
                        thread_name_prefix="repro-maxbatch")

    results: List[MaxBatchResult] = []
    for model_name in models:
        per_model = [r for r in flat if r.model == model_name]
        baseline = next((r.max_batch_size for r in per_model
                         if r.strategy == "checkpoint_all"), None)
        for r in per_model:
            if baseline:
                r.normalized = r.max_batch_size / baseline
        results.extend(per_model)
    if stats_out is not None:
        stats_out.update(pass_statistics(service, before, t_start,
                                         models=len(models),
                                         searches=len(pairs)))
    return results


def format_max_batch(results: Sequence[MaxBatchResult]) -> str:
    """Text rendering of Figure 6 (max batch size and normalized bars)."""
    headers = ["model", "strategy", "max batch", "vs checkpoint-all"]
    return format_table(headers, [r.as_row() for r in results])
