"""Appendix A: integrality gap and the value of frontier-advancing stages.

The paper reports that, for an 8-layer linear network (17-node training graph)
with unit costs and memories at a budget of 4, the unpartitioned MILP takes
9.4 hours in Gurobi while the frontier-advancing (partitioned) MILP solves in
0.23 seconds -- and that the partitioning tightens the LP relaxation, reducing
the measured integrality gap from 21.56 to 1.18.  This module solves both
formulations, plus their LP relaxations, and reports the gap and solve times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..autodiff import BackwardConfig, make_training_graph
from ..core.dfgraph import DFGraph
from ..core.graph_utils import linear_graph
from ..solvers.ilp import solve_ilp_rematerialization
from ..solvers.lp_relaxation import solve_lp_relaxation

__all__ = ["IntegralityGapResult", "integrality_gap_experiment", "unit_linear_training_graph"]


@dataclass
class IntegralityGapResult:
    """Integrality gaps and solve times for one problem instance."""

    graph_name: str
    budget: int
    partitioned_ilp_cost: Optional[float]
    partitioned_lp_cost: Optional[float]
    partitioned_solve_time_s: float
    unpartitioned_ilp_cost: Optional[float]
    unpartitioned_lp_cost: Optional[float]
    unpartitioned_solve_time_s: float

    @property
    def partitioned_gap(self) -> Optional[float]:
        if not self.partitioned_ilp_cost or not self.partitioned_lp_cost:
            return None
        return self.partitioned_ilp_cost / self.partitioned_lp_cost

    @property
    def unpartitioned_gap(self) -> Optional[float]:
        if not self.unpartitioned_ilp_cost or not self.unpartitioned_lp_cost:
            return None
        return self.unpartitioned_ilp_cost / self.unpartitioned_lp_cost

    def summary(self) -> str:
        pg = f"{self.partitioned_gap:.2f}" if self.partitioned_gap else "-"
        ug = f"{self.unpartitioned_gap:.2f}" if self.unpartitioned_gap else "-"
        return (
            f"{self.graph_name} @ budget {self.budget}: "
            f"partitioned gap {pg} (solved in {self.partitioned_solve_time_s:.2f}s), "
            f"unpartitioned gap {ug} (solved in {self.unpartitioned_solve_time_s:.2f}s)"
        )


def unit_linear_training_graph(num_layers: int = 8) -> DFGraph:
    """The Appendix-A instance: a unit-cost, unit-memory linear training graph.

    An ``L``-layer forward chain differentiates into a ``2L + 1``-node training
    graph (L forward nodes, the loss folded into the last, and L+1 gradient
    nodes); for L = 8 this is the paper's 17-node instance.
    """
    forward = linear_graph(num_layers, cost=1.0, memory=1, name=f"unit-linear-{num_layers}")
    training = make_training_graph(forward, BackwardConfig(backward_cost_factor=1.0,
                                                           grad_needs_consumer_output=False))
    # Unit costs and memories on *every* node, as in the paper's instance.
    return training.with_costs([1.0] * training.size).with_memories([1] * training.size)


def integrality_gap_experiment(
    graph: Optional[DFGraph] = None,
    budget: int = 4,
    *,
    time_limit_s: float = 300.0,
    include_unpartitioned: bool = True,
    unpartitioned_stages: Optional[int] = None,
) -> IntegralityGapResult:
    """Measure integrality gaps for the partitioned and unpartitioned MILPs."""
    graph = graph if graph is not None else unit_linear_training_graph(8)

    part_ilp = solve_ilp_rematerialization(graph, budget, time_limit_s=time_limit_s,
                                           frontier_advancing=True, generate_plan=False)
    part_lp = solve_lp_relaxation(graph, budget, frontier_advancing=True)

    unpart_cost = unpart_lp_cost = None
    unpart_time = 0.0
    if include_unpartitioned:
        stages = unpartitioned_stages or graph.size
        unpart_ilp = solve_ilp_rematerialization(
            graph, budget, time_limit_s=time_limit_s, frontier_advancing=False,
            num_stages=stages, generate_plan=False,
        )
        unpart_lp = solve_lp_relaxation(graph, budget, frontier_advancing=False,
                                        num_stages=stages)
        unpart_cost = unpart_ilp.compute_cost if unpart_ilp.feasible else None
        unpart_lp_cost = unpart_lp.objective if unpart_lp.feasible else None
        unpart_time = unpart_ilp.solve_time_s

    return IntegralityGapResult(
        graph_name=graph.name,
        budget=int(budget),
        partitioned_ilp_cost=part_ilp.compute_cost if part_ilp.feasible else None,
        partitioned_lp_cost=part_lp.objective if part_lp.feasible else None,
        partitioned_solve_time_s=part_ilp.solve_time_s,
        unpartitioned_ilp_cost=unpart_cost,
        unpartitioned_lp_cost=unpart_lp_cost,
        unpartitioned_solve_time_s=unpart_time,
    )
