"""Figure 8 and the Section 5.1 negative result on naive LP rounding.

Figure 8 compares two-phase *deterministic* rounding against two-phase
*randomized* rounding (cost vs memory of each sample), together with the ILP
optimum and the checkpoint-all point.  Section 5.1 additionally reports that
naively rounding the full fractional solution (both ``R*`` and ``S*``) is
essentially never feasible -- zero feasible samples out of 50 000 for VGG16 at
a 4x reduced budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.dfgraph import DFGraph
from ..core.schedule import checkpoint_all_schedule, schedule_compute_cost
from ..core.simulator import schedule_peak_memory
from ..service import SolveService, SolverOptions, get_default_service
from ..solvers.approximation import (
    randomized_rounding_samples,
    naive_rounding_feasibility,
    solve_approx_lp_rounding,
)
from ..solvers.lp_relaxation import solve_lp_relaxation

__all__ = ["RoundingComparison", "rounding_comparison", "naive_rounding_study"]


@dataclass
class RoundingComparison:
    """All the points of one Figure-8 panel."""

    graph_name: str
    budget: int
    checkpoint_all_cost: float
    checkpoint_all_memory: int
    ilp_cost: Optional[float]
    ilp_memory: Optional[int]
    deterministic_cost: Optional[float]
    deterministic_memory: Optional[int]
    randomized_points: List[Dict[str, float]] = field(default_factory=list)
    #: Per-scheme ``{"cost": ..., "memory": ...}`` (or None when infeasible)
    #: for the rounding-portfolio strategies, when the panel includes them.
    portfolio_points: Dict[str, Optional[Dict[str, float]]] = field(
        default_factory=dict)

    @property
    def deterministic_beats_randomized_mean(self) -> Optional[bool]:
        feasible = [p for p in self.randomized_points if p["feasible"]]
        if not feasible or self.deterministic_cost is None:
            return None
        mean_cost = sum(p["cost"] for p in feasible) / len(feasible)
        return self.deterministic_cost <= mean_cost


def rounding_comparison(
    graph: DFGraph,
    budget: int,
    *,
    allowance: float = 0.1,
    num_randomized_samples: int = 15,
    include_ilp: bool = True,
    include_portfolio: bool = False,
    ilp_time_limit_s: float = 120.0,
    seed: int = 0,
    service: Optional[SolveService] = None,
) -> RoundingComparison:
    """Produce one panel of Figure 8 for a training graph and budget.

    The LP relaxation is solved once and shared by both rounding modes (so it
    stays a direct call); the independent ILP reference point goes through the
    solve service and benefits from the plan cache.  ``include_portfolio``
    additionally plots the four rounding-portfolio strategies -- they share
    one LP relaxation solve among themselves via the process-wide
    ``LPRelaxationCache``, so the whole family costs one extra LP.
    """
    service = service or get_default_service()
    ca = checkpoint_all_schedule(graph)
    ca_cost = schedule_compute_cost(graph, ca)
    ca_mem = schedule_peak_memory(graph, ca)

    lp = solve_lp_relaxation(graph, budget * (1 - allowance))

    det = solve_approx_lp_rounding(graph, budget, allowance=allowance, lp_result=lp,
                                   mode="deterministic", generate_plan=False)
    rand_points: List[Dict[str, float]] = []
    if lp.feasible:
        for sample in randomized_rounding_samples(graph, budget, lp,
                                                  num_samples=num_randomized_samples,
                                                  seed=seed):
            rand_points.append({"cost": sample.compute_cost,
                                "memory": float(sample.peak_memory),
                                "feasible": bool(sample.feasible)})

    ilp_cost = ilp_mem = None
    if include_ilp:
        ilp = service.solve(graph, "checkmate_ilp", budget,
                            SolverOptions(time_limit_s=ilp_time_limit_s))
        if ilp.feasible:
            ilp_cost, ilp_mem = ilp.compute_cost, ilp.peak_memory

    portfolio_points: Dict[str, Optional[Dict[str, float]]] = {}
    if include_portfolio:
        from ..solvers.rounding_portfolio import PORTFOLIO_STRATEGY_KEYS

        options = SolverOptions(allowance=allowance, seed=seed,
                                num_samples=num_randomized_samples,
                                generate_plan=False)
        for key in PORTFOLIO_STRATEGY_KEYS:
            result = service.solve(graph, key, budget, options)
            portfolio_points[key] = (
                {"cost": float(result.compute_cost),
                 "memory": float(result.peak_memory)}
                if result.feasible else None)

    return RoundingComparison(
        graph_name=graph.name,
        budget=int(budget),
        checkpoint_all_cost=ca_cost,
        checkpoint_all_memory=int(ca_mem),
        ilp_cost=ilp_cost,
        ilp_memory=ilp_mem,
        deterministic_cost=det.compute_cost if det.feasible else None,
        deterministic_memory=det.peak_memory if det.feasible else None,
        randomized_points=rand_points,
        portfolio_points=portfolio_points,
    )


def naive_rounding_study(
    graph: DFGraph,
    budget: int,
    *,
    num_samples: int = 500,
    seed: int = 0,
) -> Dict[str, Dict[str, int]]:
    """Reproduce the §5.1 negative result on a graph at a reduced budget.

    Returns feasibility counts for naive deterministic rounding and naive
    randomized rounding of the full fractional solution.  The paper's number
    (0 feasible out of 50 000) used 50k samples; the default here is smaller
    for CI-scale runs but the observed feasibility rate is the same: zero.
    """
    lp = solve_lp_relaxation(graph, budget)
    if not lp.feasible:
        raise ValueError("LP relaxation infeasible at this budget; pick a larger budget")
    deterministic = naive_rounding_feasibility(graph, budget, lp, mode="deterministic")
    randomized = naive_rounding_feasibility(graph, budget, lp, mode="randomized",
                                            num_samples=num_samples, seed=seed)
    return {"deterministic": deterministic, "randomized": randomized}
