"""Table 2: approximation ratios of baselines and LP rounding vs the optimal ILP.

For each architecture and a range of memory budgets, the ratio
``COST_strategy / COST_ilp`` measures how far a heuristic or the two-phase
rounding approximation is from optimal.  The paper reports the geometric mean
of this ratio across the budgets where both are feasible; the headline result
is that two-phase deterministic rounding stays within 1.06x of optimal on all
tested architectures while the heuristics range from 1.06x to 7.07x.

All (strategy, budget) cells -- including the ILP denominators -- are
independent solves, so they fan out through
:meth:`repro.service.SolveService.sweep` and the ratios are assembled from the
deterministically ordered results afterwards.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.dfgraph import DFGraph
from ..service import SolveService, SolverOptions, SweepCell, get_default_service
from ..utils.formatting import format_table, geomean
from .budget_sweep import budget_grid, pass_statistics

__all__ = ["ApproximationRatioRow", "approximation_ratio_table", "format_ratio_table"]

#: Columns of Table 2 (plus the optimal ILP used as the denominator).
DEFAULT_RATIO_STRATEGIES = ("ap_sqrt_n", "ap_greedy", "griewank_logn", "checkmate_approx")


@dataclass
class ApproximationRatioRow:
    """One row of Table 2: a model and its per-strategy geomean ratios."""

    model: str
    ratios: Dict[str, float]
    budgets_evaluated: int

    def as_row(self, strategies: Sequence[str]) -> tuple:
        cells = [self.model]
        for s in strategies:
            value = self.ratios.get(s)
            cells.append(f"{value:.2f}x" if value is not None else "-")
        return tuple(cells)


def approximation_ratio_table(
    graphs: Dict[str, DFGraph],
    *,
    strategies: Sequence[str] = DEFAULT_RATIO_STRATEGIES,
    budgets: Optional[Dict[str, Sequence[int]]] = None,
    num_budgets: int = 4,
    ilp_time_limit_s: float = 120.0,
    service: Optional[SolveService] = None,
    parallel: bool = True,
    max_workers: Optional[int] = None,
    stats_out: Optional[Dict[str, object]] = None,
) -> List[ApproximationRatioRow]:
    """Compute Table 2 for the given training graphs.

    Parameters
    ----------
    graphs:
        Mapping from display name to training graph (with costs applied).
    budgets:
        Optional per-model budget lists; defaults to :func:`budget_grid`.
    stats_out:
        Optional dict filled with pass statistics (wall time, solver-call and
        cache-counter deltas).  The ILP denominators and the ``checkmate_approx``
        numerators share one compiled formulation per model, so a cold run
        reports exactly ``len(graphs)`` formulation compiles.
    """
    service = service or get_default_service()
    options = SolverOptions(time_limit_s=ilp_time_limit_s)
    before = service.statistics() if stats_out is not None else None
    t_start = time.perf_counter()

    rows: List[ApproximationRatioRow] = []
    for model_name, graph in graphs.items():
        model_budgets = list(budgets[model_name]) if budgets and model_name in budgets \
            else budget_grid(graph, num_budgets=num_budgets, high_fraction=0.95)

        # Two-phase dispatch: fan the ILP denominators out first, then solve
        # the heuristic cells only at budgets where the ILP was feasible --
        # ratios at infeasible budgets would be discarded anyway, so their
        # solves are skipped entirely (matching the pre-service loop).
        ilp_cells = [SweepCell("checkmate_ilp", b) for b in model_budgets]
        ilp_results = dict(zip(model_budgets,
                               service.sweep(graph, ilp_cells, options=options,
                                             parallel=parallel,
                                             max_workers=max_workers)))
        usable_budgets = [b for b in model_budgets
                          if ilp_results[b].feasible and ilp_results[b].compute_cost > 0]
        cells = [SweepCell(s, b) for b in usable_budgets for s in strategies]
        results = service.sweep(graph, cells, options=options,
                                parallel=parallel, max_workers=max_workers)
        by_cell = {(c.strategy, c.budget): r for c, r in zip(cells, results)}

        per_strategy_ratios: Dict[str, List[float]] = {s: [] for s in strategies}
        evaluated = len(usable_budgets)
        for budget in usable_budgets:
            ilp = ilp_results[budget]
            for s in strategies:
                result = by_cell[(s, budget)]
                if result.feasible and result.peak_memory <= budget:
                    per_strategy_ratios[s].append(result.compute_cost / ilp.compute_cost)
        ratios = {s: geomean(v) for s, v in per_strategy_ratios.items() if v}
        rows.append(ApproximationRatioRow(model=model_name, ratios=ratios,
                                          budgets_evaluated=evaluated))
    if stats_out is not None:
        stats_out.update(pass_statistics(service, before, t_start,
                                         models=len(graphs)))
    return rows


def format_ratio_table(rows: Sequence[ApproximationRatioRow],
                       strategies: Sequence[str] = DEFAULT_RATIO_STRATEGIES) -> str:
    """Text rendering of Table 2."""
    headers = ["model"] + list(strategies)
    return format_table(headers, [r.as_row(strategies) for r in rows])
