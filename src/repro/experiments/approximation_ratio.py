"""Table 2: approximation ratios of baselines and LP rounding vs the optimal ILP.

For each architecture and a range of memory budgets, the ratio
``COST_strategy / COST_ilp`` measures how far a heuristic or the two-phase
rounding approximation is from optimal.  The paper reports the geometric mean
of this ratio across the budgets where both are feasible; the headline result
is that two-phase deterministic rounding stays within 1.06x of optimal on all
tested architectures while the heuristics range from 1.06x to 7.07x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..baselines import STRATEGIES
from ..core.dfgraph import DFGraph
from ..utils.formatting import format_table, geomean
from .budget_sweep import budget_grid

__all__ = ["ApproximationRatioRow", "approximation_ratio_table", "format_ratio_table"]

#: Columns of Table 2 (plus the optimal ILP used as the denominator).
DEFAULT_RATIO_STRATEGIES = ("ap_sqrt_n", "ap_greedy", "griewank_logn", "checkmate_approx")


@dataclass
class ApproximationRatioRow:
    """One row of Table 2: a model and its per-strategy geomean ratios."""

    model: str
    ratios: Dict[str, float]
    budgets_evaluated: int

    def as_row(self, strategies: Sequence[str]) -> tuple:
        cells = [self.model]
        for s in strategies:
            value = self.ratios.get(s)
            cells.append(f"{value:.2f}x" if value is not None else "-")
        return tuple(cells)


def approximation_ratio_table(
    graphs: Dict[str, DFGraph],
    *,
    strategies: Sequence[str] = DEFAULT_RATIO_STRATEGIES,
    budgets: Optional[Dict[str, Sequence[int]]] = None,
    num_budgets: int = 4,
    ilp_time_limit_s: float = 120.0,
) -> List[ApproximationRatioRow]:
    """Compute Table 2 for the given training graphs.

    Parameters
    ----------
    graphs:
        Mapping from display name to training graph (with costs applied).
    budgets:
        Optional per-model budget lists; defaults to :func:`budget_grid`.
    """
    rows: List[ApproximationRatioRow] = []
    for model_name, graph in graphs.items():
        model_budgets = list(budgets[model_name]) if budgets and model_name in budgets \
            else budget_grid(graph, num_budgets=num_budgets, high_fraction=0.95)
        per_strategy_ratios: Dict[str, List[float]] = {s: [] for s in strategies}
        evaluated = 0
        for budget in model_budgets:
            ilp = STRATEGIES["checkmate_ilp"].solve(graph, budget,
                                                    time_limit_s=ilp_time_limit_s)
            if not ilp.feasible or ilp.compute_cost <= 0:
                continue
            evaluated += 1
            for s in strategies:
                info = STRATEGIES[s]
                try:
                    result = info.solve(graph, budget)
                except ValueError:
                    continue
                if result.feasible and result.peak_memory <= budget:
                    per_strategy_ratios[s].append(result.compute_cost / ilp.compute_cost)
        ratios = {s: geomean(v) for s, v in per_strategy_ratios.items() if v}
        rows.append(ApproximationRatioRow(model=model_name, ratios=ratios,
                                          budgets_evaluated=evaluated))
    return rows


def format_ratio_table(rows: Sequence[ApproximationRatioRow],
                       strategies: Sequence[str] = DEFAULT_RATIO_STRATEGIES) -> str:
    """Text rendering of Table 2."""
    headers = ["model"] + [STRATEGIES[s].key for s in strategies]
    return format_table(headers, [r.as_row(strategies) for r in rows])
