"""Figure 7: visualizing schedules as R matrices.

The paper visualizes, for VGG19, when each layer is evaluated across the
schedule's stages under TensorFlow's checkpoint-all policy, Chen et al.'s
heuristic and Checkmate's ILP -- the denser lower triangle of the heuristics
shows the extra recomputation, and the accompanying text reports the maximum
trainable batch sizes (167 / 197 / 289).  Matplotlib is not available in this
environment, so the renderer emits a compact ASCII heat-map which captures the
same structure and can be embedded in reports or compared in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.dfgraph import DFGraph
from ..core.schedule import ScheduleMatrices, StrategyNotApplicableError
from ..service import SolveService, SolverOptions, get_default_service

__all__ = ["render_schedule_ascii", "schedule_visualization", "ScheduleVisualization"]


def render_schedule_ascii(matrices: ScheduleMatrices, *, max_width: int = 80,
                          computed_char: str = "#", retained_char: str = ".",
                          empty_char: str = " ") -> str:
    """Render an ``(R, S)`` schedule as an ASCII heat map (rows = stages).

    ``#`` marks a (re)computation, ``.`` a value retained in memory, and a
    blank a value that is neither resident nor computed.  Wide schedules are
    down-sampled column-wise to ``max_width`` characters.
    """
    R, S = matrices.R, matrices.S
    T, n = R.shape
    stride = max(1, int(np.ceil(n / max_width)))
    lines: List[str] = []
    for t in range(T):
        chars = []
        for start in range(0, n, stride):
            block_r = R[t, start:start + stride]
            block_s = S[t, start:start + stride]
            if block_r.any():
                chars.append(computed_char)
            elif block_s.any():
                chars.append(retained_char)
            else:
                chars.append(empty_char)
        lines.append("".join(chars))
    return "\n".join(lines)


@dataclass
class ScheduleVisualization:
    """Rendered schedules for Figure 7, one entry per strategy."""

    graph_name: str
    renders: Dict[str, str]
    recompute_counts: Dict[str, int]

    def side_by_side(self) -> str:
        blocks = []
        for name, art in self.renders.items():
            header = f"=== {name} (total evaluations: {self.recompute_counts[name]}) ==="
            blocks.append(header + "\n" + art)
        return "\n\n".join(blocks)


def schedule_visualization(
    graph: DFGraph,
    budget: int,
    *,
    strategies: Sequence[str] = ("checkpoint_all", "linearized_greedy", "checkmate_ilp"),
    ilp_time_limit_s: float = 120.0,
    max_width: int = 80,
    service: Optional[SolveService] = None,
) -> ScheduleVisualization:
    """Produce the Figure-7 style comparison for one graph and budget."""
    service = service or get_default_service()
    options = SolverOptions(time_limit_s=ilp_time_limit_s)
    renders: Dict[str, str] = {}
    counts: Dict[str, int] = {}
    for key in strategies:
        try:
            result = service.solve(graph, key, budget, options, strict=True)
        except StrategyNotApplicableError:
            # e.g. a linear-only strategy on a non-linear graph: skip the
            # panel.  Other errors (bad options, invalid schedules) propagate.
            continue
        if result.matrices is None:
            renders[key] = "(infeasible)"
            counts[key] = 0
            continue
        renders[key] = render_schedule_ascii(result.matrices, max_width=max_width)
        counts[key] = int(result.matrices.total_evaluations())
    return ScheduleVisualization(graph_name=graph.name, renders=renders,
                                 recompute_counts=counts)
