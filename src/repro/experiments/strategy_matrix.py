"""Table 1: qualitative comparison of rematerialization strategies.

The table's three capability columns -- general graphs, cost aware, memory
aware -- are recorded on each :class:`~repro.service.registry.SolverSpec` in
the unified solver registry; this module renders the registry as the paper's
table so the benchmark harness can assert the qualitative claims (only
Checkmate's ILP and approximation tick all three boxes).  Only the entries the
paper tabulates (``in_table1``) are rendered; extra registered solvers such as
the reference branch-and-bound are excluded to keep the artifact faithful.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..service import SolveService, get_default_service
from ..utils.formatting import format_table

__all__ = ["strategy_matrix_rows", "format_strategy_matrix"]


def _flag(value: object) -> str:
    if value is True:
        return "yes"
    if value is False:
        return "no"
    return str(value)  # partial support marker "~"


def strategy_matrix_rows(
    service: Optional[SolveService] = None,
) -> List[Tuple[str, str, str, str, str]]:
    """Rows of Table 1: (strategy, description, general, cost-aware, memory-aware)."""
    service = service or get_default_service()
    rows = []
    for spec in service.registry.table1_entries():
        rows.append((
            spec.key,
            spec.description,
            _flag(spec.general_graphs),
            _flag(spec.cost_aware),
            _flag(spec.memory_aware),
        ))
    return rows


def format_strategy_matrix(service: Optional[SolveService] = None) -> str:
    """Render Table 1 as text."""
    headers = ["method", "description", "general graphs", "cost aware", "memory aware"]
    return format_table(headers, strategy_matrix_rows(service))
