"""Table 1: qualitative comparison of rematerialization strategies.

The table's three capability columns -- general graphs, cost aware, memory
aware -- are recorded on each :class:`~repro.baselines.strategies.StrategyInfo`
in the registry; this module renders the registry as the paper's table so the
benchmark harness can assert the qualitative claims (only Checkmate's ILP and
approximation tick all three boxes).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..baselines import STRATEGIES
from ..utils.formatting import format_table

__all__ = ["strategy_matrix_rows", "format_strategy_matrix"]


def _flag(value: object) -> str:
    if value is True:
        return "yes"
    if value is False:
        return "no"
    return str(value)  # partial support marker "~"


def strategy_matrix_rows() -> List[Tuple[str, str, str, str, str]]:
    """Rows of Table 1: (strategy, description, general, cost-aware, memory-aware)."""
    rows = []
    for info in STRATEGIES.values():
        rows.append((
            info.key,
            info.description,
            _flag(info.general_graphs),
            _flag(info.cost_aware),
            _flag(info.memory_aware),
        ))
    return rows


def format_strategy_matrix() -> str:
    """Render Table 1 as text."""
    headers = ["method", "description", "general graphs", "cost aware", "memory aware"]
    return format_table(headers, strategy_matrix_rows())
