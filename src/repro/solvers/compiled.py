"""Compiled MILP formulation: build the arrays once per graph, re-budget in O(1).

The loop-built :class:`~repro.solvers.formulation.MILPFormulation` assembles
the constraint matrix with per-entry Python appends every time it is asked for
a budget.  But the matrix ``A``, the objective ``c``, the integrality pattern
and every constraint bound depend only on ``(graph, variant, num_stages)`` --
the memory budget of Eq. (9) enters the standard form *solely* as the upper
bound of the continuous ``U`` variables.  Since the paper's whole experimental
surface is "same graph, many budgets" (the Figure 5 sweeps, the Figure 6
max-batch bisection, the Table 2 ratio grids), :class:`CompiledFormulation`
assembles everything budget-independent exactly once with vectorized NumPy
batch COO construction, and :meth:`CompiledFormulation.with_budget` patches
only ``ub[u_slice]`` -- microseconds instead of a full rebuild.

Variable slice layout (offsets within the flat variable vector ``x``)
---------------------------------------------------------------------
The four variable families are laid out in contiguous blocks, in the same
order the loop-built formulation indexes them, so solution vectors decode
identically on either path:

====== ============================ =========================================
block  paper object                 index of ``(t, i)`` within the block
====== ============================ =========================================
``R``  Eq. (1a)/(9) recomputation   frontier: ``t(t+1)/2 + i`` (``i <= t``,
       indicator ``R_{t,i}``        lower triangular per §4.6 / Eq. (8c));
                                    unpartitioned: ``t*n + i``
``S``  Eq. (1b-1d) checkpoint       frontier: ``t(t-1)/2 + i`` (``i < t``,
       indicator ``S_{t,i}``        strictly lower triangular, Eq. (8b));
                                    unpartitioned: ``t*n + i``
``FREE`` Eq. (5)/(7) deallocation   ``(t, e)`` for edge ``e = (i, k)`` active
       indicator ``FREE_{t,i,k}``   in stage ``t`` (``k <= t`` under the
                                    frontier variant): ``cumE[t] + e`` where
                                    ``cumE`` counts active edges of earlier
                                    stages; unpartitioned: ``t*E + e``
``U``  Eq. (2-3) memory-in-use      same triangular/rectangular layout as
       ``U_{t,k}``                  ``R``; the *only* place the budget of
                                    Eq. (9) ("U <= M_budget") appears
====== ============================ =========================================

Constraint row layout mirrors the loop-built path exactly: the dependency
constraints (1b), then checkpoint continuity (1c), then -- unpartitioned only
-- the terminal-completion row (1e), then the interleaved FREE linearization
rows (7b)/(7c) per FREE variable, then the memory recurrence rows (Eq. 2-3)
stage by stage.  ``with_budget`` therefore returns arrays that are
float-for-float equal to ``MILPFormulation(graph, budget).build()``.

The module also hosts the per-process :class:`FormulationCache` (content-hash
keyed, single-flight, LRU) that the solvers consult, and the
``set_compiled_formulation_enabled`` switch the perf harness uses to time the
legacy loop-built path.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Optional, Tuple

import numpy as np
from scipy import sparse

from ..core.dfgraph import DFGraph
from ..core.schedule import ScheduleMatrices
from ..obs.trace import get_tracer
from .formulation import FormulationArrays, InfeasibleBudgetError, MILPFormulation

__all__ = [
    "CompiledFormulation",
    "FormulationCache",
    "get_formulation_cache",
    "set_formulation_cache",
    "compiled_formulation_enabled",
    "set_compiled_formulation_enabled",
    "legacy_formulation",
    "formulation_and_arrays",
]


def _ramp(reps: np.ndarray) -> np.ndarray:
    """``concatenate([arange(r) for r in reps])`` without a Python loop."""
    reps = np.asarray(reps, dtype=np.int64)
    total = int(reps.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.concatenate(([0], np.cumsum(reps)[:-1]))
    return np.arange(total, dtype=np.int64) - np.repeat(starts, reps)


class CompiledFormulation:
    """Budget-independent standard-form arrays for the rematerialization MILP.

    Assembles objective, integrality, variable bounds, the sparse constraint
    matrix and the constraint bounds once, using preallocated index arrays and
    batch COO construction -- no per-entry ``list.append``, no per-stage
    ``set`` rebuilds (frontier membership is the arithmetic test ``j <= t``).
    :meth:`with_budget` then produces solver-ready
    :class:`~repro.solvers.formulation.FormulationArrays` for any budget by
    patching only the ``U``-block upper bounds.

    The decode side (:meth:`decode_matrices`, :meth:`decode_fractional`,
    :meth:`objective_value`) is vectorized too: solution vectors are scattered
    into the dense ``(R, S)`` matrices with fancy indexing.

    Everything except the returned ``ub`` vector is shared between budgets;
    treat the arrays as read-only (the shipped solvers already do -- the
    reference branch-and-bound copies the bounds it mutates).
    """

    def __init__(
        self,
        graph: DFGraph,
        *,
        frontier_advancing: bool = True,
        num_stages: Optional[int] = None,
    ) -> None:
        t_start = time.perf_counter()
        self.graph = graph
        self.frontier_advancing = bool(frontier_advancing)
        n = graph.size
        self.n = n
        self.T = int(num_stages) if num_stages is not None else n
        if self.frontier_advancing and self.T != n:
            raise ValueError("frontier-advancing formulation requires num_stages == graph.size")
        if self.T < 1:
            raise ValueError("need at least one stage")

        # Normalization for conditioning (identical to the loop-built path).
        self._cost_scale = max(float(graph.cost_vector.max()), 1e-12)
        self._mem_scale = max(float(graph.memory_vector.max()), 1.0)
        self._norm_mem = graph.memory_vector / self._mem_scale
        self._norm_overhead = graph.constant_overhead / self._mem_scale

        self._build_layout()
        self._build_arrays()

        # Learned infeasibility frontier (per integrality mode): budgets are
        # totally ordered, so one proven-infeasible verdict at budget b rules
        # out every b' <= b.  LP infeasibility additionally implies ILP
        # infeasibility (the relaxation only enlarges the feasible set).
        # Shared process-wide through the FormulationCache, the memo lets a
        # sweep/bisection prove a whole tail of budgets infeasible with at
        # most one solver call.
        self._infeasible_lock = threading.Lock()
        self._max_infeasible = {"lp": float("-inf"), "ilp": float("-inf")}
        self._budget_floor: Optional[float] = None

        self.compile_time_s = time.perf_counter() - t_start
        #: Pass-with-statistics summary (sizes + compile time), one dict.
        self.stats: Dict[str, object] = {
            "variables": self.num_variables,
            "constraints": int(self._A.shape[0]),
            "nnz": int(self._A.nnz),
            "num_r": self.num_r,
            "num_s": self.num_s,
            "num_free": self.num_free,
            "num_u": self.num_u,
            "compile_time_s": self.compile_time_s,
        }

    # ------------------------------------------------------------------ #
    # Variable layout
    # ------------------------------------------------------------------ #
    def _build_layout(self) -> None:
        n, T = self.n, self.T
        parents, children = self.graph.edge_arrays
        self._edge_parent = parents
        self._edge_child = children
        E = parents.shape[0]
        self._E = E

        if self.frontier_advancing:
            self.num_r = T * (T + 1) // 2
            self.num_s = T * (T - 1) // 2
            # Edges active in stage t are exactly the prefix with child <= t
            # (edges are child-major), so per-stage counts come from one
            # searchsorted over the child array.
            self._edges_per_stage = np.searchsorted(children, np.arange(T), side="right")
            self._cum_edges = np.concatenate(
                ([0], np.cumsum(self._edges_per_stage)[:-1])
            ).astype(np.int64)
            self.num_free = int(self._edges_per_stage.sum())
            self.num_u = self.num_r
        else:
            self.num_r = T * n
            self.num_s = T * n
            self._edges_per_stage = np.full(T, E, dtype=np.int64)
            self._cum_edges = np.arange(T, dtype=np.int64) * E
            self.num_free = T * E
            self.num_u = T * n

        self._r_base = 0
        self._s_base = self.num_r
        self._free_base = self.num_r + self.num_s
        self._u_base = self.num_r + self.num_s + self.num_free
        self.num_variables = self._u_base + self.num_u
        self.u_slice = slice(self._u_base, self._u_base + self.num_u)

        # (t, i) pairs of each block in variable order, for decode / objective.
        if self.frontier_advancing:
            self._r_t, self._r_i = np.tril_indices(T)
            self._s_t, self._s_i = np.tril_indices(T, k=-1)
        else:
            self._r_t = np.repeat(np.arange(T, dtype=np.int64), n)
            self._r_i = np.tile(np.arange(n, dtype=np.int64), T)
            self._s_t, self._s_i = self._r_t, self._r_i

    # Vectorized variable-index arithmetic: ``t`` / ``i`` may be arrays.
    def _r(self, t, i):
        if self.frontier_advancing:
            return self._r_base + t * (t + 1) // 2 + i
        return self._r_base + t * self.n + i

    def _s(self, t, i):
        if self.frontier_advancing:
            return self._s_base + t * (t - 1) // 2 + i
        return self._s_base + t * self.n + i

    def _free(self, t, e):
        return self._free_base + self._cum_edges[t] + e

    def _u(self, t, k):
        if self.frontier_advancing:
            return self._u_base + t * (t + 1) // 2 + k
        return self._u_base + t * self.n + k

    # ------------------------------------------------------------------ #
    # One-time assembly
    # ------------------------------------------------------------------ #
    def _active_stage_edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """All ``(t, e)`` pairs with edge ``e`` active in stage ``t``.

        Frontier variant: edge ``(i, k)`` is active for ``t >= k``.
        Unpartitioned: every edge is active in every stage.
        """
        T, E = self.T, self._E
        if self.frontier_advancing:
            reps = T - self._edge_child  # child < T, so >= 1
            act_e = np.repeat(np.arange(E, dtype=np.int64), reps)
            act_t = np.repeat(self._edge_child, reps) + _ramp(reps)
        else:
            act_t = np.repeat(np.arange(T, dtype=np.int64), E)
            act_e = np.tile(np.arange(E, dtype=np.int64), T)
        return act_t, act_e

    def _later_user_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """All ``(edge (i, k), j)`` with ``j`` a later user of ``i`` (``j > k``).

        These are the "num_hazards" interaction terms of Eq. (7): for parent
        ``i`` with users ``u_1 < ... < u_d``, every ordered pair ``(u_a, u_b)``
        with ``a < b`` contributes a ``R[t, u_b]`` entry to the FREE rows of
        the variable ``FREE[t, i, u_a]``.
        """
        parents, children = self._edge_parent, self._edge_child
        order = np.lexsort((children, parents))
        par_sorted = parents[order]
        offsets = np.searchsorted(par_sorted, np.arange(self.n + 1))
        pair_edges = []
        pair_users = []
        for i in range(self.n):
            block = order[offsets[i]:offsets[i + 1]]
            d = block.shape[0]
            if d < 2:
                continue
            a, b = np.triu_indices(d, k=1)
            pair_edges.append(block[a])
            pair_users.append(children[block[b]])
        if pair_edges:
            return np.concatenate(pair_edges), np.concatenate(pair_users)
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)

    def _build_arrays(self) -> None:
        g = self.graph
        n, T, E = self.n, self.T, self._E
        nv = self.num_variables
        fa = self.frontier_advancing
        mem = self._norm_mem
        INF = np.inf

        # ---- Objective, integrality, variable bounds. -----------------------
        c = np.zeros(nv)
        c[: self.num_r] = (g.cost_vector / self._cost_scale)[self._r_i]
        integrality = np.ones(nv)
        integrality[self.u_slice] = 0.0
        lb = np.zeros(nv)
        ub = np.ones(nv)
        if fa:
            # (8a): the frontier node of each stage is computed.
            t_arr = np.arange(T, dtype=np.int64)
            lb[self._r(t_arr, t_arr)] = 1.0
        else:
            # (1d): no checkpoints into the first stage.
            ub[self._s_base: self._s_base + n] = 0.0
        self._integrality = integrality
        self._lb = lb
        self._ub_template = ub
        self._c = c

        # ---- Constraint row layout. -----------------------------------------
        act_t, act_e = self._active_stage_edges()
        n_1b = act_t.shape[0]  # == num_free: one (1b) row per active edge
        base_1c = n_1b
        n_1c = T * (T - 1) // 2 if fa else (T - 1) * n
        base_1e = base_1c + n_1c
        n_1e = 0 if fa else 1
        base_free = base_1e + n_1e
        base_mem = base_free + 2 * self.num_free
        n_mem = self.num_u  # one row per (t, k in stage)
        num_rows = base_mem + n_mem

        def row_1b(t, e):
            return self._cum_edges[t] + e

        if fa:
            def row_1c(t, i):
                return base_1c + t * (t - 1) // 2 + i

            def row_mem(t, k):
                return base_mem + t * (t + 1) // 2 + k
        else:
            def row_1c(t, i):
                return base_1c + (t - 1) * n + i

            def row_mem(t, k):
                return base_mem + t * n + k

        def row_7b(t, e):
            return base_free + 2 * (self._cum_edges[t] + e)

        rows = []
        cols = []
        vals = []

        def emit(r, col, val) -> None:
            rows.append(np.asarray(r, dtype=np.int64))
            cols.append(np.asarray(col, dtype=np.int64))
            v = np.asarray(val, dtype=np.float64)
            vals.append(np.broadcast_to(v, rows[-1].shape) if v.ndim == 0 else v)

        con_lb = np.full(num_rows, -INF)
        con_ub = np.zeros(num_rows)

        # ---- (1b): R[t,j] <= R[t,i] + S[t,i] for every active edge. ---------
        act_parent = self._edge_parent[act_e]
        act_child = self._edge_child[act_e]
        r1b = row_1b(act_t, act_e)
        emit(r1b, self._r(act_t, act_child), 1.0)
        emit(r1b, self._r(act_t, act_parent), -1.0)
        # The parent is always checkpointable: i < j <= t (frontier), or
        # unconditionally in the unpartitioned variant.
        emit(r1b, self._s(act_t, act_parent), -1.0)
        # con_lb/ub already (-inf, 0) for this block.

        # ---- (1c): S[t,i] <= R[t-1,i] + S[t-1,i]. ---------------------------
        if fa:
            ct, ci = np.tril_indices(T, k=-1)
        else:
            ct = np.repeat(np.arange(1, T, dtype=np.int64), n)
            ci = np.tile(np.arange(n, dtype=np.int64), max(T - 1, 0))
        r1c = row_1c(ct, ci)
        emit(r1c, self._s(ct, ci), 1.0)
        emit(r1c, self._r(ct - 1, ci), -1.0)
        if fa:
            prev_ckpt = ci < ct - 1  # S[t-1, i] only exists for i < t-1
            emit(r1c[prev_ckpt], self._s(ct[prev_ckpt] - 1, ci[prev_ckpt]), -1.0)
        else:
            emit(r1c, self._s(ct - 1, ci), -1.0)
        # con bounds (-inf, 0) already set.

        # ---- (1e), unpartitioned only: terminal node computed at least once.
        if not fa:
            t_arr = np.arange(T, dtype=np.int64)
            emit(np.full(T, base_1e, dtype=np.int64), self._r(t_arr, n - 1), 1.0)
            con_lb[base_1e] = 1.0
            con_ub[base_1e] = INF

        # ---- FREE linearization (7b) and (7c). ------------------------------
        # num_hazards(t,i,k) = (1 - R[t,k]) + S[t+1,i] + sum_{j in USERS[i], j>k} R[t,j]
        f_var = self._free_base + self._cum_edges[act_t] + act_e
        r7b = row_7b(act_t, act_e)
        r7c = r7b + 1
        emit(r7b, f_var, -1.0)
        emit(r7b, self._r(act_t, act_child), 1.0)
        emit(r7c, self._r(act_t, act_child), -1.0)
        has_next = act_t + 1 < T  # S[t+1, i] exists (i < k <= t < t+1 is automatic)
        emit(r7b[has_next], self._s(act_t[has_next] + 1, act_parent[has_next]), -1.0)
        emit(r7c[has_next], self._s(act_t[has_next] + 1, act_parent[has_next]), 1.0)

        # Later-user hazard terms, expanded over the stages where they apply:
        # pair (edge (i,k), user j) is live for t >= j (frontier) / every t.
        pair_edge, pair_user = self._later_user_pairs()
        if fa:
            reps = T - pair_user
            pe = np.repeat(pair_edge, reps)
            pj = np.repeat(pair_user, reps)
            pt = np.repeat(pair_user, reps) + _ramp(reps)
        else:
            P = pair_edge.shape[0]
            pe = np.repeat(pair_edge, T)
            pj = np.repeat(pair_user, T)
            pt = _ramp(np.full(P, T, dtype=np.int64))
        f_pair = self._cum_edges[pt] + pe  # 0-based index within the FREE block
        emit(row_7b(pt, pe), self._r(pt, pj), -1.0)
        emit(row_7b(pt, pe) + 1, self._r(pt, pj), 1.0)

        # kappa per FREE variable = 2 + (number of later-user hazard terms).
        kappa = 2.0 + np.bincount(f_pair, minlength=self.num_free).astype(np.float64)
        f_all = self._cum_edges[act_t] + act_e  # FREE index of each active pair
        emit(r7c, f_var, kappa[f_all])
        con_ub[base_free + 1: base_mem: 2] = kappa - 1.0
        # (7b) rows keep (-inf, 0).

        # ---- Memory accounting recurrence (Eq. 2-3). -------------------------
        # Stage-opening rows: U[t,0] - sum_i M_i S[t,i] - M_0 R[t,0] = overhead.
        t_arr = np.arange(T, dtype=np.int64)
        r_open = row_mem(t_arr, 0)
        emit(r_open, self._u(t_arr, 0), 1.0)
        emit(r_open, self._r(t_arr, 0), -float(mem[0]))
        if fa:
            st, si = np.tril_indices(T, k=-1)
        else:
            st = np.repeat(t_arr, n)
            si = np.tile(np.arange(n, dtype=np.int64), T)
        emit(row_mem(st, 0), self._s(st, si), -mem[si])
        con_lb[r_open] = self._norm_overhead
        con_ub[r_open] = self._norm_overhead

        # Within-stage recurrence:
        # U[t,k] - U[t,k-1] - M_k R[t,k] + sum_{i in DEPS[k-1]} M_i FREE[t,i,k-1] = 0.
        if fa:
            mt, mi = np.tril_indices(T, k=-1)
            mk = mi + 1  # k runs over 1..t
        else:
            mt = np.repeat(t_arr, max(n - 1, 0))
            mk = np.tile(np.arange(1, n, dtype=np.int64), T)
        r_rec = row_mem(mt, mk)
        emit(r_rec, self._u(mt, mk), 1.0)
        emit(r_rec, self._u(mt, mk - 1), -1.0)
        emit(r_rec, self._r(mt, mk), -mem[mk])
        # FREE contributions: edge e with child c appears in the row (t, c+1)
        # for every stage t where both c and c+1 are in the stage.
        if fa:
            reps = np.maximum(T - 1 - self._edge_child, 0)
            ge = np.repeat(np.arange(E, dtype=np.int64), reps)
            gt = np.repeat(self._edge_child + 1, reps) + _ramp(reps)
        else:
            keep = np.flatnonzero(self._edge_child <= n - 2)
            ge = np.repeat(keep, T)
            gt = _ramp(np.full(keep.shape[0], T, dtype=np.int64))
        gc_child = self._edge_child[ge]
        emit(row_mem(gt, gc_child + 1), self._free(gt, ge), mem[self._edge_parent[ge]])
        con_lb[r_rec] = 0.0
        con_ub[r_rec] = 0.0

        all_rows = np.concatenate(rows) if rows else np.zeros(0, dtype=np.int64)
        all_cols = np.concatenate(cols) if cols else np.zeros(0, dtype=np.int64)
        all_vals = np.concatenate(vals) if vals else np.zeros(0)
        self._A = sparse.coo_matrix(
            (all_vals, (all_rows, all_cols)), shape=(num_rows, nv)
        ).tocsr()
        self._con_lb = con_lb
        self._con_ub = con_ub
        self._c_unnormalized = self.graph.cost_vector[self._r_i]

    # ------------------------------------------------------------------ #
    # Per-budget instantiation
    # ------------------------------------------------------------------ #
    def with_budget(self, budget: float) -> FormulationArrays:
        """Solver-ready arrays for one budget; only ``ub[u_slice]`` is patched.

        Everything except the returned ``ub`` vector is shared with every
        other budget (read-only by contract).  Raises
        :class:`InfeasibleBudgetError` when the budget cannot fit the constant
        input/parameter overhead, mirroring the loop-built constructor.
        """
        budget = float(budget)
        if budget < self.graph.constant_overhead:
            raise InfeasibleBudgetError(
                f"budget {budget:.3g} B is below the constant input/parameter "
                f"overhead {self.graph.constant_overhead:.3g} B"
            )
        with get_tracer().span("re-budget"):
            ub = self._ub_template.copy()
            ub[self.u_slice] = budget / self._mem_scale
        return FormulationArrays(
            c=self._c,
            integrality=self._integrality,
            lb=self._lb,
            ub=ub,
            A=self._A,
            constraint_lb=self._con_lb,
            constraint_ub=self._con_ub,
        )

    # ------------------------------------------------------------------ #
    # Infeasibility shortcuts (warm sweeps / Pareto bisection)
    # ------------------------------------------------------------------ #
    def budget_floor(self) -> float:
        """Cached arithmetic floor on integral-feasible budgets (frontier only).

        See :func:`~repro.solvers.warm.min_feasible_budget_floor`; only
        meaningful for the frontier-advancing variant (and never applied to
        the LP relaxation).
        """
        if self._budget_floor is None:
            from .warm import min_feasible_budget_floor

            self._budget_floor = min_feasible_budget_floor(self.graph)
        return self._budget_floor

    def note_infeasible_budget(self, budget: float, *, integral: bool) -> None:
        """Record a solver-proven infeasible budget in the monotone memo."""
        key = "ilp" if integral else "lp"
        budget = float(budget)
        with self._infeasible_lock:
            if budget > self._max_infeasible[key]:
                self._max_infeasible[key] = budget

    def known_infeasible_budget(self, budget: float, *, integral: bool) -> bool:
        """Whether the memo already proves this budget infeasible.

        An LP-infeasible budget bound applies to both modes; an ILP bound only
        to integral solves (the relaxation may still be feasible below it).
        """
        budget = float(budget)
        with self._infeasible_lock:
            if budget <= self._max_infeasible["lp"]:
                return True
            return integral and budget <= self._max_infeasible["ilp"]

    # ------------------------------------------------------------------ #
    # Vectorized decoding
    # ------------------------------------------------------------------ #
    def decode_matrices(self, x: np.ndarray, *, threshold: float = 0.5) -> ScheduleMatrices:
        """Convert a solution vector into dense ``(R, S)`` 0/1 matrices."""
        x = np.asarray(x)
        R = np.zeros((self.T, self.n), dtype=np.uint8)
        S = np.zeros((self.T, self.n), dtype=np.uint8)
        R[self._r_t, self._r_i] = x[: self.num_r] > threshold
        S[self._s_t, self._s_i] = x[self._s_base: self._s_base + self.num_s] > threshold
        if self.frontier_advancing:
            np.fill_diagonal(R, 1)  # (8a) may be returned as 0.9999... by LP solvers
        return ScheduleMatrices(R, S)

    def decode_fractional(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return the fractional ``(R*, S*)`` matrices of an LP-relaxation solution."""
        x = np.asarray(x, dtype=np.float64)
        R = np.zeros((self.T, self.n), dtype=np.float64)
        S = np.zeros((self.T, self.n), dtype=np.float64)
        R[self._r_t, self._r_i] = x[: self.num_r]
        S[self._s_t, self._s_i] = x[self._s_base: self._s_base + self.num_s]
        return R, S

    def objective_value(self, x: np.ndarray) -> float:
        """Un-normalized objective (total recomputation cost) as one dot product."""
        return float(self._c_unnormalized @ np.asarray(x)[: self.num_r])

    def describe(self) -> str:
        """Human readable summary of problem dimensions (for logs and reports)."""
        return (
            f"MILP[{'frontier' if self.frontier_advancing else 'unpartitioned'},compiled] "
            f"graph={self.graph.name!r} n={self.n} T={self.T} "
            f"vars={self.num_variables} (R={self.num_r}, S={self.num_s}, "
            f"FREE={self.num_free}, U={self.num_u})"
        )


class FormulationCache:
    """Per-process LRU of :class:`CompiledFormulation` keyed by graph structure.

    The key is ``(structural hash, variant, num_stages)`` using
    :func:`~repro.analysis.analyses.structural_graph_hash`, which covers
    exactly what the formulation arrays are built from -- costs, memories,
    edges, the constant overhead -- and nothing else.  That is deliberately
    *weaker* than the plan cache's
    :func:`~repro.service.hashing.graph_content_hash`: node names, layer ids
    and the ``meta`` mapping (including ``op_attrs``) never enter the MILP,
    so two structurally isomorphic graphs -- the same residual block rebuilt
    with different layer names, or the same architecture with different op
    hyper-parameters -- share one compiled formulation per process.  Plans
    stay keyed by the full content hash, because *executing* a schedule does
    depend on ``op_attrs``.  Lookups are single-flighted: when several sweep
    workers race on a cold key, exactly one thread compiles and the rest wait
    for its result (``stats()['compiles']`` counts real compilations, which
    is how the tests assert "compile once per structure").
    """

    def __init__(self, max_entries: int = 64) -> None:
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, CompiledFormulation]" = OrderedDict()
        self._building: Dict[tuple, threading.Event] = {}
        self._hits = 0
        self._misses = 0
        self._compiles = 0
        self._evictions = 0

    @staticmethod
    def _key(graph: DFGraph, frontier_advancing: bool, num_stages: Optional[int]) -> tuple:
        from ..analysis.analyses import structural_graph_hash

        T = int(num_stages) if num_stages is not None else graph.size
        return (structural_graph_hash(graph), bool(frontier_advancing), T)

    def get(
        self,
        graph: DFGraph,
        *,
        frontier_advancing: bool = True,
        num_stages: Optional[int] = None,
    ) -> CompiledFormulation:
        """Return the compiled formulation for a graph, compiling on first use."""
        key = self._key(graph, frontier_advancing, num_stages)
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    return entry
                waiter = self._building.get(key)
                if waiter is None:
                    self._building[key] = threading.Event()
                    self._misses += 1
                    break
            # Another thread is compiling this key: wait and retry the lookup.
            waiter.wait()
        try:
            with get_tracer().span("compile", graph=graph.name):
                compiled = CompiledFormulation(
                    graph, frontier_advancing=frontier_advancing,
                    num_stages=num_stages,
                )
        except BaseException:
            with self._lock:
                self._building.pop(key).set()
            raise
        with self._lock:
            self._compiles += 1
            if self.max_entries > 0:
                self._entries[key] = compiled
                self._entries.move_to_end(key)
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self._evictions += 1
            self._building.pop(key).set()
        return compiled

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, object]:
        """One consistent snapshot of the cache counters."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "compiles": self._compiles,
                "evictions": self._evictions,
                "hit_rate": (self._hits / lookups) if lookups else None,
            }

    def reset_stats(self) -> None:
        with self._lock:
            self._hits = self._misses = self._compiles = self._evictions = 0


_formulation_cache = FormulationCache()
_formulation_cache_lock = threading.Lock()


def get_formulation_cache() -> FormulationCache:
    """The process-wide formulation cache shared by every solver invocation."""
    return _formulation_cache


def set_formulation_cache(cache: FormulationCache) -> FormulationCache:
    """Swap the process-wide cache (tests / isolation); returns the old one."""
    global _formulation_cache
    with _formulation_cache_lock:
        previous, _formulation_cache = _formulation_cache, cache
        return previous


_compiled_enabled = True


def compiled_formulation_enabled() -> bool:
    return _compiled_enabled


def set_compiled_formulation_enabled(enabled: bool) -> bool:
    """Toggle the compiled fast path globally; returns the previous setting.

    Disabling routes every solver through the loop-built
    :class:`~repro.solvers.formulation.MILPFormulation` -- the reference
    oracle the perf harness and the equivalence tests compare against.
    """
    global _compiled_enabled
    previous, _compiled_enabled = _compiled_enabled, bool(enabled)
    return previous


@contextmanager
def legacy_formulation():
    """Context manager: run the enclosed solves on the loop-built path."""
    previous = set_compiled_formulation_enabled(False)
    try:
        yield
    finally:
        set_compiled_formulation_enabled(previous)


def formulation_and_arrays(
    graph: DFGraph,
    budget: float,
    *,
    frontier_advancing: bool = True,
    num_stages: Optional[int] = None,
):
    """One entry point for the solvers: ``(formulation, solver-ready arrays)``.

    On the (default) compiled path the formulation comes from the per-process
    :class:`FormulationCache` and the arrays from :meth:`with_budget`; with the
    fast path disabled a loop-built :class:`MILPFormulation` is constructed and
    built.  Either way the first element exposes the uniform decode surface
    (``decode_matrices`` / ``decode_fractional`` / ``objective_value`` /
    ``describe``) and :class:`InfeasibleBudgetError` is raised for budgets
    below the constant overhead.
    """
    if compiled_formulation_enabled():
        compiled = get_formulation_cache().get(
            graph, frontier_advancing=frontier_advancing, num_stages=num_stages
        )
        return compiled, compiled.with_budget(budget)
    legacy = MILPFormulation(
        graph, budget, frontier_advancing=frontier_advancing, num_stages=num_stages
    )
    return legacy, legacy.build()
