"""Two-phase LP-rounding approximation algorithm (paper Section 5).

Solving the MILP exactly is NP-hard; for very deep or dense networks (the
paper cites DenseNet-161) no feasible solution is found within practical time
limits.  The paper therefore introduces a polynomial-time approximation:

1. solve the LP relaxation (§5.1),
2. round only the checkpoint matrix ``S*`` -- deterministically
   (``S_int = 1[S* > 0.5]``) or randomly (``Pr[S_int = 1] = S*``), and
3. complete the schedule with the conditionally optimal recomputation matrix
   ``R`` (phase two of Algorithm 2, implemented in
   :mod:`repro.solvers.min_r`), then recover ``FREE`` by simulation.

Because rounding ignores the memory budget, the LP is solved with an ``eps``
allowance (``U <= (1 - eps) * budget``, §5.3, default 0.1); the rounded
schedule's true peak memory is then checked against the *full* budget.

The module also reproduces the §5.1 negative results: naive deterministic or
randomized rounding of *both* ``R*`` and ``S*`` essentially never yields a
feasible schedule (the paper reports 0 feasible samples out of 50 000 for
VGG16 at a 4x reduced budget).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.dfgraph import DFGraph
from ..core.schedule import (
    ScheduleMatrices,
    ScheduledResult,
    schedule_compute_cost,
    validate_correctness_constraints,
)
from ..core.simulator import schedule_peak_memory
from ..utils.timer import Timer
from .common import build_scheduled_result
from .lp_relaxation import LPRelaxationResult, solve_lp_relaxation
from .min_r import solve_min_r

__all__ = [
    "APPROX_STRATEGY_NAME",
    "RoundingSample",
    "solve_approx_lp_rounding",
    "two_phase_round",
    "randomized_rounding_samples",
    "naive_rounding_feasibility",
]

APPROX_STRATEGY_NAME = "checkmate-approx-lp"


@dataclass
class RoundingSample:
    """One rounded schedule together with its metrics (one point of Figure 8)."""

    matrices: ScheduleMatrices
    compute_cost: float
    peak_memory: int
    feasible: bool
    mode: str


def two_phase_round(
    graph: DFGraph,
    S_fractional: np.ndarray,
    *,
    mode: str = "deterministic",
    threshold: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> ScheduleMatrices:
    """Algorithm 2: round ``S*`` and complete with the minimal feasible ``R``.

    Parameters
    ----------
    mode:
        ``"deterministic"`` thresholds at ``threshold``; ``"randomized"`` draws
        each entry as Bernoulli(``S*``).
    """
    S_frac = np.asarray(S_fractional, dtype=np.float64)
    if mode == "deterministic":
        S_int = (S_frac > threshold).astype(np.uint8)
    elif mode == "randomized":
        rng = rng or np.random.default_rng()
        S_int = (rng.random(S_frac.shape) < S_frac).astype(np.uint8)
    else:
        raise ValueError(f"unknown rounding mode {mode!r}")
    return solve_min_r(graph, S_int)


def solve_approx_lp_rounding(
    graph: DFGraph,
    budget: float,
    *,
    allowance: float = 0.1,
    mode: str = "deterministic",
    num_samples: int = 1,
    seed: int = 0,
    lp_result: Optional[LPRelaxationResult] = None,
    lp_time_limit_s: float = 600.0,
    strategy_name: str = APPROX_STRATEGY_NAME,
    generate_plan: bool = True,
) -> ScheduledResult:
    """The Checkmate approximation: LP relaxation + two-phase rounding.

    Parameters
    ----------
    budget:
        Memory budget in bytes.  The LP is solved at ``(1 - allowance) *
        budget`` (§5.3); the rounded schedule must fit the full budget.
    mode:
        ``"deterministic"`` (the paper's default, Table 2) or ``"randomized"``.
    num_samples:
        For randomized rounding, how many independent samples to draw; the
        cheapest feasible one is returned.
    lp_result:
        Optionally reuse an already-solved relaxation (e.g. when sweeping
        rounding strategies at a fixed budget, as in Figure 8).

    Returns
    -------
    :class:`ScheduledResult`; infeasible if the LP itself is infeasible or no
    rounded sample fits the budget.
    """
    if not (0.0 <= allowance < 1.0):
        raise ValueError("allowance must be in [0, 1)")
    with Timer() as timer:
        if lp_result is None:
            lp_result = solve_lp_relaxation(
                graph, budget * (1.0 - allowance), time_limit_s=lp_time_limit_s
            )
        if not lp_result.feasible or lp_result.S_fractional is None:
            return build_scheduled_result(
                strategy_name, graph, None, budget=int(budget), feasible=False,
                solver_status=f"lp-{lp_result.status}",
            )

        rng = np.random.default_rng(seed)
        samples = 1 if mode == "deterministic" else max(1, int(num_samples))
        best: Optional[ScheduleMatrices] = None
        best_cost = float("inf")
        best_peak = 0
        for _ in range(samples):
            matrices = two_phase_round(graph, lp_result.S_fractional, mode=mode, rng=rng)
            peak = schedule_peak_memory(graph, matrices)
            if peak > budget:
                continue
            cost = schedule_compute_cost(graph, matrices)
            if cost < best_cost:
                best, best_cost, best_peak = matrices, cost, peak

    if best is None:
        return build_scheduled_result(
            strategy_name, graph, None, budget=int(budget), feasible=False,
            solve_time_s=timer.elapsed, solver_status="rounding-exceeded-budget",
            extra={"lp_objective": lp_result.objective},
        )
    return build_scheduled_result(
        strategy_name, graph, best, budget=int(budget), feasible=True,
        solve_time_s=timer.elapsed + lp_result.solve_time_s, solver_status="ok",
        generate_plan=generate_plan, peak_memory=best_peak,
        extra={"lp_objective": lp_result.objective, "rounding_mode": mode,
               "allowance": allowance, "peak_memory_rounded": best_peak},
    )


def randomized_rounding_samples(
    graph: DFGraph,
    budget: float,
    lp_result: LPRelaxationResult,
    *,
    num_samples: int = 20,
    seed: int = 0,
) -> List[RoundingSample]:
    """Draw two-phase *randomized* rounding samples (the scatter points of Figure 8)."""
    if lp_result.S_fractional is None:
        raise ValueError("LP relaxation was infeasible; no fractional S to round")
    rng = np.random.default_rng(seed)
    out: List[RoundingSample] = []
    for _ in range(num_samples):
        matrices = two_phase_round(graph, lp_result.S_fractional, mode="randomized", rng=rng)
        cost = schedule_compute_cost(graph, matrices)
        peak = schedule_peak_memory(graph, matrices)
        out.append(RoundingSample(matrices=matrices, compute_cost=cost, peak_memory=peak,
                                  feasible=peak <= budget, mode="randomized"))
    return out


def naive_rounding_feasibility(
    graph: DFGraph,
    budget: float,
    lp_result: LPRelaxationResult,
    *,
    mode: str = "randomized",
    num_samples: int = 1000,
    threshold: float = 0.5,
    seed: int = 0,
) -> dict:
    """Reproduce the §5.1 negative result: naive rounding of both ``R*`` and ``S*``.

    Rounds the full fractional solution (not just ``S*``) and counts how many
    samples satisfy the correctness constraints *and* the memory budget.  With
    deterministic rounding a single "sample" is evaluated.

    Returns a dict with ``num_samples``, ``num_correct`` (dependency-feasible)
    and ``num_feasible`` (dependency-feasible and within budget).
    """
    if lp_result.R_fractional is None or lp_result.S_fractional is None:
        raise ValueError("LP relaxation was infeasible")
    rng = np.random.default_rng(seed)
    R_frac, S_frac = lp_result.R_fractional, lp_result.S_fractional
    n_samples = 1 if mode == "deterministic" else int(num_samples)

    num_correct = 0
    num_feasible = 0
    for _ in range(n_samples):
        if mode == "deterministic":
            R = (R_frac > threshold).astype(np.uint8)
            S = (S_frac > threshold).astype(np.uint8)
        else:
            R = (rng.random(R_frac.shape) < R_frac).astype(np.uint8)
            S = (rng.random(S_frac.shape) < S_frac).astype(np.uint8)
        np.fill_diagonal(R, 1)  # the frontier constraint is kept; rounding the rest
        matrices = ScheduleMatrices(R, S)
        violations = validate_correctness_constraints(graph, matrices)
        if violations:
            continue
        num_correct += 1
        if schedule_peak_memory(graph, matrices) <= budget:
            num_feasible += 1
    return {
        "mode": mode,
        "num_samples": n_samples,
        "num_correct": num_correct,
        "num_feasible": num_feasible,
    }
