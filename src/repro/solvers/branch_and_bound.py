"""A small, dependency-light branch-and-bound MILP solver.

This is *not* the production path (HiGHS via :mod:`repro.solvers.ilp` is), but
an independent exact solver used by the test-suite to cross-check the
formulation and the HiGHS results on tiny graphs.  It implements textbook
LP-based branch-and-bound: solve the continuous relaxation, pick a fractional
binary variable, branch on it (most-fractional first), and prune nodes whose
relaxation bound exceeds the incumbent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from ..core.dfgraph import DFGraph
from ..core.schedule import ScheduledResult
from ..utils.timer import Timer
from .common import build_scheduled_result
from .compiled import formulation_and_arrays
from .formulation import FormulationArrays, InfeasibleBudgetError

__all__ = [
    "BranchAndBoundResult",
    "solve_branch_and_bound",
    "solve_branch_and_bound_schedule",
]


@dataclass
class BranchAndBoundResult:
    """Solution found by the reference branch-and-bound solver."""

    x: Optional[np.ndarray]
    objective: float
    nodes_explored: int
    proven_optimal: bool
    status: str


def _solve_relaxation(arrays: FormulationArrays, lb: np.ndarray, ub: np.ndarray):
    res = milp(
        c=arrays.c,
        constraints=LinearConstraint(arrays.A, arrays.constraint_lb, arrays.constraint_ub),
        integrality=np.zeros_like(arrays.integrality),
        bounds=Bounds(lb, ub),
        options={"presolve": True},
    )
    return res


def solve_branch_and_bound(
    arrays: FormulationArrays,
    *,
    max_nodes: int = 2000,
    tolerance: float = 1e-6,
) -> BranchAndBoundResult:
    """Solve a (small) MILP described by :class:`FormulationArrays` exactly.

    Parameters
    ----------
    max_nodes:
        Hard cap on the number of branch-and-bound nodes; if reached the best
        incumbent found so far is returned with ``proven_optimal=False``.
    tolerance:
        Integrality tolerance for deciding whether a relaxation value is
        fractional.
    """
    integer_vars = np.flatnonzero(arrays.integrality > 0)
    best_x: Optional[np.ndarray] = None
    best_obj = np.inf
    nodes_explored = 0

    # Each stack entry is a (lb, ub) pair of variable bounds.
    stack: List[Tuple[np.ndarray, np.ndarray]] = [(arrays.lb.copy(), arrays.ub.copy())]

    while stack and nodes_explored < max_nodes:
        lb, ub = stack.pop()
        nodes_explored += 1
        res = _solve_relaxation(arrays, lb, ub)
        if res.x is None:
            continue  # infeasible subproblem
        obj = float(arrays.c @ res.x)
        if obj >= best_obj - tolerance:
            continue  # bound: cannot beat the incumbent
        x = np.asarray(res.x)
        frac = np.abs(x[integer_vars] - np.round(x[integer_vars]))
        most_fractional = int(np.argmax(frac))
        if frac[most_fractional] <= tolerance:
            # Integral solution: new incumbent.
            best_x = np.round(x * (arrays.integrality > 0)) + x * (arrays.integrality == 0)
            best_obj = obj
            continue
        var = int(integer_vars[most_fractional])
        value = x[var]
        # Branch: floor branch and ceil branch (LIFO -> dive on the ceil first).
        lb_floor, ub_floor = lb.copy(), ub.copy()
        ub_floor[var] = np.floor(value)
        lb_ceil, ub_ceil = lb.copy(), ub.copy()
        lb_ceil[var] = np.ceil(value)
        stack.append((lb_floor, ub_floor))
        stack.append((lb_ceil, ub_ceil))

    proven = len(stack) == 0
    status = "optimal" if (best_x is not None and proven) else (
        "node-limit" if best_x is not None else "infeasible-or-node-limit"
    )
    return BranchAndBoundResult(
        x=best_x,
        objective=best_obj if best_x is not None else np.inf,
        nodes_explored=nodes_explored,
        proven_optimal=proven and best_x is not None,
        status=status,
    )


def solve_branch_and_bound_schedule(
    graph: DFGraph,
    budget: float,
    *,
    max_nodes: int = 2000,
    generate_plan: bool = True,
    strategy_name: str = "checkmate-bnb",
) -> ScheduledResult:
    """Uniform-signature driver: build the MILP for a graph and solve it here.

    This wraps :func:`solve_branch_and_bound` behind the same
    ``solve(graph, budget, **options) -> ScheduledResult`` contract every other
    strategy follows, so the reference solver can be registered with the solve
    service and cross-checked against HiGHS through the ordinary sweep path.
    Only sensible for tiny graphs (tens of nodes).
    """
    try:
        formulation, arrays = formulation_and_arrays(graph, budget, frontier_advancing=True)
    except InfeasibleBudgetError as exc:
        return build_scheduled_result(
            strategy_name, graph, None, budget=int(budget), feasible=False,
            solver_status=f"infeasible-budget: {exc}",
        )

    with Timer() as timer:
        res = solve_branch_and_bound(arrays, max_nodes=max_nodes)
    if res.x is None:
        return build_scheduled_result(
            strategy_name, graph, None, budget=int(budget), feasible=False,
            solve_time_s=timer.elapsed, solver_status=res.status,
        )
    matrices = formulation.decode_matrices(np.asarray(res.x))
    return build_scheduled_result(
        strategy_name, graph, matrices, budget=int(budget), feasible=True,
        solve_time_s=timer.elapsed, solver_status=res.status,
        generate_plan=generate_plan,
        extra={"nodes_explored": res.nodes_explored,
               "proven_optimal": res.proven_optimal},
    )
