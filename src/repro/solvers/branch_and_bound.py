"""A small, dependency-light branch-and-bound MILP solver.

This is *not* the production path (HiGHS via :mod:`repro.solvers.ilp` is), but
an independent exact solver used by the test-suite to cross-check the
formulation and the HiGHS results on tiny graphs.  It implements textbook
LP-based branch-and-bound: solve the continuous relaxation, pick a fractional
binary variable, branch on it (most-fractional first), and prune nodes whose
relaxation bound exceeds the incumbent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from ..core.dfgraph import DFGraph
from ..core.schedule import ScheduledResult
from ..utils.timer import Timer
from .common import build_scheduled_result
from .compiled import CompiledFormulation, formulation_and_arrays
from .formulation import FormulationArrays, InfeasibleBudgetError

__all__ = [
    "BranchAndBoundResult",
    "solve_branch_and_bound",
    "solve_branch_and_bound_schedule",
]


@dataclass
class BranchAndBoundResult:
    """Solution found by the reference branch-and-bound solver."""

    x: Optional[np.ndarray]
    objective: float
    nodes_explored: int
    proven_optimal: bool
    status: str


def _solve_relaxation(arrays: FormulationArrays, lb: np.ndarray, ub: np.ndarray):
    res = milp(
        c=arrays.c,
        constraints=LinearConstraint(arrays.A, arrays.constraint_lb, arrays.constraint_ub),
        integrality=np.zeros_like(arrays.integrality),
        bounds=Bounds(lb, ub),
        options={"presolve": True},
    )
    return res


def solve_branch_and_bound(
    arrays: FormulationArrays,
    *,
    max_nodes: int = 2000,
    tolerance: float = 1e-6,
    cutoff: Optional[float] = None,
) -> BranchAndBoundResult:
    """Solve a (small) MILP described by :class:`FormulationArrays` exactly.

    Parameters
    ----------
    max_nodes:
        Hard cap on the number of branch-and-bound nodes; if reached the best
        incumbent found so far is returned with ``proven_optimal=False``.
    tolerance:
        Integrality tolerance for deciding whether a relaxation value is
        fractional.
    cutoff:
        Objective value (same units as ``arrays.c @ x``) of an external
        incumbent, e.g. the neighboring budget's warm seed.  The search starts
        with this as its pruning bound, so whole subtrees that cannot beat it
        are discarded without branching.  If the search exhausts without
        finding anything strictly better, the result has ``x=None`` and status
        ``"cutoff-optimal"``: the caller's incumbent -- known feasible by the
        caller -- is optimal within ``tolerance``.
    """
    integer_vars = np.flatnonzero(arrays.integrality > 0)
    best_x: Optional[np.ndarray] = None
    best_obj = float(cutoff) if cutoff is not None else np.inf
    nodes_explored = 0

    # Each stack entry is a (lb, ub) pair of variable bounds.
    stack: List[Tuple[np.ndarray, np.ndarray]] = [(arrays.lb.copy(), arrays.ub.copy())]

    while stack and nodes_explored < max_nodes:
        lb, ub = stack.pop()
        nodes_explored += 1
        res = _solve_relaxation(arrays, lb, ub)
        if res.x is None:
            continue  # infeasible subproblem
        obj = float(arrays.c @ res.x)
        if obj >= best_obj - tolerance:
            continue  # bound: cannot beat the incumbent
        x = np.asarray(res.x)
        frac = np.abs(x[integer_vars] - np.round(x[integer_vars]))
        most_fractional = int(np.argmax(frac))
        if frac[most_fractional] <= tolerance:
            # Integral solution: new incumbent.
            best_x = np.round(x * (arrays.integrality > 0)) + x * (arrays.integrality == 0)
            best_obj = obj
            continue
        var = int(integer_vars[most_fractional])
        value = x[var]
        # Branch: floor branch and ceil branch (LIFO -> dive on the ceil first).
        lb_floor, ub_floor = lb.copy(), ub.copy()
        ub_floor[var] = np.floor(value)
        lb_ceil, ub_ceil = lb.copy(), ub.copy()
        lb_ceil[var] = np.ceil(value)
        stack.append((lb_floor, ub_floor))
        stack.append((lb_ceil, ub_ceil))

    proven = len(stack) == 0
    if best_x is not None:
        status = "optimal" if proven else "node-limit"
    elif proven and cutoff is not None:
        # Exhausted the tree without beating the external incumbent: nothing
        # better than `cutoff` exists (the incumbent itself lives outside this
        # search, so x stays None and the caller reuses its seed).
        status = "cutoff-optimal"
    else:
        status = "infeasible-or-node-limit"
    return BranchAndBoundResult(
        x=best_x,
        objective=best_obj if best_x is not None else np.inf,
        nodes_explored=nodes_explored,
        proven_optimal=proven and (best_x is not None or cutoff is not None),
        status=status,
    )


def solve_branch_and_bound_schedule(
    graph: DFGraph,
    budget: float,
    *,
    max_nodes: int = 2000,
    generate_plan: bool = True,
    strategy_name: str = "checkmate-bnb",
    warm_start: Optional["WarmSeed"] = None,
) -> ScheduledResult:
    """Uniform-signature driver: build the MILP for a graph and solve it here.

    This wraps :func:`solve_branch_and_bound` behind the same
    ``solve(graph, budget, **options) -> ScheduledResult`` contract every other
    strategy follows, so the reference solver can be registered with the solve
    service and cross-checked against HiGHS through the ordinary sweep path.
    Only sensible for tiny graphs (tens of nodes).

    ``warm_start`` (a :class:`~repro.solvers.warm.WarmSeed`, typically the
    neighboring larger budget's tightened incumbent) short-circuits the search:
    a proven-optimal seed that fits the budget is reused outright, and an
    unproven one primes the branch-and-bound pruning bound (``cutoff``) so only
    strictly better schedules are ever accepted.
    """
    from .warm import WarmSeed, budget_floor_margin  # noqa: F401 (typing)

    try:
        formulation, arrays = formulation_and_arrays(graph, budget, frontier_advancing=True)
    except InfeasibleBudgetError as exc:
        return build_scheduled_result(
            strategy_name, graph, None, budget=int(budget), feasible=False,
            solver_status=f"infeasible-budget: {exc}",
        )

    compiled = formulation if isinstance(formulation, CompiledFormulation) else None
    if compiled is not None:
        if compiled.known_infeasible_budget(budget, integral=True):
            return build_scheduled_result(
                strategy_name, graph, None, budget=int(budget), feasible=False,
                solver_status="infeasible-memo",
                extra={"infeasible_shortcut": "memo"},
            )
        floor = compiled.budget_floor()
        if budget < floor - budget_floor_margin(graph):
            compiled.note_infeasible_budget(budget, integral=True)
            return build_scheduled_result(
                strategy_name, graph, None, budget=int(budget), feasible=False,
                solver_status="infeasible-below-floor",
                extra={"infeasible_shortcut": "floor", "budget_floor": floor},
            )

    seed = warm_start if (warm_start is not None and warm_start.fits(budget)) else None
    if seed is not None and seed.proven_optimal:
        # Monotonicity: optimal at the larger source budget and it fits here,
        # so it is optimal here -- no search needed.
        return build_scheduled_result(
            strategy_name, graph, seed.matrices, budget=int(budget), feasible=True,
            solver_status="warm-reused-optimal", generate_plan=generate_plan,
            extra={"nodes_explored": 0, "proven_optimal": True,
                   "warm_start": {"used": True, "kind": "incumbent_prune",
                                  "source_budget": seed.source_budget}},
        )

    cost_scale = max(float(graph.cost_vector.max()), 1e-12)
    cutoff = seed.objective / cost_scale if seed is not None else None
    with Timer() as timer:
        res = solve_branch_and_bound(arrays, max_nodes=max_nodes, cutoff=cutoff)

    if res.x is None and seed is not None:
        # The seed is feasible here, so the MILP is not infeasible: either the
        # search proved nothing beats the seed (cutoff-optimal) or it hit the
        # node limit without improving on it.  Either way the seed stands.
        status = ("warm-cutoff-optimal" if res.status == "cutoff-optimal"
                  else "node-limit-warm-incumbent")
        return build_scheduled_result(
            strategy_name, graph, seed.matrices, budget=int(budget), feasible=True,
            solve_time_s=timer.elapsed, solver_status=status,
            generate_plan=generate_plan,
            extra={"nodes_explored": res.nodes_explored,
                   "proven_optimal": res.proven_optimal,
                   "warm_start": {"used": True, "kind": "bound_skip",
                                  "source_budget": seed.source_budget}},
        )
    if res.x is None:
        return build_scheduled_result(
            strategy_name, graph, None, budget=int(budget), feasible=False,
            solve_time_s=timer.elapsed, solver_status=res.status,
        )
    matrices = formulation.decode_matrices(np.asarray(res.x))
    extra = {"nodes_explored": res.nodes_explored,
             "proven_optimal": res.proven_optimal}
    if seed is not None:
        extra["warm_start"] = {"used": True, "kind": "seeded",
                               "source_budget": seed.source_budget}
    return build_scheduled_result(
        strategy_name, graph, matrices, budget=int(budget), feasible=True,
        solve_time_s=timer.elapsed, solver_status=res.status,
        generate_plan=generate_plan, extra=extra,
    )
