"""The four-scheme LP-rounding portfolio (paper §5.2 generalized).

The legacy :mod:`repro.solvers.approximation` module implements exactly one
point of the rounding design space: the paper's two-phase rounding with a
fixed 0.5 threshold (plus a randomized mode for the Figure 8 scatter).  This
module carries the full portfolio, every scheme operating on the *same*
compiled-formulation LP relaxation and completing through the same
``solve_min_r`` / ``decode`` path:

``threshold_sweep``
    Deterministic sweep over candidate thresholds drawn from the unique
    fractional values of ``S*`` (0.5 always included); among feasible rounded
    schedules the cheapest wins.  Dominates ``fixed_half`` by construction.
``random_threshold``
    ``num_samples`` thresholds drawn uniformly from ``(0, 1)`` with a seeded
    generator; cheapest feasible rounding wins.
``fixed_half``
    The paper's single 0.5 threshold -- bit-identical to the legacy
    deterministic two-phase rounding (the differential suite asserts this).
``randomized``
    Fully randomized rounding (``Pr[S_int = 1] = S*``) with feasibility
    retries: up to ``num_samples`` Bernoulli draws, cheapest feasible wins.
    The draw stream matches the legacy randomized mode exactly for equal
    seeds, keeping the two paths differentially testable.

Because the budget only enters the LP through one bound slice (see
:mod:`repro.solvers.compiled`), all four schemes -- and the race meta-solver
fanning them out concurrently -- share **one** LP relaxation solve per
``(graph, lp-budget)`` through the process-wide single-flight
:class:`LPRelaxationCache` below.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..core.dfgraph import DFGraph
from ..core.schedule import ScheduleMatrices, ScheduledResult, schedule_compute_cost
from ..core.simulator import schedule_peak_memory
from ..obs.trace import get_tracer
from ..utils.timer import Timer
from .common import build_scheduled_result
from .lp_relaxation import LPRelaxationResult, solve_lp_relaxation
from .min_r import solve_min_r

__all__ = [
    "PORTFOLIO_SCHEMES",
    "PORTFOLIO_STRATEGY_KEYS",
    "LPRelaxationCache",
    "get_lp_relaxation_cache",
    "set_lp_relaxation_cache",
    "solve_rounding_portfolio",
    "solve_portfolio_threshold_sweep",
    "solve_portfolio_random_threshold",
    "solve_portfolio_fixed_half",
    "solve_portfolio_randomized",
]

#: Scheme name -> registry strategy key.  Ordering matters: it is the default
#: entrant order of the race meta-solver (cheapest first).
PORTFOLIO_SCHEMES: Tuple[str, ...] = (
    "fixed_half", "threshold_sweep", "random_threshold", "randomized",
)
PORTFOLIO_STRATEGY_KEYS: Tuple[str, ...] = tuple(
    f"approx_{scheme}" for scheme in PORTFOLIO_SCHEMES
)


class LPRelaxationCache:
    """Per-process LRU of LP relaxation solves keyed by graph structure + budget.

    The fractional ``(R*, S*)`` depends only on what the formulation arrays are
    built from (costs, memories, edges, overhead -- the structural hash) plus
    the LP budget, so every portfolio scheme rounding the same relaxation --
    four race entrants at one budget, or a threshold study at a fixed
    allowance -- pays for exactly one HiGHS LP solve.  The time limit is
    deliberately NOT part of the key: only *settled* relaxations are cached
    (optimal or proven infeasible), and those verdicts are limit-independent
    -- keying on the limit would shatter the race path, where each entrant
    clamps its limit to the slightly different time remaining at its start.
    A time-limit-truncated status is load-dependent and is handed back
    without being stored.  Lookups are single-flighted like the
    :class:`~repro.solvers.compiled.FormulationCache`: concurrent cold-key
    callers block on one solver thread instead of each solving the LP.
    """

    def __init__(self, max_entries: int = 128) -> None:
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, LPRelaxationResult]" = OrderedDict()
        self._building: Dict[tuple, threading.Event] = {}
        self._hits = 0
        self._misses = 0
        self._solves = 0
        self._evictions = 0

    @staticmethod
    def _key(graph: DFGraph, budget: float) -> tuple:
        from ..analysis.analyses import structural_graph_hash

        return (structural_graph_hash(graph), float(budget))

    def get(self, graph: DFGraph, budget: float, *,
            time_limit_s: float = 600.0) -> LPRelaxationResult:
        """Return the (possibly cached) LP relaxation at ``budget``."""
        key = self._key(graph, budget)
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    return entry
                waiter = self._building.get(key)
                if waiter is None:
                    self._building[key] = threading.Event()
                    self._misses += 1
                    break
            waiter.wait()
        try:
            result = solve_lp_relaxation(graph, budget, time_limit_s=time_limit_s)
        except BaseException:
            with self._lock:
                self._building.pop(key).set()
            raise
        settled = result.status in ("optimal", "infeasible") or \
            result.status.startswith("infeasible")
        with self._lock:
            self._solves += 1
            if settled and self.max_entries > 0:
                self._entries[key] = result
                self._entries.move_to_end(key)
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self._evictions += 1
            self._building.pop(key).set()
        return result

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "solves": self._solves,
                "evictions": self._evictions,
            }


_lp_cache = LPRelaxationCache()
_lp_cache_lock = threading.Lock()


def get_lp_relaxation_cache() -> LPRelaxationCache:
    """The process-wide shared LP relaxation cache."""
    return _lp_cache


def set_lp_relaxation_cache(cache: LPRelaxationCache) -> LPRelaxationCache:
    """Swap the process-wide LP cache (tests); returns the previous one."""
    global _lp_cache
    with _lp_cache_lock:
        previous, _lp_cache = _lp_cache, cache
        return previous


def _candidate_thresholds(S_frac: np.ndarray, scheme: str, num_samples: int,
                          rng: np.random.Generator) -> np.ndarray:
    """The thresholds one scheme tries, in evaluation order."""
    if scheme == "fixed_half":
        return np.array([0.5])
    if scheme == "random_threshold":
        return rng.uniform(0.0, 1.0, size=max(1, num_samples))
    if scheme == "threshold_sweep":
        # Every threshold strictly between two adjacent fractional values of
        # S* rounds identically, so the unique values themselves enumerate all
        # distinct deterministic roundings.  Cap the sweep at ``num_samples``
        # evenly spaced picks to bound min-R completions on dense relaxations;
        # 0.5 is always included so the sweep dominates ``fixed_half``.
        unique = np.unique(S_frac[(S_frac > 0.0) & (S_frac < 1.0)])
        if unique.size > max(1, num_samples) - 1:
            picks = np.linspace(0, unique.size - 1,
                                max(1, num_samples) - 1).round().astype(int)
            unique = unique[np.unique(picks)]
        return np.unique(np.append(unique, 0.5))
    raise ValueError(f"unknown portfolio scheme {scheme!r}")


_DEFAULT_SAMPLES = {
    "fixed_half": 1,
    "threshold_sweep": 32,
    "random_threshold": 16,
    "randomized": 32,
}


def solve_rounding_portfolio(
    graph: DFGraph,
    budget: Optional[float] = None,
    *,
    scheme: str = "threshold_sweep",
    allowance: float = 0.1,
    num_samples: Optional[int] = None,
    seed: int = 0,
    lp_time_limit_s: float = 600.0,
    lp_result: Optional[LPRelaxationResult] = None,
    generate_plan: bool = True,
    strategy_name: Optional[str] = None,
    should_cancel: Optional[Callable[[], bool]] = None,
) -> ScheduledResult:
    """Solve via one portfolio scheme: shared LP relaxation + rounding search.

    The LP is solved at ``(1 - allowance) * budget`` (§5.3) through the
    process-wide :class:`LPRelaxationCache`; each rounded candidate is
    completed with the conditionally optimal ``R`` (:func:`solve_min_r`) and
    checked against the *full* budget.  ``num_samples`` bounds the number of
    candidates (thresholds or Bernoulli draws; default per scheme).

    ``should_cancel`` makes the candidate loop cooperative: when the hook
    fires mid-search the solve stops and returns the best candidate found so
    far (status ``"ok-cancelled"``) or an infeasible ``"cancelled"`` result --
    never an exception -- so a racing deadline can reap stragglers cheaply.
    """
    if budget is None:
        raise ValueError("the rounding portfolio requires a memory budget")
    if scheme not in PORTFOLIO_SCHEMES:
        raise ValueError(
            f"unknown portfolio scheme {scheme!r}; known: {PORTFOLIO_SCHEMES}")
    if not (0.0 <= allowance < 1.0):
        raise ValueError("allowance must be in [0, 1)")
    strategy_name = strategy_name or f"approx_{scheme}"
    samples = int(num_samples) if num_samples is not None \
        else _DEFAULT_SAMPLES[scheme]

    tracer = get_tracer()
    with Timer() as timer, tracer.span("portfolio-round", scheme=scheme):
        if lp_result is None:
            lp_result = get_lp_relaxation_cache().get(
                graph, budget * (1.0 - allowance), time_limit_s=lp_time_limit_s)
        if not lp_result.feasible or lp_result.S_fractional is None:
            return build_scheduled_result(
                strategy_name, graph, None, budget=int(budget), feasible=False,
                solve_time_s=lp_result.solve_time_s,
                solver_status=f"lp-{lp_result.status}",
                extra={"portfolio": {"scheme": scheme, "allowance": allowance}},
            )

        S_frac = np.asarray(lp_result.S_fractional, dtype=np.float64)
        rng = np.random.default_rng(seed)
        best: Optional[ScheduleMatrices] = None
        best_cost = float("inf")
        best_peak = 0
        best_threshold: Optional[float] = None
        attempts = 0
        feasible_candidates = 0
        cancelled = False

        if scheme == "randomized":
            # Feasibility retries: up to ``samples`` Bernoulli draws.  The
            # draw stream (one rng.random(S.shape) per attempt) is identical
            # to the legacy randomized mode so equal seeds round identically.
            for _ in range(max(1, samples)):
                if should_cancel is not None and should_cancel():
                    cancelled = True
                    break
                S_int = (rng.random(S_frac.shape) < S_frac).astype(np.uint8)
                attempts += 1
                matrices = solve_min_r(graph, S_int)
                peak = schedule_peak_memory(graph, matrices)
                if peak > budget:
                    continue
                feasible_candidates += 1
                cost = schedule_compute_cost(graph, matrices)
                if cost < best_cost:
                    best, best_cost, best_peak = matrices, cost, peak
        else:
            thresholds = _candidate_thresholds(S_frac, scheme, samples, rng)
            for threshold in thresholds:
                if should_cancel is not None and should_cancel():
                    cancelled = True
                    break
                S_int = (S_frac > threshold).astype(np.uint8)
                attempts += 1
                matrices = solve_min_r(graph, S_int)
                peak = schedule_peak_memory(graph, matrices)
                if peak > budget:
                    continue
                feasible_candidates += 1
                cost = schedule_compute_cost(graph, matrices)
                if cost < best_cost:
                    best, best_cost, best_peak = matrices, cost, peak
                    best_threshold = float(threshold)

    provenance = {
        "scheme": scheme,
        "allowance": allowance,
        "attempts": attempts,
        "feasible_candidates": feasible_candidates,
        "cancelled": cancelled,
    }
    if best_threshold is not None:
        provenance["best_threshold"] = best_threshold
    extra = {"lp_objective": lp_result.objective, "portfolio": provenance}
    if best is None:
        return build_scheduled_result(
            strategy_name, graph, None, budget=int(budget), feasible=False,
            solve_time_s=timer.elapsed,
            solver_status="cancelled" if cancelled else "rounding-exceeded-budget",
            extra=extra,
        )
    return build_scheduled_result(
        strategy_name, graph, best, budget=int(budget), feasible=True,
        solve_time_s=timer.elapsed + lp_result.solve_time_s,
        solver_status="ok-cancelled" if cancelled else "ok",
        generate_plan=generate_plan, peak_memory=best_peak, extra=extra,
    )


def _scheme_solver(scheme: str) -> Callable[..., ScheduledResult]:
    def solve(graph: DFGraph, budget: Optional[float] = None,
              **kwargs: object) -> ScheduledResult:
        return solve_rounding_portfolio(graph, budget, scheme=scheme, **kwargs)

    solve.__name__ = f"solve_portfolio_{scheme}"
    solve.__qualname__ = solve.__name__
    solve.__doc__ = (f"Portfolio scheme {scheme!r} behind the uniform "
                     f"``solve(graph, budget, **options)`` contract.")
    return solve


solve_portfolio_threshold_sweep = _scheme_solver("threshold_sweep")
solve_portfolio_random_threshold = _scheme_solver("random_threshold")
solve_portfolio_fixed_half = _scheme_solver("fixed_half")
solve_portfolio_randomized = _scheme_solver("randomized")
