"""Optimal rematerialization via mixed-integer linear programming (paper §4).

:func:`solve_ilp_rematerialization` is the reproduction of Checkmate's core
solver: it builds the MILP of Eq. (9) (or the unpartitioned Eq. (8) variant)
with :class:`~repro.solvers.formulation.MILPFormulation` and hands it to the
HiGHS branch-and-cut solver bundled with SciPy -- the drop-in replacement for
the Gurobi/COIN-OR solvers used in the paper.  The optimal ``(R, S)`` matrices
are then lowered to an execution plan and packaged with their cost and peak
memory.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.optimize import LinearConstraint, milp
from scipy.optimize import Bounds

from ..core.dfgraph import DFGraph
from ..core.schedule import ScheduledResult
from ..obs.trace import get_tracer
from ..utils.timer import Timer
from .common import build_scheduled_result
from .compiled import CompiledFormulation, formulation_and_arrays
from .formulation import InfeasibleBudgetError

__all__ = ["solve_ilp_rematerialization", "ILP_STRATEGY_NAME"]

ILP_STRATEGY_NAME = "checkmate-ilp"

# scipy.optimize.milp status codes.
_STATUS_OPTIMAL = 0
_STATUS_LIMIT = 1
_STATUS_INFEASIBLE = 2
_STATUS_UNBOUNDED = 3


def solve_ilp_rematerialization(
    graph: DFGraph,
    budget: float,
    *,
    time_limit_s: float = 3600.0,
    mip_gap: float = 1e-4,
    frontier_advancing: bool = True,
    num_stages: Optional[int] = None,
    generate_plan: bool = True,
    strategy_name: str = ILP_STRATEGY_NAME,
    warm_start: Optional["WarmSeed"] = None,
) -> ScheduledResult:
    """Solve the rematerialization MILP for a graph under a memory budget.

    Parameters
    ----------
    graph:
        Training graph (forward + backward) with per-node cost and memory.
    budget:
        Memory budget in bytes (same unit as the graph's node memories).
    time_limit_s:
        Wall-clock limit handed to the branch-and-cut solver; the paper uses
        3600 s.  If the limit is hit with an incumbent, the incumbent schedule
        is returned with ``solver_status='time_limit'``.
    mip_gap:
        Relative optimality gap at which the solver may stop.
    frontier_advancing:
        Use the partitioned formulation (§4.6).  Setting this to ``False``
        reproduces the much slower unpartitioned baseline of Appendix A.
    num_stages:
        Stage count for the unpartitioned variant (defaults to ``graph.size``).
    warm_start:
        A :class:`~repro.solvers.warm.WarmSeed` from a neighboring (larger)
        budget.  SciPy's ``milp`` cannot accept an incumbent, so the seed is
        exploited around the solver instead: a proven-optimal seed that fits is
        reused outright (``warm-reused-optimal``); an unproven one is certified
        against the cell's LP-relaxation lower bound and, when its objective
        already matches within ``mip_gap``, the integer solve is skipped
        (``warm-bound-skip``); otherwise the MILP runs cold and the seed only
        backstops a time-limit miss.

    Returns
    -------
    :class:`ScheduledResult`; ``feasible`` is ``False`` when the solver proves
    infeasibility or finds no incumbent within the limit.
    """
    try:
        # Compiled fast path: the budget-independent arrays come from the
        # per-process FormulationCache (one compile per graph, shared across
        # a whole budget sweep); only the U-variable bounds are budget-bound.
        formulation, arrays = formulation_and_arrays(
            graph, budget, frontier_advancing=frontier_advancing, num_stages=num_stages
        )
    except InfeasibleBudgetError as exc:
        return build_scheduled_result(
            strategy_name, graph, None, budget=int(budget), feasible=False,
            solver_status=f"infeasible-budget: {exc}",
        )

    compiled = formulation if isinstance(formulation, CompiledFormulation) else None
    if compiled is not None and frontier_advancing:
        # Learned-infeasibility memo and the arithmetic budget floor: both are
        # monotone in budget, so cells at or below a known-infeasible budget
        # (or meaningfully below the floor) never need to reach HiGHS.
        if compiled.known_infeasible_budget(budget, integral=True):
            return build_scheduled_result(
                strategy_name, graph, None, budget=int(budget), feasible=False,
                solver_status="infeasible-memo",
                extra={"infeasible_shortcut": "memo"},
            )
        from .warm import budget_floor_margin

        floor = compiled.budget_floor()
        if budget < floor - budget_floor_margin(graph):
            compiled.note_infeasible_budget(budget, integral=True)
            return build_scheduled_result(
                strategy_name, graph, None, budget=int(budget), feasible=False,
                solver_status="infeasible-below-floor",
                extra={"infeasible_shortcut": "floor", "budget_floor": floor},
            )

    seed = warm_start if (warm_start is not None and warm_start.fits(budget)) else None
    if seed is not None and seed.proven_optimal:
        # Monotonicity: the seed is (gap-)optimal at its larger source budget
        # and fits this one, so it is (gap-)optimal here too.  Zero HiGHS work.
        return build_scheduled_result(
            strategy_name, graph, seed.matrices, budget=int(budget), feasible=True,
            solver_status="warm-reused-optimal", generate_plan=generate_plan,
            frontier_advancing=frontier_advancing,
            extra={"formulation": formulation.describe(), "proven_optimal": True,
                   "warm_start": {"used": True, "kind": "incumbent_prune",
                                  "source_budget": seed.source_budget}},
        )
    if seed is not None:
        # LP-certificate fast exit: the relaxation's objective is a valid lower
        # bound on the integer optimum.  If the unproven seed already matches
        # it within the MIP gap, it is gap-optimal -- skip the integer solve.
        from .lp_relaxation import solve_lp_relaxation

        with get_tracer().span("lp-bound"):
            lp = solve_lp_relaxation(
                graph, budget, frontier_advancing=frontier_advancing,
                num_stages=num_stages, time_limit_s=time_limit_s,
            )
        if lp.feasible and seed.objective <= lp.objective * (1.0 + mip_gap):
            return build_scheduled_result(
                strategy_name, graph, seed.matrices, budget=int(budget),
                feasible=True, solve_time_s=lp.solve_time_s,
                solver_status="warm-bound-skip", generate_plan=generate_plan,
                frontier_advancing=frontier_advancing,
                extra={"formulation": formulation.describe(),
                       "objective_lower_bound": lp.objective,
                       "proven_optimal": True,
                       "warm_start": {"used": True, "kind": "bound_skip",
                                      "source_budget": seed.source_budget}},
            )

    constraints = LinearConstraint(arrays.A, arrays.constraint_lb, arrays.constraint_ub)
    bounds = Bounds(arrays.lb, arrays.ub)

    with Timer() as timer, get_tracer().span("ilp-solve", budget=float(budget)):
        res = milp(
            c=arrays.c,
            constraints=constraints,
            integrality=arrays.integrality,
            bounds=bounds,
            options={
                "time_limit": float(time_limit_s),
                "mip_rel_gap": float(mip_gap),
                "presolve": True,
            },
        )

    status_map = {
        _STATUS_OPTIMAL: "optimal",
        _STATUS_LIMIT: "time_limit",
        _STATUS_INFEASIBLE: "infeasible",
        _STATUS_UNBOUNDED: "unbounded",
    }
    status = status_map.get(res.status, f"solver-status-{res.status}")

    if res.x is None:
        if status == "infeasible" and compiled is not None and frontier_advancing:
            # Feed the learned-infeasibility memo: every budget at or below
            # this one is infeasible too and will short-circuit from now on.
            compiled.note_infeasible_budget(budget, integral=True)
        if seed is not None:
            # The seed is feasible at this budget, so "no incumbent within the
            # time limit" still has a valid schedule to fall back on.
            return build_scheduled_result(
                strategy_name, graph, seed.matrices, budget=int(budget),
                feasible=True, solve_time_s=timer.elapsed,
                solver_status=f"{status}-warm-incumbent",
                generate_plan=generate_plan,
                frontier_advancing=frontier_advancing,
                extra={"formulation": formulation.describe(),
                       "warm_start": {"used": True, "kind": "seeded",
                                      "source_budget": seed.source_budget}},
            )
        return build_scheduled_result(
            strategy_name, graph, None, budget=int(budget), feasible=False,
            solve_time_s=timer.elapsed, solver_status=status,
            extra={"formulation": formulation.describe()},
        )

    with get_tracer().span("decode"):
        matrices = formulation.decode_matrices(np.asarray(res.x))
    extra = {
        "formulation": formulation.describe(),
        "objective_lower_bound": getattr(res, "mip_dual_bound", None),
        "mip_gap": getattr(res, "mip_gap", None),
        "mip_node_count": getattr(res, "mip_node_count", None),
    }
    if seed is not None:
        extra["warm_start"] = {"used": True, "kind": "seeded",
                               "source_budget": seed.source_budget}
        if formulation.objective_value(np.asarray(res.x)) > seed.objective:
            # HiGHS stopped (time limit / gap) on an incumbent worse than the
            # seed we already hold; keep the better schedule.
            return build_scheduled_result(
                strategy_name, graph, seed.matrices, budget=int(budget),
                feasible=True, solve_time_s=timer.elapsed,
                solver_status=f"{status}-warm-incumbent",
                generate_plan=generate_plan,
                frontier_advancing=frontier_advancing, extra=extra,
            )
    return build_scheduled_result(
        strategy_name,
        graph,
        matrices,
        budget=int(budget),
        feasible=True,
        solve_time_s=timer.elapsed,
        solver_status=status,
        generate_plan=generate_plan,
        frontier_advancing=frontier_advancing,
        extra=extra,
    )
