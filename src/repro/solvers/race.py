"""Deadline-racing meta-solver: the best feasible schedule within an SLO.

Exact MILP solves are the quality ceiling but have unbounded tail latency;
the rounding portfolio answers in near-LP time but leaves objective on the
table.  ``race`` serves both masters: it fans the cheap portfolio schemes
*plus* the exact ILP out over a thread pool (the same ``ThreadPoolExecutor``
fan-out the sweep executor uses -- HiGHS releases the GIL, so entrants
genuinely overlap), imposes a caller-supplied ``deadline_s``, and returns the
best feasible schedule any entrant produced in time.

Deadline discipline is belt and braces:

* every entrant's HiGHS time limit (``time_limit_s`` / ``lp_time_limit_s``)
  is clamped to the time remaining when it starts, so solvers stop themselves
  at the deadline rather than running long;
* a cooperative cancel hook (the same ``should_cancel`` contract the solve
  service uses) is handed to every entrant that accepts one
  (``SolverSpec.accepts_should_cancel``), reaping portfolio candidate loops
  between roundings;
* entrants still queued when the deadline fires are cancelled before they
  start, and the pool is joined before returning -- no leaked threads.

The returned result carries structured ``extra["race"]`` provenance --
per-entrant wall time, status and objective, the winner, and whether the
deadline fired -- which flows through ``result_to_wire`` into ``POST
/v1/solve`` responses, and into ``statistics()`` / ``/v1/metrics`` via
:meth:`~repro.service.solve.SolveStats.record_race`.

Caching note: a feasible race result is a valid schedule and caches like any
other, but the cache key includes ``deadline_s`` (it is part of the race's
option map), so results raced under different SLOs never alias.  Infeasible
race verdicts (``race-no-feasible``, ``race-deadline-exhausted``) are
load-dependent and deliberately *not* cacheable.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.dfgraph import DFGraph
from ..core.schedule import ScheduledResult, StrategyNotApplicableError
from ..obs.trace import get_tracer
from .common import build_scheduled_result
from .rounding_portfolio import PORTFOLIO_STRATEGY_KEYS

__all__ = ["RACE_STRATEGY_NAME", "DEFAULT_ENTRANTS", "solve_race"]

RACE_STRATEGY_NAME = "race"

#: Cheap approximations first, the exact ILP last: under a tight deadline the
#: portfolio banks a feasible incumbent while the ILP chases optimality.
DEFAULT_ENTRANTS: Tuple[str, ...] = PORTFOLIO_STRATEGY_KEYS + ("checkmate_ilp",)

_default_registry = None
_default_registry_lock = threading.Lock()


def _race_registry():
    """Lazy module-level default registry (building one per race is waste)."""
    global _default_registry
    with _default_registry_lock:
        if _default_registry is None:
            from ..service.registry import default_registry

            _default_registry = default_registry()
        return _default_registry


def solve_race(
    graph: DFGraph,
    budget: Optional[float] = None,
    *,
    deadline_s: float = 10.0,
    entrants: Optional[Sequence[str]] = None,
    seed: int = 0,
    allowance: Optional[float] = None,
    num_samples: Optional[int] = None,
    time_limit_s: Optional[float] = None,
    lp_time_limit_s: Optional[float] = None,
    generate_plan: bool = True,
    should_cancel: Optional[Callable[[], bool]] = None,
    registry=None,
    max_workers: Optional[int] = None,
    strategy_name: str = RACE_STRATEGY_NAME,
) -> ScheduledResult:
    """Race ``entrants`` against ``deadline_s``; return the best feasible result.

    ``entrants`` are registry strategy keys (default: the four portfolio
    schemes plus ``checkmate_ilp``); ``time_limit_s`` / ``lp_time_limit_s``
    cap an entrant's solver *below* the deadline when given.  The winner is
    the feasible entrant with the lowest compute cost (ties: lower peak, then
    entrant order), so the race objective is ``<=`` every individual
    entrant's.  ``deadline_s <= 0`` is honored literally: nothing starts and
    the result is infeasible with status ``"race-deadline-exhausted"``.

    ``should_cancel`` composes with the deadline: when the caller's hook
    fires, the race stops admitting entrants, reaps cooperative ones, and
    returns the best schedule banked so far (status ``"ok"``) or an
    infeasible ``"race-cancelled"`` verdict.
    """
    if budget is None:
        raise ValueError("race requires a memory budget")
    entrant_keys: Tuple[str, ...] = (
        DEFAULT_ENTRANTS if entrants is None else tuple(entrants))
    if not entrant_keys:
        raise ValueError("race requires at least one entrant")
    if strategy_name in entrant_keys or RACE_STRATEGY_NAME in entrant_keys:
        raise ValueError("race cannot race itself")
    registry = registry if registry is not None else _race_registry()
    specs = [registry.get(key) for key in entrant_keys]  # fail fast

    from ..service.options import SolverOptions

    tracer = get_tracer()
    trace_ctx = tracer.current_context()
    race_start = time.monotonic()
    wall_start = time.perf_counter()
    deadline = race_start + max(0.0, float(deadline_s))
    cancel_event = threading.Event()
    caller_cancelled = threading.Event()

    def reaped() -> bool:
        if cancel_event.is_set() or caller_cancelled.is_set():
            return True
        if should_cancel is not None and should_cancel():
            caller_cancelled.set()
            return True
        return False

    lanes: List[dict] = [
        {"strategy": key, "status": "not-started", "wall_s": None,
         "feasible": False, "objective": None, "peak_memory": None}
        for key in entrant_keys
    ]

    def run_entrant(index: int) -> Optional[ScheduledResult]:
        lane = lanes[index]
        spec = specs[index]
        remaining = deadline - time.monotonic()
        if remaining <= 0 or reaped():
            lane["status"] = "cancelled-before-start"
            return None
        limit = remaining if time_limit_s is None else min(remaining, time_limit_s)
        lp_limit = remaining if lp_time_limit_s is None \
            else min(remaining, lp_time_limit_s)
        # Entrants skip plan generation; only the winner is lowered, once.
        options = SolverOptions(
            time_limit_s=limit, lp_time_limit_s=lp_limit, allowance=allowance,
            num_samples=num_samples, seed=seed, generate_plan=False)
        kwargs = options.kwargs_for(spec.option_map)
        if spec.accepts_should_cancel:
            kwargs["should_cancel"] = reaped
        lane["status"] = "running"
        start = time.perf_counter()
        try:
            result = spec.solve(graph, budget, **kwargs)
        except StrategyNotApplicableError as exc:
            lane["status"] = f"not-applicable: {exc}"
            lane["wall_s"] = time.perf_counter() - start
            return None
        except Exception as exc:  # noqa: BLE001 - one entrant must not kill the race
            lane["status"] = f"error: {type(exc).__name__}: {exc}"
            lane["wall_s"] = time.perf_counter() - start
            return None
        lane["wall_s"] = time.perf_counter() - start
        lane["status"] = result.solver_status
        lane["feasible"] = bool(result.feasible)
        if result.feasible:
            lane["objective"] = float(result.compute_cost)
            lane["peak_memory"] = int(result.peak_memory)
        return result

    def traced_entrant(index: int) -> Optional[ScheduledResult]:
        key = entrant_keys[index]
        if trace_ctx is None:
            with tracer.span("race-entrant", strategy=key):
                return run_entrant(index)
        with tracer.context(*trace_ctx):
            with tracer.span("race-entrant", strategy=key):
                return run_entrant(index)

    results: List[Optional[ScheduledResult]] = [None] * len(entrant_keys)
    deadline_hit = False
    if deadline_s > 0:
        workers = min(len(entrant_keys),
                      max_workers or max(2, os.cpu_count() or 1))
        with tracer.span("race", deadline_s=float(deadline_s),
                         entrants=len(entrant_keys)):
            # Pool threads have no trace context; hand them the race span's
            # so every entrant's spans land under this race in one tree.
            trace_ctx = tracer.current_context()
            executor = ThreadPoolExecutor(max_workers=workers,
                                          thread_name_prefix="repro-race")
            try:
                futures = {executor.submit(traced_entrant, i): i
                           for i in range(len(entrant_keys))}
                pending = set(futures)
                while pending:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or reaped():
                        break
                    done, pending = wait(pending, timeout=remaining,
                                         return_when=FIRST_COMPLETED)
                deadline_hit = bool(pending) and not caller_cancelled.is_set()
                cancel_event.set()
                for future in pending:
                    future.cancel()
            finally:
                # Join the pool: queued entrants were cancelled above, and
                # in-flight ones stop promptly -- their HiGHS limits are
                # clamped to the deadline and their candidate loops poll the
                # cancel hook -- so this wait is short and leak-free.
                executor.shutdown(wait=True, cancel_futures=True)
            for future, index in futures.items():
                if future.cancelled():
                    continue
                if future.done() and future.exception() is None:
                    results[index] = future.result()
    else:
        deadline_hit = True

    winner_index: Optional[int] = None
    for index, result in enumerate(results):
        if result is None or not result.feasible or result.matrices is None:
            continue
        if winner_index is None:
            winner_index = index
            continue
        incumbent = results[winner_index]
        if (result.compute_cost, result.peak_memory) < (
                incumbent.compute_cost, incumbent.peak_memory):
            winner_index = index
    wall_s = time.perf_counter() - wall_start

    provenance = {
        "deadline_s": float(deadline_s),
        "wall_s": wall_s,
        "deadline_hit": deadline_hit,
        "cancelled": caller_cancelled.is_set(),
        "winner": entrant_keys[winner_index] if winner_index is not None else None,
        "feasible": winner_index is not None,
        "entrants": lanes,
    }

    if winner_index is None:
        if caller_cancelled.is_set():
            status = "race-cancelled"
        elif deadline_s <= 0:
            status = "race-deadline-exhausted"
        else:
            status = "race-no-feasible"
        return build_scheduled_result(
            strategy_name, graph, None, budget=int(budget), feasible=False,
            solve_time_s=wall_s, solver_status=status,
            extra={"race": provenance},
        )

    winner = results[winner_index]
    extra = dict(winner.extra or {})
    extra["race"] = provenance
    return build_scheduled_result(
        strategy_name, graph, winner.matrices, budget=int(budget),
        feasible=True, solve_time_s=wall_s, solver_status="ok",
        generate_plan=generate_plan, peak_memory=winner.peak_memory,
        extra=extra,
    )
