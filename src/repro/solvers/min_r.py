"""Minimal-recomputation completion: solve for ``R`` given a fixed ``S``.

Several parts of the system fix the checkpoint policy first and then need the
cheapest feasible recomputation matrix:

* phase two of the LP-rounding approximation (Algorithm 2, §5.2),
* every baseline heuristic -- the paper implements baselines "as a static
  policy for the decision variable S and then solve[s] for the lowest-cost
  recomputation schedule" (§6.2), and
* the AP / linearized generalizations of Appendix B, where the optimal ``R``
  given ``S`` is found by graph traversal in ``O(|V||E|)``.

Given ``S``, an entry ``R[t, i] = 1`` is *necessary* exactly when (a) it is the
frontier node of stage ``t``, (b) the value must be produced in stage ``t`` to
satisfy a checkpoint ``S[t+1, i] = 1`` that is not already covered by
``S[t, i]``, or (c) some node recomputed later in stage ``t`` consumes ``v_i``
and ``v_i`` is not checkpointed.  Setting only those entries yields the unique
minimal ``R`` (every 1 is forced), hence the conditionally optimal completion.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..core.dfgraph import DFGraph
from ..core.schedule import ScheduleMatrices

__all__ = ["solve_min_r", "checkpoint_set_to_schedule", "solve_min_r_schedule"]


def solve_min_r(graph: DFGraph, S: np.ndarray) -> ScheduleMatrices:
    """Compute the minimal feasible ``R`` for a fixed binary checkpoint matrix ``S``.

    Parameters
    ----------
    graph:
        The data-flow graph.
    S:
        ``(n, n)`` 0/1 checkpoint matrix (frontier-advancing layout: strictly
        lower triangular).  Rows above the diagonal are ignored/cleared.

    Returns
    -------
    :class:`ScheduleMatrices` with the given ``S`` (made strictly lower
    triangular) and the conditionally optimal ``R``.
    """
    n = graph.size
    S = np.asarray(S, dtype=np.uint8).copy()
    if S.shape != (n, n):
        raise ValueError(f"S must be ({n}, {n}), got {S.shape}")
    # Enforce the frontier-advancing structural zeros: no checkpoints into the
    # first stage and nothing at/above the diagonal.
    S[np.triu_indices(n, k=0)] = 0
    S[0, :] = 0

    # Every stage shares the same propagation rules, so the per-stage scan is
    # run for all stages at once, column by column:
    #
    # * (8a) frontier nodes and (1c) checkpoint-feeding entries seed R;
    # * (1b) closes the computed set under dependencies.  Columns are swept in
    #   reverse topological order, which finalizes column j before any parent
    #   column (< j) is read -- the same single-pass argument as scanning
    #   ``j = t..0`` within one stage.
    #
    # All marks land strictly below the diagonal seed (parents precede
    # children), so the lower-triangular structure is preserved.
    Sb = S.astype(bool)
    Rb = np.eye(n, dtype=bool)  # (8a) frontier nodes
    Rb[:-1] |= Sb[1:] & ~Sb[:-1]  # (1c)
    for j in range(n - 1, 0, -1):
        preds = graph.predecessors(j)
        if preds:
            preds = list(preds)
            Rb[:, preds] |= Rb[:, j, None] & ~Sb[:, preds]
    return ScheduleMatrices(Rb.astype(np.uint8), S)


def checkpoint_set_to_schedule(graph: DFGraph, checkpoints: set[int] | list[int]) -> ScheduleMatrices:
    """Lift a *static* checkpoint set into frontier-advancing ``(R, S)`` matrices.

    Heuristics like Chen et al.'s sqrt(n) select a single set of nodes to keep
    resident for the whole execution.  In the paper's representation this means
    ``S[t, i] = 1`` for every checkpointed ``i`` in every stage after ``i`` has
    first been computed (stage ``i``), after which :func:`solve_min_r` restores
    dependency feasibility with minimal recomputation.
    """
    n = graph.size
    ckpt = set(int(c) for c in checkpoints)
    S = np.zeros((n, n), dtype=np.uint8)
    for i in ckpt:
        if not (0 <= i < n):
            raise ValueError(f"checkpoint node {i} outside graph")
        S[i + 1:, i] = 1
    return solve_min_r(graph, S)


def solve_min_r_schedule(
    graph: DFGraph,
    budget: Optional[float] = None,
    *,
    checkpoints: Iterable[int] = (),
    generate_plan: bool = True,
    strategy_name: str = "min-r",
) -> "ScheduledResult":
    """Uniform-signature driver: min-R completion of an explicit checkpoint set.

    Exposes the conditionally optimal ``R``-for-fixed-``S`` solve behind the
    standard ``solve(graph, budget, **options) -> ScheduledResult`` contract so
    that hand-picked (or externally computed) checkpoint policies can be run,
    cached and swept through the solve service exactly like any strategy.
    ``budget`` only determines reported feasibility; the checkpoint set itself
    is taken as given.
    """
    from ..core.simulator import schedule_peak_memory
    from ..utils.timer import Timer
    from .common import build_scheduled_result

    with Timer() as timer:
        matrices = checkpoint_set_to_schedule(graph, set(checkpoints))
        peak = schedule_peak_memory(graph, matrices)
    feasible = budget is None or peak <= budget
    return build_scheduled_result(
        strategy_name, graph, matrices,
        budget=int(budget) if budget is not None else None,
        feasible=feasible, solve_time_s=timer.elapsed,
        solver_status="ok" if feasible else "over-budget",
        generate_plan=generate_plan, peak_memory=peak,
        extra={"checkpoints": sorted(set(int(c) for c in checkpoints))},
    )
