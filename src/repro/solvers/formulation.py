"""Mixed-integer linear programming formulation of tensor rematerialization.

This module translates the paper's optimization problem (Sections 4.1-4.8)
into explicit sparse constraint matrices consumable by any LP/MILP solver
(:func:`scipy.optimize.milp` / HiGHS in this reproduction, Gurobi in the
original system, or the small branch-and-bound solver shipped for tests).

Two variants are supported:

* the **frontier-advancing** (partitioned) formulation of §4.6 / Eq. (9), in
  which stage ``t`` is the first stage where node ``v_t`` is evaluated, making
  ``R`` and ``S`` lower-triangular -- this is the formulation Checkmate solves
  in practice; and
* the **unpartitioned** formulation of Eq. (8) with a free number of stages,
  retained for the Appendix-A integrality-gap and solve-time ablation.

Decision variables
------------------
``R[t, i]``     binary   node ``i`` is (re)computed in stage ``t``
``S[t, i]``     binary   node ``i``'s value is kept from stage ``t-1`` into ``t``
``FREE[t,i,k]`` binary   ``i`` may be deallocated in stage ``t`` after computing ``k``
``U[t, k]``     continuous  memory in use in stage ``t`` after computing node ``k``

The memory budget enters as an upper bound on the ``U`` variables.  Costs and
memory sizes are normalized internally so the constraint matrix is well
conditioned regardless of whether costs are FLOPs (1e9-1e12) or seconds and
memory is bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse

from ..core.dfgraph import DFGraph
from ..core.schedule import ScheduleMatrices

__all__ = ["MILPFormulation", "FormulationArrays", "InfeasibleBudgetError"]


class InfeasibleBudgetError(ValueError):
    """Raised when the budget cannot fit even the constant overhead."""


@dataclass
class FormulationArrays:
    """Dense/sparse arrays describing the MILP in standard form.

    minimize    c @ x
    subject to  constraint_lb <= A @ x <= constraint_ub
                lb <= x <= ub
                x[i] integral where integrality[i] == 1
    """

    c: np.ndarray
    integrality: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    A: sparse.csr_matrix
    constraint_lb: np.ndarray
    constraint_ub: np.ndarray


class MILPFormulation:
    """Builds the rematerialization MILP for a graph and memory budget.

    Parameters
    ----------
    graph:
        Training graph with per-node costs and memory.
    budget:
        Memory budget in the same unit as the graph's node memories (bytes).
    frontier_advancing:
        Use the partitioned formulation of §4.6 (default).  When ``False`` the
        unpartitioned Eq. (8) variant is produced; ``num_stages`` then controls
        the unroll length ``T`` (default ``graph.size``).
    num_stages:
        Number of stages ``T``; must equal ``graph.size`` for the
        frontier-advancing variant.
    """

    def __init__(
        self,
        graph: DFGraph,
        budget: float,
        *,
        frontier_advancing: bool = True,
        num_stages: Optional[int] = None,
    ) -> None:
        self.graph = graph
        self.budget = float(budget)
        self.frontier_advancing = bool(frontier_advancing)
        n = graph.size
        self.n = n
        self.T = int(num_stages) if num_stages is not None else n
        if self.frontier_advancing and self.T != n:
            raise ValueError("frontier-advancing formulation requires num_stages == graph.size")
        if self.T < 1:
            raise ValueError("need at least one stage")

        if self.budget < graph.constant_overhead:
            raise InfeasibleBudgetError(
                f"budget {self.budget:.3g} B is below the constant input/parameter "
                f"overhead {graph.constant_overhead:.3g} B"
            )

        # Normalization for conditioning.
        self._cost_scale = max(float(graph.cost_vector.max()), 1e-12)
        self._mem_scale = max(float(graph.memory_vector.max()), 1.0)
        self._norm_mem = graph.memory_vector / self._mem_scale
        self._norm_budget = self.budget / self._mem_scale
        self._norm_overhead = graph.constant_overhead / self._mem_scale

        # Edges materialized once (child-major, the edges() order); every
        # stage loop below walks this list instead of regenerating the
        # iterator and rebuilding per-stage membership sets.
        self._edges = list(graph.edges())
        self._c_unnormalized: Optional[np.ndarray] = None

        self._build_index()

    # ------------------------------------------------------------------ #
    # Variable indexing
    # ------------------------------------------------------------------ #
    def _stage_nodes(self, t: int) -> range:
        """Nodes that may be computed during stage ``t``."""
        if self.frontier_advancing:
            return range(0, t + 1)
        return range(0, self.n)

    def _checkpointable(self, t: int) -> range:
        """Nodes that may be checkpointed *into* stage ``t``."""
        if self.frontier_advancing:
            return range(0, t)  # strictly lower triangular (8b)
        return range(0, self.n)

    def _in_stage(self, t: int, j: int) -> bool:
        """Arithmetic membership test for ``j in self._stage_nodes(t)``.

        O(1) instead of rebuilding ``set(self._stage_nodes(t))`` per stage
        (which made index construction quadratic in set building alone).
        """
        return (not self.frontier_advancing) or j <= t

    def _is_checkpointable(self, t: int, i: int) -> bool:
        """Arithmetic membership test for ``i in self._checkpointable(t)``."""
        return (not self.frontier_advancing) or i < t

    def _build_index(self) -> None:
        self.r_index: Dict[Tuple[int, int], int] = {}
        self.s_index: Dict[Tuple[int, int], int] = {}
        self.free_index: Dict[Tuple[int, int, int], int] = {}
        self.u_index: Dict[Tuple[int, int], int] = {}

        counter = 0
        for t in range(self.T):
            for i in self._stage_nodes(t):
                self.r_index[(t, i)] = counter
                counter += 1
        for t in range(self.T):
            for i in self._checkpointable(t):
                self.s_index[(t, i)] = counter
                counter += 1
        for t in range(self.T):
            for (i, k) in self._edges:
                if self._in_stage(t, k):
                    self.free_index[(t, i, k)] = counter
                    counter += 1
                elif self.frontier_advancing:
                    break  # edges are child-major: no later edge is in stage t
        for t in range(self.T):
            for k in self._stage_nodes(t):
                self.u_index[(t, k)] = counter
                counter += 1
        self.num_variables = counter

    # ------------------------------------------------------------------ #
    # Matrix construction
    # ------------------------------------------------------------------ #
    def build(self) -> FormulationArrays:
        """Assemble objective, bounds and the sparse constraint matrix."""
        g = self.graph
        n, T = self.n, self.T
        nv = self.num_variables

        c = np.zeros(nv)
        integrality = np.ones(nv)
        lb = np.zeros(nv)
        ub = np.ones(nv)

        norm_costs = g.cost_vector / self._cost_scale
        for (t, i), idx in self.r_index.items():
            c[idx] = norm_costs[i]

        # Continuous memory-accounting variables, bounded by the budget: this is
        # where the memory constraint U_{t,k} <= M_budget of Eq. (9) lives.
        for (t, k), idx in self.u_index.items():
            integrality[idx] = 0
            lb[idx] = 0.0
            ub[idx] = self._norm_budget

        # Frontier-advancing variable fixings (8a).
        if self.frontier_advancing:
            for t in range(T):
                idx = self.r_index[(t, t)]
                lb[idx] = 1.0
        else:
            # (1d): no checkpoints into the first stage.
            for i in self._checkpointable(0):
                if (0, i) in self.s_index:
                    ub[self.s_index[(0, i)]] = 0.0

        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        con_lb: List[float] = []
        con_ub: List[float] = []
        row = 0

        def add_entry(r: int, col: int, val: float) -> None:
            rows.append(r)
            cols.append(col)
            vals.append(val)

        INF = np.inf

        # ---- (1b): R[t,j] <= R[t,i] + S[t,i] for every edge (i, j). ---------
        for t in range(T):
            for (i, j) in self._edges:
                if not self._in_stage(t, j):
                    if self.frontier_advancing:
                        break  # child-major edge order: the rest are out too
                    continue
                add_entry(row, self.r_index[(t, j)], 1.0)
                if self._in_stage(t, i):
                    add_entry(row, self.r_index[(t, i)], -1.0)
                if self._is_checkpointable(t, i):
                    add_entry(row, self.s_index[(t, i)], -1.0)
                con_lb.append(-INF)
                con_ub.append(0.0)
                row += 1

        # ---- (1c): S[t,i] <= R[t-1,i] + S[t-1,i]. ---------------------------
        for t in range(1, T):
            for i in self._checkpointable(t):
                add_entry(row, self.s_index[(t, i)], 1.0)
                if self._in_stage(t - 1, i):
                    add_entry(row, self.r_index[(t - 1, i)], -1.0)
                if self._is_checkpointable(t - 1, i):
                    add_entry(row, self.s_index[(t - 1, i)], -1.0)
                con_lb.append(-INF)
                con_ub.append(0.0)
                row += 1

        # ---- (1e) for the unpartitioned variant: terminal node computed. ----
        if not self.frontier_advancing:
            for t in range(T):
                add_entry(row, self.r_index[(t, n - 1)], 1.0)
            con_lb.append(1.0)
            con_ub.append(INF)
            row += 1

        # ---- FREE linearization (7b) and (7c). ------------------------------
        # num_hazards(t,i,k) = (1 - R[t,k]) + S[t+1,i] + sum_{j in USERS[i], j>k} R[t,j]
        for (t, i, k), fidx in self.free_index.items():
            later_users = [j for j in g.successors(i)
                           if j > k and self._in_stage(t, j)]
            kappa = 2.0 + len(later_users)

            # (7b): 1 - FREE <= num_hazards
            #   =>  -FREE + R[t,k] - S[t+1,i] - sum_j R[t,j] <= 0
            add_entry(row, fidx, -1.0)
            add_entry(row, self.r_index[(t, k)], 1.0)
            if t + 1 < T and i in self._checkpointable(t + 1):
                add_entry(row, self.s_index[(t + 1, i)], -1.0)
            for j in later_users:
                add_entry(row, self.r_index[(t, j)], -1.0)
            con_lb.append(-INF)
            con_ub.append(0.0)
            row += 1

            # (7c): kappa * (1 - FREE) >= num_hazards
            #   =>  kappa*FREE - R[t,k] + S[t+1,i] + sum_j R[t,j] <= kappa - 1
            add_entry(row, fidx, kappa)
            add_entry(row, self.r_index[(t, k)], -1.0)
            if t + 1 < T and i in self._checkpointable(t + 1):
                add_entry(row, self.s_index[(t + 1, i)], 1.0)
            for j in later_users:
                add_entry(row, self.r_index[(t, j)], 1.0)
            con_lb.append(-INF)
            con_ub.append(kappa - 1.0)
            row += 1

        # ---- Memory accounting recurrence (Eq. 2-3). -------------------------
        mem = self._norm_mem
        for t in range(T):
            stage_nodes = list(self._stage_nodes(t))
            first = stage_nodes[0]
            # U[t, first] - sum_i M_i S[t,i] - M_first R[t,first] = overhead
            add_entry(row, self.u_index[(t, first)], 1.0)
            for i in self._checkpointable(t):
                add_entry(row, self.s_index[(t, i)], -float(mem[i]))
            add_entry(row, self.r_index[(t, first)], -float(mem[first]))
            con_lb.append(self._norm_overhead)
            con_ub.append(self._norm_overhead)
            row += 1

            # U[t,k] = U[t,k-1] - sum_{i in DEPS[k-1]} M_i FREE[t,i,k-1] + M_k R[t,k]
            for k in stage_nodes[1:]:
                prev = k - 1
                add_entry(row, self.u_index[(t, k)], 1.0)
                add_entry(row, self.u_index[(t, prev)], -1.0)
                add_entry(row, self.r_index[(t, k)], -float(mem[k]))
                for i in g.predecessors(prev):
                    fidx = self.free_index.get((t, i, prev))
                    if fidx is not None:
                        add_entry(row, fidx, float(mem[i]))
                con_lb.append(0.0)
                con_ub.append(0.0)
                row += 1

        A = sparse.coo_matrix((vals, (rows, cols)), shape=(row, nv)).tocsr()
        return FormulationArrays(
            c=c,
            integrality=integrality,
            lb=lb,
            ub=ub,
            A=A,
            constraint_lb=np.asarray(con_lb),
            constraint_ub=np.asarray(con_ub),
        )

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #
    def decode_matrices(self, x: np.ndarray, *, threshold: float = 0.5) -> ScheduleMatrices:
        """Convert a solution vector into dense ``(R, S)`` 0/1 matrices."""
        R = np.zeros((self.T, self.n), dtype=np.uint8)
        S = np.zeros((self.T, self.n), dtype=np.uint8)
        for (t, i), idx in self.r_index.items():
            R[t, i] = 1 if x[idx] > threshold else 0
        for (t, i), idx in self.s_index.items():
            S[t, i] = 1 if x[idx] > threshold else 0
        if self.frontier_advancing:
            np.fill_diagonal(R, 1)  # (8a) may be returned as 0.9999... by LP solvers
        return ScheduleMatrices(R, S)

    def decode_fractional(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return the fractional ``(R*, S*)`` matrices of an LP-relaxation solution."""
        R = np.zeros((self.T, self.n), dtype=np.float64)
        S = np.zeros((self.T, self.n), dtype=np.float64)
        for (t, i), idx in self.r_index.items():
            R[t, i] = x[idx]
        for (t, i), idx in self.s_index.items():
            S[t, i] = x[idx]
        return R, S

    def objective_value(self, x: np.ndarray) -> float:
        """Recompute the (un-normalized) objective: total recomputation cost.

        One cached dot product over the contiguous ``R`` block instead of a
        Python iteration over the index dict per call -- branch-and-bound node
        evaluation and the LP result packaging hit this on every solve.
        """
        if self._c_unnormalized is None:
            nodes = np.fromiter((i for (_, i) in self.r_index),
                                dtype=np.int64, count=len(self.r_index))
            self._c_unnormalized = self.graph.cost_vector[nodes]
        return float(self._c_unnormalized @ np.asarray(x)[: len(self.r_index)])

    def describe(self) -> str:
        """Human readable summary of problem dimensions (for logs and reports)."""
        return (
            f"MILP[{'frontier' if self.frontier_advancing else 'unpartitioned'}] "
            f"graph={self.graph.name!r} n={self.n} T={self.T} "
            f"vars={self.num_variables} (R={len(self.r_index)}, S={len(self.s_index)}, "
            f"FREE={len(self.free_index)}, U={len(self.u_index)})"
        )
