"""Rematerialization solvers: optimal MILP, LP relaxation, rounding approximation."""

from .approximation import (
    APPROX_STRATEGY_NAME,
    RoundingSample,
    naive_rounding_feasibility,
    randomized_rounding_samples,
    solve_approx_lp_rounding,
    two_phase_round,
)
from .branch_and_bound import (
    BranchAndBoundResult,
    solve_branch_and_bound,
    solve_branch_and_bound_schedule,
)
from .common import build_scheduled_result
from .compiled import (
    CompiledFormulation,
    FormulationCache,
    compiled_formulation_enabled,
    formulation_and_arrays,
    get_formulation_cache,
    legacy_formulation,
    set_compiled_formulation_enabled,
    set_formulation_cache,
)
from .formulation import FormulationArrays, InfeasibleBudgetError, MILPFormulation
from .ilp import ILP_STRATEGY_NAME, solve_ilp_rematerialization
from .lp_relaxation import LPRelaxationResult, solve_lp_relaxation
from .min_r import checkpoint_set_to_schedule, solve_min_r, solve_min_r_schedule
from .race import DEFAULT_ENTRANTS, RACE_STRATEGY_NAME, solve_race
from .rounding_portfolio import (
    LPRelaxationCache,
    PORTFOLIO_SCHEMES,
    PORTFOLIO_STRATEGY_KEYS,
    get_lp_relaxation_cache,
    set_lp_relaxation_cache,
    solve_portfolio_fixed_half,
    solve_portfolio_random_threshold,
    solve_portfolio_randomized,
    solve_portfolio_threshold_sweep,
    solve_rounding_portfolio,
)
from .warm import (
    WarmSeed,
    budget_floor_margin,
    min_feasible_budget_floor,
    tighten_schedule,
    warm_seed_from_result,
)

__all__ = [
    "APPROX_STRATEGY_NAME",
    "RoundingSample",
    "naive_rounding_feasibility",
    "randomized_rounding_samples",
    "solve_approx_lp_rounding",
    "two_phase_round",
    "BranchAndBoundResult",
    "solve_branch_and_bound",
    "solve_branch_and_bound_schedule",
    "solve_min_r_schedule",
    "build_scheduled_result",
    "CompiledFormulation",
    "FormulationCache",
    "compiled_formulation_enabled",
    "formulation_and_arrays",
    "get_formulation_cache",
    "legacy_formulation",
    "set_compiled_formulation_enabled",
    "set_formulation_cache",
    "FormulationArrays",
    "InfeasibleBudgetError",
    "MILPFormulation",
    "ILP_STRATEGY_NAME",
    "solve_ilp_rematerialization",
    "LPRelaxationResult",
    "solve_lp_relaxation",
    "checkpoint_set_to_schedule",
    "solve_min_r",
    "DEFAULT_ENTRANTS",
    "RACE_STRATEGY_NAME",
    "solve_race",
    "LPRelaxationCache",
    "PORTFOLIO_SCHEMES",
    "PORTFOLIO_STRATEGY_KEYS",
    "get_lp_relaxation_cache",
    "set_lp_relaxation_cache",
    "solve_portfolio_fixed_half",
    "solve_portfolio_random_threshold",
    "solve_portfolio_randomized",
    "solve_portfolio_threshold_sweep",
    "solve_rounding_portfolio",
    "WarmSeed",
    "budget_floor_margin",
    "min_feasible_budget_floor",
    "tighten_schedule",
    "warm_seed_from_result",
]
