"""Shared helpers for turning solver/baseline outputs into :class:`ScheduledResult`."""

from __future__ import annotations

from typing import Optional

from ..core.dfgraph import DFGraph
from ..core.schedule import (
    ScheduleMatrices,
    ScheduledResult,
    schedule_compute_cost,
    validate_correctness_constraints,
)
from ..core.scheduler import generate_execution_plan
from ..core.simulator import schedule_peak_memory
from ..obs.trace import get_tracer

__all__ = ["build_scheduled_result"]


def build_scheduled_result(
    strategy: str,
    graph: DFGraph,
    matrices: Optional[ScheduleMatrices],
    *,
    budget: Optional[int] = None,
    feasible: bool = True,
    solve_time_s: float = 0.0,
    solver_status: str = "ok",
    generate_plan: bool = True,
    validate: bool = True,
    frontier_advancing: bool = True,
    extra: Optional[dict] = None,
    peak_memory: Optional[int] = None,
) -> ScheduledResult:
    """Package a schedule into a :class:`ScheduledResult` with derived metrics.

    Computes the schedule's compute cost (objective 1a) and peak memory (via
    the paper's ``U`` accounting), optionally lowers the schedule into an
    execution plan, and -- by default -- asserts the correctness constraints so
    that no infeasible schedule silently enters the evaluation pipeline.

    ``peak_memory`` lets callers that already simulated the schedule (every
    heuristic decides feasibility from the peak before packaging) pass the
    measured value instead of paying a second ``U``-recurrence evaluation.
    """
    if matrices is None:
        return ScheduledResult(
            strategy=strategy,
            graph=graph,
            matrices=None,
            plan=None,
            compute_cost=float("inf"),
            peak_memory=0,
            feasible=False,
            budget=budget,
            solve_time_s=solve_time_s,
            solver_status=solver_status,
            extra=extra or {},
        )

    tracer = get_tracer()
    if validate:
        with tracer.span("validate"):
            violations = validate_correctness_constraints(
                graph, matrices, frontier_advancing=frontier_advancing
            )
        if violations:
            raise ValueError(
                f"strategy {strategy!r} produced an incorrect schedule: "
                + "; ".join(violations[:5])
            )

    cost = schedule_compute_cost(graph, matrices)
    peak = peak_memory if peak_memory is not None else schedule_peak_memory(graph, matrices)
    if generate_plan:
        with tracer.span("plan"):
            plan = generate_execution_plan(graph, matrices)
    else:
        plan = None
    return ScheduledResult(
        strategy=strategy,
        graph=graph,
        matrices=matrices,
        plan=plan,
        compute_cost=cost,
        peak_memory=peak,
        feasible=feasible,
        budget=budget,
        solve_time_s=solve_time_s,
        solver_status=solver_status,
        extra=extra or {},
    )
