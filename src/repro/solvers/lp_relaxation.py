"""LP relaxation of the rematerialization MILP (paper §5.1).

Relaxing the integrality constraints turns problem (9) into a linear program
solvable in polynomial time.  Its optimum is a lower bound on the integral
optimum (used for integrality-gap measurements, Appendix A) and its fractional
``(R*, S*)`` solution seeds the two-phase rounding approximation of §5.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from ..core.dfgraph import DFGraph
from ..obs.trace import get_tracer
from ..utils.timer import Timer
from .compiled import CompiledFormulation, formulation_and_arrays
from .formulation import InfeasibleBudgetError

__all__ = ["LPRelaxationResult", "solve_lp_relaxation"]


@dataclass
class LPRelaxationResult:
    """Fractional solution of the relaxed rematerialization problem.

    Attributes
    ----------
    R_fractional, S_fractional:
        ``(T, n)`` float matrices in ``[0, 1]``.
    objective:
        Total recomputation cost of the fractional solution -- a lower bound on
        the integral optimum.
    feasible:
        Whether the relaxation admitted any solution under the budget.
    """

    graph_name: str
    budget: float
    R_fractional: Optional[np.ndarray]
    S_fractional: Optional[np.ndarray]
    objective: float
    feasible: bool
    solve_time_s: float
    status: str


def solve_lp_relaxation(
    graph: DFGraph,
    budget: float,
    *,
    frontier_advancing: bool = True,
    num_stages: Optional[int] = None,
    time_limit_s: float = 600.0,
) -> LPRelaxationResult:
    """Solve the continuous relaxation of the rematerialization problem.

    The relaxation is obtained by dropping every integrality requirement
    (``R, S, FREE`` in ``[0, 1]``); HiGHS then solves it with its simplex /
    interior-point LP code, mirroring the paper's use of polynomial-time LP
    algorithms (Karmarkar, barrier methods).
    """
    try:
        # Shares the compiled budget-independent arrays with the exact ILP --
        # an approximation call at (1 - eps) * budget re-budgets in O(1)
        # instead of rebuilding the whole constraint matrix.
        formulation, arrays = formulation_and_arrays(
            graph, budget, frontier_advancing=frontier_advancing, num_stages=num_stages
        )
    except InfeasibleBudgetError as exc:
        return LPRelaxationResult(
            graph_name=graph.name, budget=budget, R_fractional=None, S_fractional=None,
            objective=float("inf"), feasible=False, solve_time_s=0.0,
            status=f"infeasible-budget: {exc}",
        )

    compiled = formulation if isinstance(formulation, CompiledFormulation) else None
    if compiled is not None and compiled.known_infeasible_budget(budget, integral=False):
        # Learned-infeasibility memo: a smaller-or-equal budget already proved
        # LP-infeasible, so this one is too.  Note the arithmetic budget floor
        # of the *integral* problem does NOT apply here -- fractional FREE lets
        # the relaxation shed parent memory mid-stage, so only budgets HiGHS
        # itself rejected are safe to short-circuit.
        return LPRelaxationResult(
            graph_name=graph.name, budget=budget, R_fractional=None, S_fractional=None,
            objective=float("inf"), feasible=False, solve_time_s=0.0,
            status="infeasible-memo",
        )

    constraints = LinearConstraint(arrays.A, arrays.constraint_lb, arrays.constraint_ub)
    bounds = Bounds(arrays.lb, arrays.ub)
    relaxed_integrality = np.zeros_like(arrays.integrality)

    with Timer() as timer, get_tracer().span("lp-solve", budget=float(budget)):
        res = milp(
            c=arrays.c,
            constraints=constraints,
            integrality=relaxed_integrality,
            bounds=bounds,
            options={"time_limit": float(time_limit_s), "presolve": True},
        )

    if res.x is None:
        proven_infeasible = res.status == 2
        if proven_infeasible and compiled is not None:
            # LP-infeasible implies ILP-infeasible; record under both keys so
            # the integral solvers short-circuit as well.
            compiled.note_infeasible_budget(budget, integral=False)
        return LPRelaxationResult(
            graph_name=graph.name, budget=budget, R_fractional=None, S_fractional=None,
            objective=float("inf"), feasible=False, solve_time_s=timer.elapsed,
            status="infeasible" if proven_infeasible else f"status-{res.status}",
        )

    x = np.asarray(res.x)
    R_frac, S_frac = formulation.decode_fractional(x)
    return LPRelaxationResult(
        graph_name=graph.name,
        budget=budget,
        R_fractional=R_frac,
        S_fractional=S_frac,
        objective=formulation.objective_value(x),
        feasible=True,
        solve_time_s=timer.elapsed,
        status="optimal" if res.status == 0 else f"status-{res.status}",
    )
