"""Warm-start machinery for incremental budget sweeps.

Adjacent budgets of a sweep differ in a single bound slice of the compiled
formulation (see :mod:`repro.solvers.compiled`), so their optimal schedules are
highly correlated.  This module provides the three primitives the incremental
sweep path is built from:

* :class:`WarmSeed` / :func:`warm_seed_from_result` -- package a previously
  solved schedule (typically the neighboring *larger* budget's incumbent) as a
  seed for the next cell.  Monotonicity does the heavy lifting: the optimal
  objective is non-increasing in budget, so a schedule that is optimal at
  budget ``b'`` and *fits* within ``b < b'`` is optimal at ``b`` too, and any
  feasible schedule that fits is at least a valid incumbent/cutoff.
* :func:`tighten_schedule` -- prune checkpoints the schedule never uses before
  measuring the seed's peak.  MILP solvers return *an* optimum, not the
  minimal-memory one: with the budget constraint slack, HiGHS happily keeps
  dead values resident, which would make the raw incumbent's peak sit near the
  source budget and never fit the next cell down.  Dropping dead checkpoint
  chains (and re-deriving the minimal ``R`` via
  :func:`~repro.solvers.min_r.solve_min_r`) never increases cost or peak, and
  empirically drops the peak to the bottom of the current objective step --
  which is exactly what makes cross-budget reuse fire.
* :func:`min_feasible_budget_floor` -- an O(|E|) lower bound on the feasible
  budget of the *integral* frontier-advancing formulation: when stage ``t``
  computes its frontier node, every parent of ``t`` must be resident and none
  of them is freeable before ``v_t`` is evaluated, so
  ``overhead + max_t (M_t + sum_{i in parents(t)} M_i)`` memory is unavoidable.
  Cells below the floor are provably infeasible and never need to reach HiGHS.
  The floor does **not** bound the LP relaxation (fractional ``FREE`` lets the
  LP free parents partially), so the relaxation must not use it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.dfgraph import DFGraph
from ..core.schedule import (
    ScheduleMatrices,
    ScheduledResult,
    schedule_compute_cost,
)
from ..core.simulator import schedule_peak_memory
from .min_r import solve_min_r

__all__ = [
    "WarmSeed",
    "tighten_schedule",
    "warm_seed_from_result",
    "min_feasible_budget_floor",
    "budget_floor_margin",
]


@dataclass(frozen=True)
class WarmSeed:
    """A previously solved schedule offered as a starting point for a new cell.

    ``objective``/``peak_memory`` describe ``matrices`` itself (after
    tightening), not the solve it came from.  ``proven_optimal`` means the
    source solver proved optimality (within its MIP gap) at ``source_budget``;
    by monotonicity the seed is then optimal for any smaller budget it fits.
    """

    matrices: ScheduleMatrices
    objective: float
    peak_memory: int
    proven_optimal: bool
    source_budget: Optional[float]
    source_status: str

    def fits(self, budget: float) -> bool:
        return self.peak_memory <= budget


def tighten_schedule(graph: DFGraph, matrices: ScheduleMatrices) -> ScheduleMatrices:
    """Drop checkpoints a schedule never consumes; never worse, usually tighter.

    A checkpoint ``S[t, i]`` is *useful* iff stage ``t`` recomputes a child of
    ``i``, or it feeds a later useful checkpoint of ``i`` (the value must
    survive stage ``t`` to be resident at ``t + 1``).  Everything else is dead
    weight the MILP was allowed to keep because the budget constraint was
    slack.  The pruned ``S`` is completed with the conditionally optimal ``R``
    (:func:`solve_min_r`), which can only shrink the recomputation set.

    Falls back to the input matrices in the (theoretically impossible, but
    cheap to guard) case where the rebuilt schedule is costlier or fatter.
    """
    n = graph.size
    S = np.asarray(matrices.S, dtype=bool)
    R = np.asarray(matrices.R, dtype=bool)
    if S.shape != (n, n) or not S.any():
        return matrices
    parents, children = graph.edge_arrays

    # uses[t, i]: stage t computes some child of i, so i must be resident.
    uses = np.zeros((n, n), dtype=np.int64)
    np.add.at(uses, (slice(None), parents), R[:, children].astype(np.int64))
    useful = uses > 0
    for t in range(n - 2, -1, -1):
        useful[t] |= useful[t + 1] & S[t + 1]

    pruned = (S & useful).astype(np.uint8)
    if np.array_equal(pruned, matrices.S):
        return matrices
    tightened = solve_min_r(graph, pruned)
    if (schedule_peak_memory(graph, tightened) > schedule_peak_memory(graph, matrices)
            or schedule_compute_cost(graph, tightened)
            > schedule_compute_cost(graph, matrices)):
        return matrices
    return tightened


#: Solver statuses that certify (gap-)optimality of the returned schedule.
_PROVEN_OPTIMAL_STATUSES = frozenset({
    "optimal", "warm-reused-optimal", "warm-bound-skip", "warm-cutoff-optimal",
})


def warm_seed_from_result(graph: DFGraph,
                          result: ScheduledResult) -> Optional[WarmSeed]:
    """Package a solved cell as a :class:`WarmSeed`, or ``None`` if unusable.

    Only feasible results with concrete matrices qualify.  The schedule is
    tightened first (see :func:`tighten_schedule`) so the seed's measured peak
    reflects what the schedule actually needs, not the slack the source budget
    allowed.
    """
    if not result.feasible or result.matrices is None:
        return None
    matrices = tighten_schedule(graph, result.matrices)
    if matrices is result.matrices:
        objective = result.compute_cost
        peak = result.peak_memory
    else:
        objective = schedule_compute_cost(graph, matrices)
        peak = schedule_peak_memory(graph, matrices)
    proven = (result.solver_status in _PROVEN_OPTIMAL_STATUSES
              or bool(result.extra.get("proven_optimal")))
    return WarmSeed(
        matrices=matrices,
        objective=float(objective),
        peak_memory=int(peak),
        proven_optimal=proven,
        source_budget=float(result.budget) if result.budget is not None else None,
        source_status=result.solver_status,
    )


def min_feasible_budget_floor(graph: DFGraph) -> float:
    """Lower bound on any feasible budget of the integral frontier MILP.

    When stage ``t`` evaluates its frontier node ``v_t``, every parent of
    ``v_t`` is resident and -- in the integral formulation -- none can be
    (even partially) freed until after the evaluation, so stage ``t`` needs at
    least ``overhead + M_t + sum_{i in parents(t)} M_i`` bytes.  The bound is
    exact arithmetic on the graph (no solver), hence free to evaluate per
    sweep cell.  It does **not** apply to the LP relaxation, whose fractional
    ``FREE`` variables can shed parent memory mid-stage.
    """
    mem = graph.memory_vector.astype(np.float64)
    parents, children = graph.edge_arrays
    parent_mem = np.zeros(graph.size, dtype=np.float64)
    np.add.at(parent_mem, children, mem[parents])
    return float(graph.constant_overhead + (mem + parent_mem).max())


def budget_floor_margin(graph: DFGraph) -> float:
    """Feasibility-tolerance guard band under the arithmetic budget floor.

    HiGHS enforces primal feasibility to ~1e-7 in the formulation's
    mem-scale-normalized units, so it will report "optimal" for budgets a few
    sub-resolution bytes below the true floor (the returned schedule then
    exceeds the budget by those same few bytes).  The pre-check therefore only
    declares infeasibility when the budget is below ``floor - margin`` with a
    margin 100x that slack -- never disagreeing with what the solver would
    accept, while still short-circuiting every meaningfully infeasible cell.
    """
    return 1e-5 * max(float(graph.memory_vector.max()), 1.0) + 1.0
