"""``python -m repro`` == the ``repro`` console script."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
