"""The ``repro`` command line interface.

Every experiment preset and registered strategy is reachable from the shell
without writing Python:

.. code-block:: console

    $ repro serve --port 8765 --workers 4          # run the solve daemon
    $ repro strategies                             # list the solver registry
    $ repro submit --preset unet --strategy checkmate_approx --budget 2GiB
    $ repro sweep --preset vgg16 --strategies ap_sqrt_n,linearized_greedy \\
                  --budgets 512MiB,1GiB,2GiB
    $ repro race --preset vgg16 --budget-fraction 0.5 --deadline-s 2
                                                   # portfolio + ILP race
                                                   # under a latency SLO
    $ repro execute --preset linear_mlp --strategy checkmate_ilp \\
                    --budget-fraction 0.6          # solve, run, cross-check
    $ repro pareto --preset resnet_tiny            # trace the memory/compute
                                                   # frontier by bisection
    $ repro trace vgg16 --budget-fraction 0.5 \\
                  --chrome-trace /tmp/t.json       # span waterfall + Chrome
                                                   # trace of one solve
    $ repro status                                 # server health + metrics
    $ repro status <job-id>                        # one job's lifecycle

``execute`` solves a schedule, lowers it and *runs* it over NumPy tensors,
cross-checking measured peak memory / recompute counts / outputs against the
solver and simulator predictions; it works locally by default or against a
daemon with ``--server``.  ``submit``/``sweep``/``status`` talk to a running
``repro serve`` daemon
(``--server`` defaults to ``http://127.0.0.1:8765``); ``strategies`` answers
locally unless ``--server`` is passed.  Budgets accept raw bytes or binary
units (``512MiB``, ``2GiB``); solver options are ``--option key=value``
pairs matching :class:`repro.service.SolverOptions` fields.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import List, Optional, Sequence

__all__ = ["main"]

_BUDGET_UNITS = {
    "b": 1,
    "kb": 10**3, "mb": 10**6, "gb": 10**9, "tb": 10**12,
    "kib": 2**10, "mib": 2**20, "gib": 2**30, "tib": 2**40,
}


def parse_budget(text: str) -> Optional[float]:
    """``"2GiB"`` -> bytes; ``"none"`` -> unbounded (``None``)."""
    cleaned = text.strip().lower()
    if cleaned in ("none", "null", "unbounded", ""):
        return None
    match = re.fullmatch(r"([0-9]*\.?[0-9]+)\s*([a-z]*)", cleaned)
    if not match:
        raise argparse.ArgumentTypeError(
            f"cannot parse budget {text!r}; use bytes or units like 512MiB, 2GiB")
    value, unit = float(match.group(1)), match.group(2) or "b"
    if unit not in _BUDGET_UNITS:
        raise argparse.ArgumentTypeError(
            f"unknown budget unit {unit!r}; known: {sorted(_BUDGET_UNITS)}")
    return value * _BUDGET_UNITS[unit]


def _parse_option_pairs(pairs: Sequence[str]) -> Optional[dict]:
    """``["time_limit_s=60", "rounding_mode=randomized"]`` -> options dict.

    Values go through ``json.loads`` when possible (numbers, booleans,
    lists), falling back to plain strings, so both ``mip_gap=0.05`` and
    ``rounding_mode=randomized`` do the right thing.
    """
    if not pairs:
        return None
    options = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--option expects key=value, got {pair!r}")
        try:
            options[key] = json.loads(raw)
        except ValueError:
            options[key] = raw
    return options


def _format_bytes(num: Optional[float]) -> str:
    if num is None:
        return "unbounded"
    from .utils.formatting import format_bytes
    return format_bytes(int(num))


def _print_result_rows(results: List[dict]) -> None:
    from .utils.formatting import format_table
    rows = []
    for r in results:
        cost = r["compute_cost"]  # null on the wire for infeasible results
        rows.append((
            r["strategy"],
            _format_bytes(r.get("budget")),
            "yes" if r["feasible"] else f"no ({r['solver_status']})",
            "-" if cost is None else f"{cost:.4g}",
            _format_bytes(r["peak_memory"]),
            f"{r['solve_time_s']:.3f}s",
        ))
    print(format_table(
        ["strategy", "budget", "feasible", "cost", "peak mem", "solve time"],
        rows))


def _client(args):
    from .server.client import ServeClient
    return ServeClient(args.server, timeout=args.http_timeout)


def _load_graph_arg(path: Optional[str]):
    if path is None:
        return None
    from .utils.serialization import graph_from_json
    with open(path, encoding="utf-8") as fh:
        return graph_from_json(fh.read())


def _add_graph_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--preset", help="experiment preset key (see 'repro strategies'"
                                         " for solvers, /v1/presets for presets)")
    parser.add_argument("--scale", choices=("ci", "paper"), default="ci",
                        help="preset scale (default: ci)")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="override the preset's batch size")
    parser.add_argument("--cost-model", choices=("flop", "profile", "uniform"),
                        default=None, help="cost model for preset graphs")
    parser.add_argument("--graph", metavar="FILE", default=None,
                        help="upload a DFGraph serialized with graph_to_json "
                             "instead of naming a preset")


def _add_server_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--server", default="http://127.0.0.1:8765",
                        help="base URL of a running 'repro serve' daemon")
    parser.add_argument("--http-timeout", type=float, default=30.0,
                        help="per-request HTTP timeout in seconds")


# --------------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------------- #
def cmd_serve(args) -> int:
    from .obs import configure_logging
    from .server.http import SolveServer
    from .service import PlanCache, SolveService

    configure_logging()
    cache = PlanCache(max_entries=args.cache_entries, cache_dir=args.cache_dir)
    service = SolveService(cache=cache)
    server = SolveServer(args.host, args.port, service=service,
                         num_workers=args.workers, verbose=args.verbose,
                         tracing=not args.no_trace,
                         backend=args.backend,
                         max_queue_depth=args.max_queue_depth,
                         default_deadline_s=args.default_deadline_s)
    disk = f", disk cache at {args.cache_dir}" if args.cache_dir else ""
    trace = "off" if args.no_trace else "on"
    shed = (f", shed at depth {args.max_queue_depth}"
            if args.max_queue_depth else "")
    print(f"repro solve server listening on {server.url} "
          f"({server.queue.num_workers} {args.backend} workers{disk}{shed}, "
          f"tracing {trace}); Ctrl-C to stop",
          flush=True)
    server.serve_forever()
    return 0


def _require_one_graph_source(args) -> Optional[int]:
    if (args.preset is None) == (args.graph is None):
        print("error: pass exactly one of --preset or --graph", file=sys.stderr)
        return 2
    return None


def cmd_submit(args) -> int:
    usage_error = _require_one_graph_source(args)
    if usage_error is not None:
        return usage_error
    client = _client(args)
    handle = client.submit_solve(
        graph=_load_graph_arg(args.graph), preset=args.preset,
        scale=args.scale, batch_size=args.batch_size, cost_model=args.cost_model,
        strategy=args.strategy, budget=args.budget,
        options=_parse_option_pairs(args.option), priority=args.priority)
    dedup = " (deduplicated: riding an identical in-flight job)" \
        if handle["deduplicated"] else ""
    print(f"job {handle['job_id']} {handle['state']}{dedup}")
    if args.no_wait:
        return 0
    status = client.wait(handle["job_id"], timeout=args.timeout)
    print(f"job {handle['job_id']} {status['state']}"
          + (f" in {status['run_s']:.3f}s" if status.get("run_s") else ""))
    if status["state"] != "done":
        print(f"error: {status.get('error')}", file=sys.stderr)
        return 1
    payload = client.result(handle["job_id"])
    _print_result_rows([payload["result"]])
    if args.save_schedule:
        schedule = payload["result"].get("schedule")
        if schedule is None:
            print("no schedule to save (infeasible result)", file=sys.stderr)
            return 1
        with open(args.save_schedule, "w", encoding="utf-8") as fh:
            fh.write(schedule)
        print(f"schedule written to {args.save_schedule}")
    return 0


def _print_race_provenance(race: dict) -> None:
    from .utils.formatting import format_table
    rows = []
    for lane in race.get("entrants", []):
        wall = lane.get("wall_s")
        objective = lane.get("objective")
        rows.append((
            lane.get("strategy", "?"),
            str(lane.get("status", "?")),
            "-" if wall is None else f"{wall:.3f}s",
            "-" if objective is None else f"{objective:.4g}",
        ))
    winner = race.get("winner") or "none"
    hit = " (deadline hit)" if race.get("deadline_hit") else ""
    print(f"race: winner {winner} in {race.get('wall_s', 0.0):.3f}s "
          f"of a {race.get('deadline_s')}s deadline{hit}")
    print(format_table(["entrant", "status", "wall", "objective"], rows))


def cmd_race(args) -> int:
    usage_error = _require_one_graph_source(args)
    if usage_error is not None:
        return usage_error
    if args.budget is not None and args.budget_fraction is not None:
        print("error: pass at most one of --budget or --budget-fraction",
              file=sys.stderr)
        return 2
    if args.budget is None and args.budget_fraction is None:
        print("error: race requires --budget or --budget-fraction",
              file=sys.stderr)
        return 2
    option_pairs = _parse_option_pairs(args.option) or {}
    option_pairs["deadline_s"] = args.deadline_s
    if args.entrants:
        option_pairs["entrants"] = [e for e in args.entrants.split(",") if e]
    from .service import SolverOptions
    unknown = set(option_pairs) - set(SolverOptions.__dataclass_fields__)
    if unknown:
        print(f"error: unknown solver options {sorted(unknown)}; known: "
              f"{sorted(SolverOptions.__dataclass_fields__)}", file=sys.stderr)
        return 2

    graph = None
    budget = args.budget
    if args.budget_fraction is not None or not args.server or args.graph is not None:
        graph = _load_graph_arg(args.graph)
        if graph is None:
            from .cost_model import COST_MODELS
            from .experiments.presets import build_training_graph
            graph = build_training_graph(
                args.preset, scale=args.scale, batch_size=args.batch_size,
                cost_model=COST_MODELS[args.cost_model or "flop"]())
    if args.budget_fraction is not None:
        budget = float(int(graph.constant_overhead
                           + args.budget_fraction * graph.total_activation_memory()))

    if args.server:
        client = _client(args)
        handle = client.submit_solve(
            graph=graph if args.graph is not None else None,
            preset=args.preset, scale=args.scale, batch_size=args.batch_size,
            cost_model=args.cost_model, strategy="race", budget=budget,
            options=option_pairs, priority=args.priority)
        print(f"race job {handle['job_id']} {handle['state']}")
        if args.no_wait:
            return 0
        status = client.wait(handle["job_id"], timeout=args.timeout)
        if status["state"] != "done":
            print(f"error: {status.get('error')}", file=sys.stderr)
            return 1
        payload = client.result(handle["job_id"])["result"]
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0 if payload["feasible"] else 1
        _print_result_rows([payload])
        _print_race_provenance((payload.get("extra") or {}).get("race") or {})
        return 0 if payload["feasible"] else 1

    from .service import get_default_service
    from .utils.serialization import result_to_wire
    options = SolverOptions(**option_pairs)
    result = get_default_service().solve(graph, "race", budget, options)
    wire = result_to_wire(result)
    wire.pop("schedule", None)
    if args.json:
        print(json.dumps(wire, indent=2, sort_keys=True))
    else:
        _print_result_rows([wire])
        _print_race_provenance(result.extra.get("race") or {})
    return 0 if result.feasible else 1


def cmd_sweep(args) -> int:
    usage_error = _require_one_graph_source(args)
    if usage_error is not None:
        return usage_error
    client = _client(args)
    strategies = [s for s in args.strategies.split(",") if s]
    budgets = ([parse_budget(b) for b in args.budgets.split(",")]
               if args.budgets else None)
    handle = client.submit_sweep(
        graph=_load_graph_arg(args.graph), preset=args.preset,
        scale=args.scale, batch_size=args.batch_size, cost_model=args.cost_model,
        strategies=strategies, budgets=budgets,
        options=_parse_option_pairs(args.option), priority=args.priority)
    print(f"sweep job {handle['job_id']} {handle['state']}")
    if args.no_wait:
        return 0
    status = client.wait(handle["job_id"], timeout=args.timeout)
    print(f"sweep job {handle['job_id']} {status['state']}"
          + (f" in {status['run_s']:.3f}s" if status.get("run_s") else ""))
    if status["state"] != "done":
        print(f"error: {status.get('error')}", file=sys.stderr)
        return 1
    _print_result_rows(client.result(handle["job_id"])["results"])
    return 0


def cmd_execute(args) -> int:
    usage_error = _require_one_graph_source(args)
    if usage_error is not None:
        return usage_error
    if args.budget is not None and args.budget_fraction is not None:
        print("error: pass at most one of --budget or --budget-fraction",
              file=sys.stderr)
        return 2
    option_pairs = _parse_option_pairs(args.option)
    if option_pairs:
        from .service import SolverOptions
        unknown = set(option_pairs) - set(SolverOptions.__dataclass_fields__)
        if unknown:
            print(f"error: unknown solver options {sorted(unknown)}; known: "
                  f"{sorted(SolverOptions.__dataclass_fields__)}", file=sys.stderr)
            return 2

    def build_graph():
        # Locally this is what we execute; with --server it is only needed to
        # resolve --budget-fraction against the exact graph the server will
        # rebuild from the same preset arguments.
        graph = _load_graph_arg(args.graph)
        if graph is None:
            from .cost_model import COST_MODELS
            from .experiments.presets import build_training_graph
            graph = build_training_graph(
                args.preset, scale=args.scale, batch_size=args.batch_size,
                cost_model=COST_MODELS[args.cost_model or "flop"]())
        return graph

    graph = None
    budget = args.budget
    # The graph is needed locally to execute, to resolve --budget-fraction,
    # and to upload a --graph file; a pure preset-by-name submission to a
    # server skips the (potentially expensive) client-side build entirely.
    if args.budget_fraction is not None or not args.server or args.graph is not None:
        graph = build_graph()
    if args.budget_fraction is not None:
        budget = float(int(graph.constant_overhead
                           + args.budget_fraction * graph.total_activation_memory()))

    if args.server:
        client = _client(args)
        handle = client.submit_execute(
            graph=graph if args.graph is not None else None,
            preset=args.preset, scale=args.scale, batch_size=args.batch_size,
            cost_model=args.cost_model, strategy=args.strategy, budget=budget,
            options=option_pairs, seed=args.seed,
            priority=args.priority)
        print(f"execute job {handle['job_id']} {handle['state']}")
        if args.no_wait:
            return 0
        status = client.wait(handle["job_id"], timeout=args.timeout)
        if status["state"] != "done":
            print(f"error: {status.get('error')}", file=sys.stderr)
            return 1
        report = client.result(handle["job_id"])["report"]
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if report["ok"] else 1

    from .execution import bind_numeric_graph
    from .service import SolverOptions, get_default_service

    options = SolverOptions(**option_pairs) if option_pairs else None
    numeric = bind_numeric_graph(graph, seed=args.seed)
    report = get_default_service().execute(numeric, args.strategy, budget, options)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def cmd_pareto(args) -> int:
    usage_error = _require_one_graph_source(args)
    if usage_error is not None:
        return usage_error
    option_pairs = _parse_option_pairs(args.option)
    if option_pairs:
        from .service import SolverOptions
        unknown = set(option_pairs) - set(SolverOptions.__dataclass_fields__)
        if unknown:
            print(f"error: unknown solver options {sorted(unknown)}; known: "
                  f"{sorted(SolverOptions.__dataclass_fields__)}", file=sys.stderr)
            return 2

    if args.server:
        client = _client(args)
        handle = client.submit_pareto(
            graph=_load_graph_arg(args.graph), preset=args.preset,
            scale=args.scale, batch_size=args.batch_size,
            cost_model=args.cost_model, strategy=args.strategy,
            low=args.low, high=args.high, resolution=args.resolution,
            options=option_pairs, priority=args.priority)
        print(f"pareto job {handle['job_id']} {handle['state']}")
        if args.no_wait:
            return 0
        status = client.wait(handle["job_id"], timeout=args.timeout)
        if status["state"] != "done":
            print(f"error: {status.get('error')}", file=sys.stderr)
            return 1
        front = client.result(handle["job_id"])["front"]
    else:
        graph = _load_graph_arg(args.graph)
        if graph is None:
            from .cost_model import COST_MODELS
            from .experiments.presets import build_training_graph
            graph = build_training_graph(
                args.preset, scale=args.scale, batch_size=args.batch_size,
                cost_model=COST_MODELS[args.cost_model or "flop"]())
        from .service import SolverOptions, get_default_service
        options = SolverOptions(**option_pairs) if option_pairs else None
        front = get_default_service().pareto(
            graph, args.strategy, low=args.low, high=args.high,
            resolution=args.resolution, options=options).to_dict()

    if args.json:
        print(json.dumps(front, indent=2, sort_keys=True))
        return 0
    from .utils.formatting import format_table
    rows = []
    prev_cost = None
    for point in front["points"]:
        cost = point["compute_cost"]
        if point["feasible"]:
            knee = (prev_cost is None
                    or abs(cost - prev_cost) > 2e-4 * max(abs(prev_cost), 1.0))
            rows.append((_format_bytes(point["budget"]),
                         f"{cost:.4g}",
                         _format_bytes(point["peak_memory"]),
                         point["solver_status"],
                         "*" if knee else ""))
            prev_cost = cost
        else:
            rows.append((_format_bytes(point["budget"]), "-", "-",
                         point["solver_status"], ""))
    print(f"pareto frontier of {front['graph']} / {front['strategy']}: "
          f"{front['num_points']} points, {front['solver_calls']} solver calls, "
          f"range [{_format_bytes(front['low'])}, {_format_bytes(front['high'])}] "
          f"at {_format_bytes(front['resolution'])} resolution")
    print(format_table(
        ["budget", "cost", "peak mem", "status", "knee"], rows))
    return 0


def cmd_status(args) -> int:
    client = _client(args)
    if args.job_id:
        status = client.job(args.job_id)
        for key in ("id", "kind", "description", "state", "deduplicated",
                    "error", "wait_s", "run_s", "trace_id"):
            print(f"{key:>14}: {status.get(key)}")
        phases = status.get("phases")
        if phases:
            widest = max(len(name) for name in phases)
            print(f"{'phases':>14}:")
            for name, seconds in sorted(phases.items(),
                                        key=lambda kv: -kv[1]):
                print(f"{'':>16}{name:<{widest}}  {seconds:.4f}s")
        return 0 if status["state"] in ("queued", "running", "done") else 1
    health = client.healthz()
    metrics = client.metrics()
    cache = (metrics["service"].get("cache") or {})
    latency = metrics["solve_latency"]
    hit_rate = cache.get("hit_rate")
    print(f"server:        {args.server} ({health['status']}, "
          f"uptime {health['uptime_s']:.0f}s)")
    print(f"workers:       {metrics['workers']}")
    print(f"queue depth:   {metrics['queue_depth']} queued, "
          f"{metrics['running']} running")
    print(f"jobs:          {metrics['jobs']}")
    print(f"cache:         entries={cache.get('entries')} "
          f"hits={cache.get('hits')} misses={cache.get('misses')} "
          f"evictions={cache.get('evictions')} "
          f"hit_rate={f'{hit_rate:.1%}' if hit_rate is not None else 'n/a'}")
    p50, p95, p99 = (latency.get("p50_s"), latency.get("p95_s"),
                     latency.get("p99_s"))
    print(f"solve latency: count={latency['count']} "
          f"p50={f'{p50:.3f}s' if p50 is not None else 'n/a'} "
          f"p95={f'{p95:.3f}s' if p95 is not None else 'n/a'} "
          f"p99={f'{p99:.3f}s' if p99 is not None else 'n/a'}")
    return 0


def _emit_trace(args, spans, *, wall_s: Optional[float] = None,
                header: Optional[str] = None) -> int:
    from .obs import chrome_trace, format_waterfall, span_tree
    if not spans:
        print("error: no spans recorded (tracing disabled?)", file=sys.stderr)
        return 1
    if header:
        print(header)
    if args.json:
        print(json.dumps(span_tree(spans), indent=2, sort_keys=True))
    else:
        print(format_waterfall(spans))
    if wall_s is not None:
        covered = sum(s.duration_s for s in spans if s.parent_id is None)
        print(f"span coverage: {min(covered / wall_s, 1.0):.1%} "
              f"of {wall_s * 1e3:.2f} ms solve wall time")
    if args.chrome_trace:
        with open(args.chrome_trace, "w", encoding="utf-8") as fh:
            json.dump(chrome_trace(spans), fh, indent=2)
        print(f"chrome trace ({len(spans)} spans) written to "
              f"{args.chrome_trace}; load in chrome://tracing or "
              f"https://ui.perfetto.dev")
    return 0


def cmd_trace(args) -> int:
    if args.server:
        # Remote mode: the target is a settled job id on a traced daemon.
        from .obs import spans_from_tree
        payload = _client(args).trace(args.target)
        spans = spans_from_tree(payload["tree"], payload["trace_id"])
        return _emit_trace(
            args, spans,
            header=f"job {payload['job_id']} ({payload['state']}), "
                   f"trace {payload['trace_id']}")

    # Local mode: the target is a preset; run one traced solve and render
    # where the time went.
    if args.budget is not None and args.budget_fraction is not None:
        print("error: pass at most one of --budget or --budget-fraction",
              file=sys.stderr)
        return 2
    option_pairs = _parse_option_pairs(args.option)
    from .service import SolverOptions, get_default_service
    if option_pairs:
        unknown = set(option_pairs) - set(SolverOptions.__dataclass_fields__)
        if unknown:
            print(f"error: unknown solver options {sorted(unknown)}; known: "
                  f"{sorted(SolverOptions.__dataclass_fields__)}", file=sys.stderr)
            return 2

    from .cost_model import COST_MODELS
    from .experiments.presets import build_training_graph
    graph = build_training_graph(
        args.target, scale=args.scale, batch_size=args.batch_size,
        cost_model=COST_MODELS[args.cost_model or "flop"]())
    budget = args.budget
    if args.budget_fraction is not None:
        budget = float(int(graph.constant_overhead
                           + args.budget_fraction * graph.total_activation_memory()))

    import time
    from .obs import get_tracer, install_phase_histograms
    tracer = get_tracer()
    install_phase_histograms()
    tracer.enable()
    options = SolverOptions(**option_pairs) if option_pairs else None
    start = time.perf_counter()
    result = get_default_service().solve(graph, args.strategy, budget, options)
    wall_s = time.perf_counter() - start

    trace_ids = tracer.store.trace_ids()
    spans = tracer.store.spans(trace_ids[-1]) if trace_ids else []
    header = (f"{graph.name} / {args.strategy} @ {_format_bytes(budget)}: "
              f"{'feasible' if result.feasible else 'infeasible'}"
              + (f", cost {result.compute_cost:.4g}" if result.feasible else "")
              + f" ({result.solve_time_s:.3f}s solve)")
    return _emit_trace(args, spans, wall_s=wall_s, header=header)


def cmd_lint(args) -> int:
    usage_error = _require_one_graph_source(args)
    if usage_error is not None:
        return usage_error
    if args.budget is not None and args.budget_fraction is not None:
        print("error: pass at most one of --budget or --budget-fraction",
              file=sys.stderr)
        return 2

    graph = _load_graph_arg(args.graph)
    if graph is None:
        from .cost_model import COST_MODELS
        from .experiments.presets import build_training_graph
        graph = build_training_graph(
            args.preset, scale=args.scale, batch_size=args.batch_size,
            cost_model=COST_MODELS[args.cost_model or "flop"]())
    budget = args.budget
    if args.budget_fraction is not None:
        budget = float(int(graph.constant_overhead
                           + args.budget_fraction * graph.total_activation_memory()))

    from .analysis.lint import lint_graph
    report = lint_graph(graph, budget=budget)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
        for diag in report.diagnostics:
            locus = ("" if diag.node is None
                     else f" [node {diag.node}"
                          + (f" {diag.node_name!r}" if diag.node_name else "")
                          + "]")
            print(f"  {diag.severity:<7} {diag.code}{locus}: {diag.message}")
    return 0 if report.ok else 1


def cmd_strategies(args) -> int:
    from .utils.formatting import format_table
    if args.server:
        entries = _client(args).strategies()
    else:
        from .service import default_registry
        entries = [{
            "key": spec.key, "description": spec.description,
            "general_graphs": spec.general_graphs, "cost_aware": spec.cost_aware,
            "memory_aware": spec.memory_aware, "in_table1": spec.in_table1,
        } for spec in default_registry()]

    def flag(value) -> str:
        return {True: "yes", False: "no"}.get(value, str(value))

    rows = [(e["key"], flag(e["general_graphs"]), flag(e["cost_aware"]),
             flag(e["memory_aware"]), "yes" if e["in_table1"] else "",
             e["description"]) for e in entries]
    print(format_table(
        ["strategy", "general", "cost-aware", "mem-aware", "table1", "description"],
        rows))
    return 0


# --------------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Checkmate reproduction: solve-as-a-service CLI.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serve", help="run the solve daemon")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.add_argument("--workers", type=int, default=None,
                   help="worker pool size (default: min(4, cpu count))")
    p.add_argument("--backend", choices=("thread", "process"), default="thread",
                   help="worker backend: 'thread' (in-process, default) or "
                        "'process' (a spawn-based process pool; solves run "
                        "in parallel across cores)")
    p.add_argument("--max-queue-depth", type=int, default=None,
                   help="admission control: shed new submissions with 503 + "
                        "Retry-After once this many flights are queued "
                        "(default: unbounded)")
    p.add_argument("--default-deadline-s", type=float, default=None,
                   help="default per-job deadline in seconds; jobs still "
                        "queued or running past it fail with "
                        "'deadline-exceeded' (default: none)")
    p.add_argument("--cache-dir", default=None,
                   help="persist solved plans as JSON under this directory")
    p.add_argument("--cache-entries", type=int, default=512,
                   help="in-memory plan cache size (0 disables)")
    p.add_argument("--verbose", action="store_true", help="log HTTP requests")
    p.add_argument("--no-trace", action="store_true",
                   help="disable span tracing (on by default for the daemon; "
                        "feeds /v1/trace/{id} and per-phase histograms)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("submit", help="submit one solve and wait for the result")
    _add_graph_args(p)
    p.add_argument("--strategy", required=True)
    p.add_argument("--budget", type=parse_budget, default=None,
                   help="memory budget (bytes or 512MiB/2GiB/...; default none)")
    p.add_argument("--option", action="append", default=[], metavar="KEY=VALUE",
                   help="solver option, repeatable (e.g. --option time_limit_s=60)")
    p.add_argument("--priority", type=int, default=0,
                   help="queue priority (lower runs first)")
    p.add_argument("--no-wait", action="store_true",
                   help="print the job id and exit instead of waiting")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="seconds to wait for completion")
    p.add_argument("--save-schedule", metavar="FILE", default=None,
                   help="write the solved (R, S) schedule JSON to FILE")
    _add_server_args(p)
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("sweep", help="submit a (strategy x budget) sweep")
    _add_graph_args(p)
    p.add_argument("--strategies", required=True,
                   help="comma-separated strategy keys")
    p.add_argument("--budgets", default=None,
                   help="comma-separated budgets (512MiB,1GiB,none,...)")
    p.add_argument("--option", action="append", default=[], metavar="KEY=VALUE")
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--no-wait", action="store_true")
    p.add_argument("--timeout", type=float, default=1800.0)
    _add_server_args(p)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("race",
                       help="race the rounding portfolio + exact ILP under a "
                            "deadline; best feasible schedule wins")
    _add_graph_args(p)
    p.add_argument("--deadline-s", type=float, default=10.0,
                   help="wall-clock deadline for the race (default: 10)")
    p.add_argument("--entrants", default=None,
                   help="comma-separated strategy keys to race (default: the "
                        "four approx_* portfolio schemes + checkmate_ilp)")
    p.add_argument("--budget", type=parse_budget, default=None,
                   help="memory budget (bytes or 512MiB/2GiB/...)")
    p.add_argument("--budget-fraction", type=float, default=None, metavar="F",
                   help="budget as overhead + F * total activation memory "
                        "(alternative to --budget)")
    p.add_argument("--option", action="append", default=[], metavar="KEY=VALUE",
                   help="solver option, repeatable (e.g. --option seed=7)")
    p.add_argument("--json", action="store_true",
                   help="print the result (with extra.race provenance) as JSON")
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--no-wait", action="store_true",
                   help="(with --server) print the job id and exit")
    p.add_argument("--timeout", type=float, default=600.0)
    p.add_argument("--server", default=None,
                   help="run through a 'repro serve' daemon instead of locally")
    p.add_argument("--http-timeout", type=float, default=30.0)
    p.set_defaults(fn=cmd_race)

    p = sub.add_parser("execute",
                       help="solve a schedule, run it over NumPy tensors and "
                            "cross-check predicted vs measured")
    _add_graph_args(p)
    p.add_argument("--strategy", required=True)
    p.add_argument("--budget", type=parse_budget, default=None,
                   help="memory budget (bytes or 512MiB/2GiB/...; default none)")
    p.add_argument("--budget-fraction", type=float, default=None, metavar="F",
                   help="budget as overhead + F * total activation memory "
                        "(alternative to --budget)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the deterministic parameter/input binding")
    p.add_argument("--option", action="append", default=[], metavar="KEY=VALUE",
                   help="solver option, repeatable (e.g. --option time_limit_s=60)")
    p.add_argument("--json", action="store_true",
                   help="print the full report as JSON instead of a summary")
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--no-wait", action="store_true",
                   help="(with --server) print the job id and exit")
    p.add_argument("--timeout", type=float, default=600.0)
    p.add_argument("--server", default=None,
                   help="run through a 'repro serve' daemon instead of locally")
    p.add_argument("--http-timeout", type=float, default=30.0)
    p.set_defaults(fn=cmd_execute)

    p = sub.add_parser("pareto",
                       help="trace the memory-vs-recompute Pareto frontier by "
                            "warm-seeded budget bisection")
    _add_graph_args(p)
    p.add_argument("--strategy", default="checkmate_ilp",
                   help="warm-capable strategy to trace (default: checkmate_ilp)")
    p.add_argument("--low", type=parse_budget, default=None,
                   help="lower budget bound (default: min-feasible floor)")
    p.add_argument("--high", type=parse_budget, default=None,
                   help="upper budget bound (default: checkpoint-all peak)")
    p.add_argument("--resolution", type=parse_budget, default=None,
                   help="stop bisecting below this budget width "
                        "(default: 1/64 of the range)")
    p.add_argument("--option", action="append", default=[], metavar="KEY=VALUE",
                   help="solver option, repeatable (e.g. --option time_limit_s=60)")
    p.add_argument("--json", action="store_true",
                   help="print the full frontier as JSON instead of a table")
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--no-wait", action="store_true",
                   help="(with --server) print the job id and exit")
    p.add_argument("--timeout", type=float, default=1800.0)
    p.add_argument("--server", default=None,
                   help="run through a 'repro serve' daemon instead of locally")
    p.add_argument("--http-timeout", type=float, default=30.0)
    p.set_defaults(fn=cmd_pareto)

    p = sub.add_parser("trace",
                       help="run one traced solve and show its span waterfall, "
                            "or fetch a job's trace from a daemon")
    p.add_argument("target",
                   help="preset key to solve locally, or (with --server) the "
                        "job id whose trace to fetch")
    p.add_argument("--strategy", default="checkmate_ilp",
                   help="strategy for the local solve (default: checkmate_ilp)")
    p.add_argument("--budget", type=parse_budget, default=None,
                   help="memory budget (bytes or 512MiB/2GiB/...; default none)")
    p.add_argument("--budget-fraction", type=float, default=None, metavar="F",
                   help="budget as overhead + F * total activation memory "
                        "(alternative to --budget)")
    p.add_argument("--scale", choices=("ci", "paper"), default="ci",
                   help="preset scale (default: ci)")
    p.add_argument("--batch-size", type=int, default=None,
                   help="override the preset's batch size")
    p.add_argument("--cost-model", choices=("flop", "profile", "uniform"),
                   default=None, help="cost model for preset graphs")
    p.add_argument("--option", action="append", default=[], metavar="KEY=VALUE",
                   help="solver option, repeatable (e.g. --option time_limit_s=60)")
    p.add_argument("--chrome-trace", metavar="FILE", default=None,
                   help="also write Chrome trace-event JSON to FILE "
                        "(chrome://tracing / Perfetto)")
    p.add_argument("--json", action="store_true",
                   help="print the span tree as JSON instead of a waterfall")
    p.add_argument("--server", default=None,
                   help="fetch /v1/trace/{target} from this daemon instead of "
                        "solving locally")
    p.add_argument("--http-timeout", type=float, default=30.0)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("status", help="server health/metrics, or one job's status")
    p.add_argument("job_id", nargs="?", default=None)
    _add_server_args(p)
    p.set_defaults(fn=cmd_status)

    p = sub.add_parser("lint",
                       help="run the graph linter and print structured "
                            "diagnostics (exit 1 if any errors)")
    _add_graph_args(p)
    p.add_argument("--budget", type=parse_budget, default=None,
                   help="memory budget to feasibility-check (bytes or "
                        "512MiB/2GiB/...; enables the B001 diagnostic)")
    p.add_argument("--budget-fraction", type=float, default=None, metavar="F",
                   help="budget as overhead + F * total activation memory "
                        "(alternative to --budget)")
    p.add_argument("--json", action="store_true",
                   help="print the full report as JSON instead of a summary")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("strategies", help="list the solver registry")
    p.add_argument("--server", default=None,
                   help="query a running daemon instead of the local registry")
    p.add_argument("--http-timeout", type=float, default=30.0)
    p.set_defaults(fn=cmd_strategies)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from .server.client import ServeAPIError
    try:
        return args.fn(args)
    except (ServeAPIError, TimeoutError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
