"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists so
that ``pip install -e .`` also works on minimal offline environments that lack
the ``wheel`` package required by PEP 517 editable builds (legacy
``setup.py develop`` installs need no wheel building).
"""

from setuptools import setup

setup()
