"""Package metadata and the ``repro`` console script.

Kept as a plain ``setup.py`` (rather than PEP 517 metadata) so that
``pip install -e .`` works on minimal offline environments that lack the
``wheel`` package required for pyproject editable builds -- legacy
``setup.py develop`` installs need no wheel building.
"""

from setuptools import find_packages, setup

setup(
    name="repro-checkmate",
    version="1.0.0",  # mirrors repro.__version__
    description=("From-scratch reproduction of Checkmate (MLSys 2020): "
                 "optimal tensor rematerialization, plus a solve-as-a-service "
                 "daemon and CLI"),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
    extras_require={"test": ["pytest"]},
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
)
