"""Solve-as-a-service walkthrough: run the daemon and drive it as a client.

Starts a :class:`repro.server.SolveServer` on an ephemeral port (exactly what
``repro serve`` runs), then exercises the serving layer the way concurrent
clients would:

1. submit a U-Net preset solve over JSON/HTTP and fetch its result;
2. fire 8 *concurrent duplicate* submissions -- single-flighting collapses
   them into one solver invocation shared by all eight jobs;
3. re-submit the same cell afterwards -- the plan cache answers without any
   solver work at all;
4. run a (strategy x budget) sweep job and print the resulting table;
5. read ``/v1/metrics``: queue depth, dedup counters, cache hit rate,
   p50/p95 solve latency.

Run:  python examples/serve_and_submit.py
"""

import threading

from repro.server import ServeClient, SolveServer

GiB = 2**30


def main() -> None:
    with SolveServer(port=0, num_workers=2) as server:  # port 0 = ephemeral
        print(f"solve server listening on {server.url}\n")
        client = ServeClient(server.url)

        # -- 1. one solve job, submitted by preset name ------------------- #
        handle = client.submit_solve(preset="unet", strategy="checkmate_approx",
                                     budget=2 * GiB, options={"seed": 0})
        print(f"submitted job {handle['job_id']} ({handle['state']})")
        status = client.wait(handle["job_id"], timeout=300)
        result = client.result(handle["job_id"])["result"]
        print(f"  -> {status['state']} in {status['run_s']:.3f}s: "
              f"cost={result['compute_cost']:.4g}, "
              f"peak={result['peak_memory'] / 2**20:.1f} MiB, "
              f"feasible={result['feasible']}\n")

        # -- 2. eight concurrent duplicates: one solver invocation -------- #
        cell = dict(preset="unet", strategy="checkmate_approx",
                    budget=1 * GiB, options={"seed": 0})
        handles = []
        threads = [threading.Thread(
            target=lambda: handles.append(client.submit_solve(**cell)))
            for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for h in handles:
            client.wait(h["job_id"], timeout=300)
        deduplicated = sum(h["deduplicated"] for h in handles)
        print(f"8 concurrent duplicate submissions: "
              f"{deduplicated} rode an existing flight "
              f"(solver ran {8 - deduplicated} time(s))")

        # -- 3. a later identical submission hits the plan cache ---------- #
        ninth = client.submit_solve(**cell)
        client.wait(ninth["job_id"], timeout=300)
        print("9th (sequential) duplicate answered from the plan cache\n")

        # -- 4. a sweep job ----------------------------------------------- #
        sweep = client.submit_sweep(
            preset="unet",
            strategies=["checkpoint_all", "ap_sqrt_n", "linearized_greedy",
                        "checkmate_approx"],
            budgets=[1 * GiB, 2 * GiB], options={"seed": 0})
        client.wait(sweep["job_id"], timeout=600)
        print(f"{'strategy':<22} {'budget':>8}  {'feasible':<8} {'cost':>12}")
        for r in client.result(sweep["job_id"])["results"]:
            cost = r["compute_cost"]  # null on the wire when infeasible
            print(f"{r['strategy']:<22} {r['budget'] / GiB:>7.1f}G  "
                  f"{str(r['feasible']):<8} "
                  f"{'-' if cost is None else format(cost, '.4g'):>12}")

        # -- 5. operational metrics --------------------------------------- #
        metrics = client.metrics()
        cache = metrics["service"]["cache"]
        latency = metrics["solve_latency"]
        print(f"\njobs: {metrics['jobs']}")
        print(f"cache: hits={cache['hits']} misses={cache['misses']} "
              f"hit_rate={cache['hit_rate']:.1%}")
        print(f"solve latency: p50={latency['p50_s']:.3f}s "
              f"p95={latency['p95_s']:.3f}s over {latency['count']} flights")


if __name__ == "__main__":
    main()
