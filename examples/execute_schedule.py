"""Solve -> lower -> execute -> report: run a schedule over real tensors.

The paper's central claim is not just that an (R, S) schedule *exists* under
a memory budget, but that it actually trains the network in less memory.
This example closes that predicted-vs-measured loop end to end:

1. build an executable training graph -- a model-zoo preset with NumPy
   forward *and* backward (VJP) functions bound to every node,
2. solve the rematerialization MILP at ~60% of the checkpoint-all footprint,
3. lower the schedule with Algorithm 1 and interpret the plan over real
   tensors, and
4. cross-check: measured peak live bytes vs the simulator predictions,
   measured recompute counts vs the plan, outputs bit-for-bit vs
   checkpoint-all execution.

Run:  python examples/execute_schedule.py
"""

from repro import SolveService, SolverOptions
from repro.experiments import build_numeric_training_graph
from repro.utils import format_bytes

PRESETS = ["linear_mlp", "linear_cnn", "vgg16"]


def main() -> None:
    service = SolveService()
    for preset in PRESETS:
        # NumPy functions are bound deterministically (seed below), so the
        # rematerialized run can be compared bit-for-bit with checkpoint-all.
        overrides = {"batch_size": 2, "resolution": 32} if preset == "vgg16" else {}
        numeric = build_numeric_training_graph(preset, scale="ci", seed=0, **overrides)
        graph = numeric.graph
        budget = graph.constant_overhead + 0.6 * graph.total_activation_memory()

        report = service.execute(numeric, "checkmate_ilp", budget,
                                 SolverOptions(time_limit_s=120))
        print(report.summary())
        saved = 1.0 - report.memory_saving
        print(f"  -> {format_bytes(report.checkpoint_all_peak_bytes - report.measured_peak_bytes)}"
              f" ({saved:.0%}) below checkpoint-all, at "
              f"{report.measured_num_compute - report.num_nodes} extra computes\n")
        if not report.ok:
            raise SystemExit(f"cross-check FAILED for {preset}: {report.to_dict()}")
    print("all executions matched their predictions")


if __name__ == "__main__":
    main()
