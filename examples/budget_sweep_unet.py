"""Figure-5-style study: overhead vs memory budget for U-Net semantic segmentation.

U-Net's long encoder-decoder skip connections defeat classical checkpointing
heuristics; this example sweeps memory budgets and compares the paper's
generalized baselines against Checkmate's ILP and LP-rounding approximation,
printing the text analogue of Figure 5(c).

Run:  python examples/budget_sweep_unet.py [--paper-scale]
"""

import argparse
import time

from repro.cost_model import ProfileCostModel
from repro.experiments import budget_grid, budget_sweep, build_training_graph, format_sweep
from repro.service import SolveService

STRATEGIES = ("checkpoint_all", "ap_sqrt_n", "ap_greedy", "linearized_sqrt_n",
              "linearized_greedy", "checkmate_approx", "checkmate_ilp")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the paper's 416x608 resolution / batch 32 "
                             "(expect long MILP solve times)")
    parser.add_argument("--budgets", type=int, default=5, help="number of budgets to sweep")
    parser.add_argument("--time-limit", type=float, default=120.0,
                        help="MILP time limit per budget (seconds)")
    args = parser.parse_args()

    scale = "paper" if args.paper_scale else "ci"
    graph = build_training_graph("unet", scale=scale, cost_model=ProfileCostModel())
    print(graph.summary())

    budgets = budget_grid(graph, num_budgets=args.budgets, low_fraction=0.4)

    # The sweep fans (strategy, budget) cells out over the solve service's
    # thread pool; a second run answers every completed cell from the plan
    # cache (only an ILP cell that timed out with no incumbent re-solves).
    service = SolveService()
    start = time.perf_counter()
    points = budget_sweep(graph, budgets, strategies=STRATEGIES,
                          ilp_time_limit_s=args.time_limit, service=service)
    cold = time.perf_counter() - start
    print(format_sweep(points))

    calls_before_rerun = service.stats.solver_calls
    hits_before_rerun = service.stats.cache_hits
    start = time.perf_counter()
    budget_sweep(graph, budgets, strategies=STRATEGIES,
                 ilp_time_limit_s=args.time_limit, service=service)
    warm = time.perf_counter() - start
    print(f"\ncold sweep {cold:.2f}s ({calls_before_rerun} solver calls), "
          f"warm rerun {warm:.3f}s "
          f"({service.stats.cache_hits - hits_before_rerun} cache hits, "
          f"{service.stats.solver_calls - calls_before_rerun} new solver calls)")

    feasible_cm = [p for p in points if p.strategy == "checkmate_ilp" and p.feasible]
    if feasible_cm:
        tightest = min(feasible_cm, key=lambda p: p.budget)
        print(f"\nCheckmate trains U-Net at {tightest.budget / 2**20:.0f} MiB with only "
              f"{100 * (tightest.overhead - 1):.1f}% compute overhead.")


if __name__ == "__main__":
    main()
