"""Figure-6-style study: how much larger can the batch get with rematerialization?

For each architecture, find the largest batch size whose training iteration
(a) fits the memory budget and (b) costs at most one extra forward pass
(Eq. 10 of the paper), for the framework-default policy, the strongest
generalized heuristic, and Checkmate's LP-rounding approximation.

Run:  python examples/max_batch_size.py [--budget-gib 2.0]
"""

import argparse

from repro.cost_model import FlopCostModel
from repro.experiments.max_batch import format_max_batch, max_batch_experiment
from repro.models import mobilenet_v1, unet, vgg19
from repro.service import SolveService

STRATEGIES = ("checkpoint_all", "ap_sqrt_n", "linearized_greedy", "checkmate_approx")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget-gib", type=float, default=1.0,
                        help="device memory budget in GiB (paper: 16 GiB V100)")
    parser.add_argument("--resolution", type=int, default=64,
                        help="input resolution for the classification networks")
    parser.add_argument("--max-batch", type=int, default=1024)
    args = parser.parse_args()

    budget = int(args.budget_gib * 2**30)
    res = args.resolution
    models = {
        "VGG19": lambda b: vgg19(batch_size=b, resolution=res),
        "MobileNet": lambda b: mobilenet_v1(batch_size=b, resolution=res),
        "U-Net": lambda b: unet(batch_size=b, resolution=(res * 3 // 2, res * 2),
                                base_filters=16, depth=3),
    }

    # Each (model, strategy) search runs in parallel through the solve service;
    # every feasibility probe of the binary search lands in the plan cache.
    service = SolveService()
    results = max_batch_experiment(models, budget=budget, strategies=STRATEGIES,
                                   cost_model=FlopCostModel(), max_batch=args.max_batch,
                                   service=service)
    print(f"maximum batch size within {args.budget_gib:.1f} GiB "
          f"and at most one extra forward pass\n")
    print(format_max_batch(results))
    print(f"({service.stats.solver_calls} solver calls, "
          f"{service.stats.cache_hits} cache hits)\n")

    for model in models:
        rows = {r.strategy: r for r in results if r.model == model}
        gain = rows["checkmate_approx"].normalized
        print(f"{model}: Checkmate enables {gain:.1f}x the framework-default batch size")


if __name__ == "__main__":
    main()
