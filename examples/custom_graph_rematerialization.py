"""Rematerializing a custom data-flow graph and verifying numerical equivalence.

Checkmate is not tied to the bundled architecture zoo: any DAG of operations
with per-node costs and memory can be scheduled.  This example builds a small
NumPy computation graph with skip connections, solves for a memory-constrained
schedule, *executes* both the checkpoint-all and the rematerialized plans over
real tensors, and shows they produce identical results while the rematerialized
plan holds fewer bytes live.

Run:  python examples/custom_graph_rematerialization.py
"""

import numpy as np

from repro.core import checkpoint_all_schedule, generate_execution_plan
from repro.execution import execute_checkpoint_all, execute_plan, make_numeric_dag
from repro.service import SolveService, SolverOptions
from repro.utils import format_bytes


def main() -> None:
    numeric = make_numeric_dag(num_nodes=14, width=64, skip_prob=0.4, seed=7)
    graph = numeric.graph
    print(graph.summary())

    # Reference execution: compute every node once, keep everything live.
    reference = execute_checkpoint_all(numeric)
    print(f"checkpoint-all execution: {reference.num_compute} computes, "
          f"peak {format_bytes(reference.peak_live_bytes)}")

    # Ask for a schedule using roughly half the activation memory.  Custom
    # graphs go through the same solve service as the bundled architectures.
    budget = int(graph.constant_overhead + 0.55 * graph.total_activation_memory())
    result = SolveService().solve(graph, "checkmate_ilp", budget,
                                  SolverOptions(time_limit_s=60))
    if not result.feasible:
        raise SystemExit("budget too tight for this graph")

    rematerialized = execute_plan(numeric, result.plan)
    print(f"rematerialized execution: {rematerialized.num_compute} computes, "
          f"peak {format_bytes(rematerialized.peak_live_bytes)} "
          f"(schedule overhead {result.overhead:.2f}x)")

    # The whole point: identical numerics, smaller live set.
    out = graph.terminal_node
    np.testing.assert_allclose(rematerialized.outputs[out], reference.outputs[out])
    assert rematerialized.peak_live_bytes <= reference.peak_live_bytes
    print("outputs are numerically identical; memory high-water mark reduced by "
          f"{format_bytes(reference.peak_live_bytes - rematerialized.peak_live_bytes)}")


if __name__ == "__main__":
    main()
