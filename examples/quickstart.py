"""Quickstart: optimally rematerialize a VGG16 training graph.

This walks the full Checkmate pipeline on a laptop-scale configuration:

1. build the VGG16 forward graph and differentiate it,
2. attach a hardware-aware (simulated-profile) cost model,
3. solve the rematerialization MILP at a memory budget well below what
   storing every activation would need,
4. lower the schedule to an execution plan and inspect the memory profile.

Run:  python examples/quickstart.py
"""

from repro import (
    ProfileCostModel,
    make_training_graph,
    simulate_plan,
    solve_ilp_rematerialization,
)
from repro.baselines import solve_checkpoint_all
from repro.models import vgg16
from repro.utils import format_bytes

BATCH_SIZE = 16
RESOLUTION = 64


def main() -> None:
    # 1. Forward graph -> training graph (forward + gradient nodes).
    forward = vgg16(batch_size=BATCH_SIZE, resolution=RESOLUTION)
    graph = make_training_graph(forward)

    # 2. Hardware-aware cost model (the stand-in for V100 layer profiling).
    graph = ProfileCostModel().apply(graph)
    print(graph.summary())

    # The framework-default policy: keep every activation until its gradient.
    baseline = solve_checkpoint_all(graph)
    print(f"checkpoint-all: peak memory {format_bytes(baseline.peak_memory)}, "
          f"iteration cost {baseline.compute_cost * 1e3:.2f} ms")

    # 3. Ask Checkmate for a schedule that fits in ~60% of that footprint.
    budget = int(graph.constant_overhead
                 + 0.6 * (baseline.peak_memory - graph.constant_overhead))
    result = solve_ilp_rematerialization(graph, budget, time_limit_s=120)
    if not result.feasible:
        raise SystemExit(f"no feasible schedule at {format_bytes(budget)}")

    print(f"checkmate ILP:  peak memory {format_bytes(result.peak_memory)} "
          f"(budget {format_bytes(budget)}), iteration cost "
          f"{result.compute_cost * 1e3:.2f} ms, overhead {result.overhead:.3f}x, "
          f"solved in {result.solve_time_s:.1f}s")

    # 4. The concrete execution plan a framework would run.
    trace = simulate_plan(graph, result.plan)
    recomputed = sum(1 for _node, count in trace.compute_counts.items() if count > 1)
    print(f"execution plan: {len(result.plan)} statements, "
          f"{result.plan.total_computations()} computes "
          f"({recomputed} values rematerialized), "
          f"simulated peak {format_bytes(trace.peak_memory)}")
    print("\nfirst statements of the plan:")
    print(result.plan.pretty(max_lines=12))


if __name__ == "__main__":
    main()
