"""Quickstart: optimally rematerialize a VGG16 training graph.

This walks the full Checkmate pipeline on a laptop-scale configuration:

1. build the VGG16 forward graph and differentiate it,
2. attach a hardware-aware (simulated-profile) cost model,
3. solve the rematerialization MILP at a memory budget well below what
   storing every activation would need,
4. lower the schedule to an execution plan and inspect the memory profile.

Run:  python examples/quickstart.py
"""

from repro import (
    ProfileCostModel,
    SolveService,
    SolverOptions,
    make_training_graph,
    simulate_plan,
)
from repro.models import vgg16
from repro.utils import format_bytes

BATCH_SIZE = 16
RESOLUTION = 64


def main() -> None:
    # 1. Forward graph -> training graph (forward + gradient nodes).
    forward = vgg16(batch_size=BATCH_SIZE, resolution=RESOLUTION)
    graph = make_training_graph(forward)

    # 2. Hardware-aware cost model (the stand-in for V100 layer profiling).
    graph = ProfileCostModel().apply(graph)
    print(graph.summary())

    # All strategies are driven through the unified solve service: one registry,
    # one typed options bag, and a content-addressed plan cache (re-running this
    # script with an on-disk cache would skip the MILP solve entirely).
    service = SolveService()

    # The framework-default policy: keep every activation until its gradient.
    baseline = service.solve(graph, "checkpoint_all")
    print(f"checkpoint-all: peak memory {format_bytes(baseline.peak_memory)}, "
          f"iteration cost {baseline.compute_cost * 1e3:.2f} ms")

    # 3. Ask Checkmate for the tightest feasible budget among a few fractions
    #    of the reducible (above-constant-overhead) footprint.  Infeasible
    #    probes are cheap: HiGHS proves infeasibility quickly, and every probe
    #    lands in the plan cache.
    fractions = (0.6, 0.7, 0.8, 0.85, 0.9)
    result = None
    for fraction in fractions:
        budget = int(graph.constant_overhead
                     + fraction * (baseline.peak_memory - graph.constant_overhead))
        print(f"  trying {format_bytes(budget)} "
              f"({fraction:.0%} of reducible peak)...")
        result = service.solve(graph, "checkmate_ilp", budget,
                               SolverOptions(time_limit_s=120))
        if result.feasible:
            break
    if result is None or not result.feasible:
        raise SystemExit(f"no feasible schedule up to {format_bytes(budget)}")

    print(f"checkmate ILP:  peak memory {format_bytes(result.peak_memory)} "
          f"(budget {format_bytes(budget)}), iteration cost "
          f"{result.compute_cost * 1e3:.2f} ms, overhead {result.overhead:.3f}x, "
          f"solved in {result.solve_time_s:.1f}s")

    # 4. The concrete execution plan a framework would run.
    trace = simulate_plan(graph, result.plan)
    recomputed = sum(1 for _node, count in trace.compute_counts.items() if count > 1)
    print(f"execution plan: {len(result.plan)} statements, "
          f"{result.plan.total_computations()} computes "
          f"({recomputed} values rematerialized), "
          f"simulated peak {format_bytes(trace.peak_memory)}")
    print("\nfirst statements of the plan:")
    print(result.plan.pretty(max_lines=12))


if __name__ == "__main__":
    main()
