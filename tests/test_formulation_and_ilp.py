"""Tests for the MILP formulation and the optimal ILP solver."""

import numpy as np
import pytest

from helpers import ample_budget, tight_budget

from repro.core import (
    checkpoint_all_schedule,
    schedule_compute_cost,
    schedule_peak_memory,
    validate_correctness_constraints,
)
from repro.solvers import (
    InfeasibleBudgetError,
    MILPFormulation,
    solve_branch_and_bound,
    solve_ilp_rematerialization,
    solve_lp_relaxation,
)


class TestFormulation:
    def test_variable_counts_frontier(self, chain5_train):
        f = MILPFormulation(chain5_train, ample_budget(chain5_train))
        n = chain5_train.size
        assert len(f.r_index) == n * (n + 1) // 2
        assert len(f.s_index) == n * (n - 1) // 2
        assert len(f.u_index) == n * (n + 1) // 2
        assert f.num_variables == (len(f.r_index) + len(f.s_index)
                                   + len(f.free_index) + len(f.u_index))

    def test_variable_counts_unpartitioned(self, chain5_train):
        n = chain5_train.size
        f = MILPFormulation(chain5_train, ample_budget(chain5_train),
                            frontier_advancing=False, num_stages=n)
        assert len(f.r_index) == n * n
        assert len(f.free_index) == n * chain5_train.num_edges

    def test_describe_mentions_dimensions(self, chain5_train):
        f = MILPFormulation(chain5_train, ample_budget(chain5_train))
        assert "vars=" in f.describe()

    def test_budget_below_overhead_rejected(self, tiny_vgg_train):
        with pytest.raises(InfeasibleBudgetError):
            MILPFormulation(tiny_vgg_train, tiny_vgg_train.constant_overhead - 1)

    def test_frontier_requires_full_stage_count(self, chain5_train):
        with pytest.raises(ValueError):
            MILPFormulation(chain5_train, ample_budget(chain5_train), num_stages=3)

    def test_build_shapes_consistent(self, chain5_train):
        f = MILPFormulation(chain5_train, ample_budget(chain5_train))
        arrays = f.build()
        assert arrays.A.shape[1] == f.num_variables
        assert arrays.A.shape[0] == len(arrays.constraint_lb) == len(arrays.constraint_ub)
        assert arrays.c.shape == arrays.lb.shape == arrays.ub.shape

    def test_decode_checkpoint_all_roundtrip(self, chain5_train):
        f = MILPFormulation(chain5_train, ample_budget(chain5_train))
        x = np.zeros(f.num_variables)
        m = checkpoint_all_schedule(chain5_train)
        for (t, i), idx in f.r_index.items():
            x[idx] = m.R[t, i]
        for (t, i), idx in f.s_index.items():
            x[idx] = m.S[t, i]
        decoded = f.decode_matrices(x)
        assert np.array_equal(decoded.R, m.R)
        assert np.array_equal(decoded.S, m.S)
        assert f.objective_value(x) == pytest.approx(chain5_train.total_cost())


class TestILPOptimality:
    def test_ample_budget_no_recomputation(self, varied_chain_train):
        result = solve_ilp_rematerialization(varied_chain_train,
                                             ample_budget(varied_chain_train))
        assert result.feasible
        assert result.compute_cost == pytest.approx(varied_chain_train.total_cost())
        assert result.overhead == pytest.approx(1.0)

    def test_schedule_is_valid_and_within_budget(self, varied_chain_train):
        budget = tight_budget(varied_chain_train, 0.6)
        result = solve_ilp_rematerialization(varied_chain_train, budget)
        assert result.feasible
        assert validate_correctness_constraints(varied_chain_train, result.matrices) == []
        assert schedule_peak_memory(varied_chain_train, result.matrices) <= budget

    def test_cost_monotone_in_budget(self, varied_chain_train):
        budgets = [tight_budget(varied_chain_train, f) for f in (0.9, 0.7, 0.58)]
        costs = []
        for b in budgets:
            r = solve_ilp_rematerialization(varied_chain_train, b)
            if r.feasible:
                costs.append(r.compute_cost)
        assert len(costs) >= 2
        assert all(costs[i] <= costs[i + 1] + 1e-9 for i in range(len(costs) - 1))
        assert costs[-1] > varied_chain_train.total_cost()

    def test_never_cheaper_than_checkpoint_all(self, chain5_train):
        result = solve_ilp_rematerialization(chain5_train, tight_budget(chain5_train, 0.7))
        assert result.compute_cost >= chain5_train.total_cost() - 1e-9

    def test_infeasible_budget_reported(self, chain5_train):
        result = solve_ilp_rematerialization(chain5_train, chain5_train.constant_overhead + 1)
        assert not result.feasible
        assert result.matrices is None

    def test_budget_below_overhead_reported(self, tiny_vgg_train):
        result = solve_ilp_rematerialization(tiny_vgg_train, 1)
        assert not result.feasible
        assert "infeasible-budget" in result.solver_status

    def test_diamond_graph_optimal(self, diamond_train):
        result = solve_ilp_rematerialization(diamond_train, tight_budget(diamond_train, 0.6))
        assert result.feasible
        assert validate_correctness_constraints(diamond_train, result.matrices) == []

    def test_plan_generated_and_consistent(self, varied_chain_train):
        budget = tight_budget(varied_chain_train, 0.6)
        result = solve_ilp_rematerialization(varied_chain_train, budget)
        assert result.plan is not None
        assert result.plan.total_computations() == int(result.matrices.R.sum())

    def test_unpartitioned_matches_partitioned_on_tiny_instance(self, chain5_train):
        budget = tight_budget(chain5_train, 0.6)
        part = solve_ilp_rematerialization(chain5_train, budget, frontier_advancing=True)
        unpart = solve_ilp_rematerialization(chain5_train, budget, frontier_advancing=False,
                                             time_limit_s=120)
        assert part.feasible and unpart.feasible
        # The frontier-advancing feasible set is a subset of the unpartitioned
        # one, so the unpartitioned optimum can only be as good or better.
        assert unpart.compute_cost <= part.compute_cost + 1e-6


class TestCrossSolverAgreement:
    def test_branch_and_bound_matches_highs(self):
        from repro.autodiff import make_training_graph
        from repro.core import linear_graph
        graph = make_training_graph(linear_graph(3, cost=[1, 3, 2], memory=[2, 1, 3]))
        budget = tight_budget(graph, 0.75)
        highs = solve_ilp_rematerialization(graph, budget)
        assert highs.feasible
        formulation = MILPFormulation(graph, budget)
        bnb = solve_branch_and_bound(formulation.build(), max_nodes=2000)
        assert bnb.x is not None and bnb.proven_optimal
        assert formulation.objective_value(bnb.x) == pytest.approx(highs.compute_cost, rel=1e-6)

    def test_lp_relaxation_lower_bounds_ilp(self, varied_chain_train):
        budget = tight_budget(varied_chain_train, 0.65)
        lp = solve_lp_relaxation(varied_chain_train, budget)
        ilp = solve_ilp_rematerialization(varied_chain_train, budget)
        assert lp.feasible and ilp.feasible
        assert lp.objective <= ilp.compute_cost + 1e-6
