"""Tests for FREE-event derivation, Algorithm 1 plan generation and the simulators."""

import numpy as np
import pytest

from repro.core import (
    checkpoint_all_schedule,
    checkpoint_last_node_schedule,
    compute_free_events,
    generate_execution_plan,
    hoist_deallocations,
    linear_graph,
    schedule_compute_cost,
    schedule_peak_memory,
    simulate_plan,
    simulate_schedule_memory,
)
from repro.core.plan import ComputeNode, DeallocateRegister
from repro.core.simulator import PlanSimulationError


class TestFreeEvents:
    def test_checkpoint_all_frees_nothing_until_last_stage(self, chain5):
        m = checkpoint_all_schedule(chain5)
        events = compute_free_events(chain5, m)
        # Every value is checkpointed into the next stage, so the only FREE
        # events can occur in the final stage (which has no next stage).
        assert all(t == chain5.size - 1 for (t, _k) in events)

    def test_lazy_schedule_frees_dependencies(self, chain5):
        m = checkpoint_last_node_schedule(chain5)
        events = compute_free_events(chain5, m)
        assert events, "recompute-everything schedules must free their temporaries"

    def test_no_double_deallocation(self, varied_chain_train):
        # Theorem 4.1: for any schedule, a value is freed at most once per stage.
        m = checkpoint_last_node_schedule(varied_chain_train)
        events = compute_free_events(varied_chain_train, m)
        for t in range(m.num_stages):
            freed = [i for (tt, k), nodes in events.items() if tt == t for i in nodes]
            assert len(freed) == len(set(freed))

    def test_self_free_flag(self, chain5):
        m = checkpoint_last_node_schedule(chain5)
        with_self = compute_free_events(chain5, m, include_self_frees=True)
        without = compute_free_events(chain5, m, include_self_frees=False)
        def total(ev):
            return sum(len(v) for v in ev.values())
        assert total(with_self) >= total(without)


class TestPlanGeneration:
    @pytest.mark.parametrize("schedule_fn", [checkpoint_all_schedule, checkpoint_last_node_schedule])
    def test_plans_are_structurally_valid(self, chain5_train, schedule_fn):
        plan = generate_execution_plan(chain5_train, schedule_fn(chain5_train))
        plan.validate_structure()

    def test_plan_computes_match_R(self, chain5_train):
        m = checkpoint_last_node_schedule(chain5_train)
        plan = generate_execution_plan(chain5_train, m)
        assert plan.total_computations() == int(m.R.sum())

    def test_plan_cost_matches_schedule_cost(self, varied_chain_train):
        m = checkpoint_last_node_schedule(varied_chain_train)
        plan = generate_execution_plan(varied_chain_train, m)
        trace = simulate_plan(varied_chain_train, plan)
        assert trace.total_cost == pytest.approx(schedule_compute_cost(varied_chain_train, m))

    def test_plan_dependencies_respected(self, diamond_train):
        for schedule_fn in (checkpoint_all_schedule, checkpoint_last_node_schedule):
            plan = generate_execution_plan(diamond_train, schedule_fn(diamond_train))
            simulate_plan(diamond_train, plan)  # raises on violation

    def test_width_mismatch_rejected(self, chain5, chain5_train):
        with pytest.raises(ValueError):
            generate_execution_plan(chain5, checkpoint_all_schedule(chain5_train))


class TestHoisting:
    def test_hoisting_never_increases_peak(self, varied_chain_train):
        m = checkpoint_last_node_schedule(varied_chain_train)
        raw = generate_execution_plan(varied_chain_train, m, hoist=False)
        hoisted = hoist_deallocations(varied_chain_train, raw)
        raw_trace = simulate_plan(varied_chain_train, raw)
        hoisted_trace = simulate_plan(varied_chain_train, hoisted)
        assert hoisted_trace.peak_memory <= raw_trace.peak_memory
        assert hoisted_trace.total_cost == pytest.approx(raw_trace.total_cost)

    def test_hoisting_preserves_statement_multiset(self, chain5_train):
        m = checkpoint_all_schedule(chain5_train)
        raw = generate_execution_plan(chain5_train, m, hoist=False)
        hoisted = hoist_deallocations(chain5_train, raw)
        assert len(raw) == len(hoisted)
        assert raw.compute_counts() == hoisted.compute_counts()

    def test_hoisted_deallocs_stay_after_last_use(self, chain5_train):
        m = checkpoint_all_schedule(chain5_train)
        plan = generate_execution_plan(chain5_train, m, hoist=True)
        last_use = {}
        for idx, s in enumerate(plan.statements):
            if isinstance(s, ComputeNode):
                last_use[s.node_id] = idx
                for p in chain5_train.predecessors(s.node_id):
                    last_use[p] = idx
        for idx, s in enumerate(plan.statements):
            if isinstance(s, DeallocateRegister) and s.node_id in last_use:
                assert idx > 0  # deallocations never lead the plan


class TestUMatrixAccounting:
    def test_hand_computed_chain(self):
        # 3-node unit chain, checkpoint-all: U[t, 0] = #checkpoints, then +1 per compute.
        g = linear_graph(3, cost=1.0, memory=1)
        U = simulate_schedule_memory(g, checkpoint_all_schedule(g))
        assert U.shape == (3, 4)
        assert U[0, 0] == 0 and U[0, 1] == 1
        assert U[1, 0] == 1 and U[1, 2] == 2
        assert U[2, 0] == 2 and U[2, 3] == 3
        assert schedule_peak_memory(g, checkpoint_all_schedule(g)) == 3

    def test_constant_overhead_included(self):
        g = linear_graph(3, cost=1.0, memory=1)
        g2 = type(g)(nodes=g.nodes, deps=g.deps, input_memory=5, parameter_memory=10)
        peak = schedule_peak_memory(g2, checkpoint_all_schedule(g2))
        assert peak == 3 + 5 + 2 * 10

    def test_lazy_schedule_uses_less_memory(self, varied_chain_train):
        keep = schedule_peak_memory(varied_chain_train, checkpoint_all_schedule(varied_chain_train))
        lazy = schedule_peak_memory(varied_chain_train,
                                    checkpoint_last_node_schedule(varied_chain_train))
        assert lazy < keep

    def test_plan_peak_never_exceeds_schedule_peak(self, varied_chain_train, diamond_train):
        for g in (varied_chain_train, diamond_train):
            for fn in (checkpoint_all_schedule, checkpoint_last_node_schedule):
                m = fn(g)
                plan = generate_execution_plan(g, m)
                assert simulate_plan(g, plan).peak_memory <= schedule_peak_memory(g, m)


class TestPlanSimulatorErrors:
    def test_missing_dependency_raises(self, chain5):
        from repro.core.plan import AllocateRegister, ComputeNode, ExecutionPlan
        plan = ExecutionPlan()
        plan.append(AllocateRegister(0, 2, 4))
        plan.append(ComputeNode(0, 2))  # node 2's parent was never computed
        with pytest.raises(PlanSimulationError):
            simulate_plan(chain5, plan)

    def test_validation_can_be_disabled(self, chain5):
        from repro.core.plan import AllocateRegister, ComputeNode, ExecutionPlan
        plan = ExecutionPlan()
        plan.append(AllocateRegister(0, 2, 4))
        plan.append(ComputeNode(0, 2))
        trace = simulate_plan(chain5, plan, validate_dependencies=False)
        assert trace.total_cost == chain5.cost(2)

    def test_dead_register_compute_raises(self, chain5):
        from repro.core.plan import ComputeNode, ExecutionPlan
        plan = ExecutionPlan()
        plan.append(ComputeNode(0, 0))
        with pytest.raises(PlanSimulationError):
            simulate_plan(chain5, plan)

    def test_trace_timeline_monotone(self, chain5_train):
        plan = generate_execution_plan(chain5_train, checkpoint_all_schedule(chain5_train))
        trace = simulate_plan(chain5_train, plan)
        times, memory = trace.timeline()
        assert len(times) == len(memory) == len(plan)
        assert np.all(np.diff(times) >= 0)
