"""Property-based differential tests across the whole solver registry.

Two layers of randomized cross-checking:

* A **seeded matrix** of 200 random-DAG cases (25 seeds x 4 topologies x 2
  budget fractions -- the same matrix the CI differential gate runs on every
  supported Python) driving the four rounding-portfolio schemes, the legacy
  two-phase oracle and the exact ILP through the same budgets.  Differential
  invariants: zero correctness-constraint violations anywhere, feasible
  claims respect the budget, no approximation ever beats the exact optimum,
  ``approx_fixed_half`` is bit-identical to the legacy deterministic rounding
  and ``approx_randomized`` to the legacy randomized mode at equal seeds, and
  the threshold sweep dominates the fixed threshold.

* A **hypothesis** layer (seeded, shrinkable) running *every* registered
  strategy -- heuristics, exact solvers, portfolio, race -- over random
  layered DAGs and asserting the registry-wide contract: valid schedules
  only, budget respected when feasibility is claimed, never better than the
  exact ILP.
"""

from __future__ import annotations

import numpy as np
import pytest

try:
    from hypothesis import HealthCheck, given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - the seed matrix still runs without it
    HAVE_HYPOTHESIS = False

from repro.core import (
    random_layered_dag,
    schedule_peak_memory,
    validate_correctness_constraints,
)
from repro.service import SolveService, SolverOptions, default_registry
from repro.solvers import (
    PORTFOLIO_SCHEMES,
    solve_rounding_portfolio,
)
from repro.solvers.approximation import solve_approx_lp_rounding
from repro.solvers.ilp import solve_ilp_rematerialization

from helpers import tight_budget

#: Objective comparisons tolerate solver-side rounding only.
_TOL = 1e-6

#: The fixed seed matrix: 25 seeds x 4 topologies x 2 budget fractions = 200
#: random-graph cases.  CI runs this exact matrix on every supported Python.
_SEEDS = range(25)
_TOPOLOGIES = ((3, 1), (4, 2), (5, 1), (5, 2))
_FRACTIONS = (0.4, 0.7)
_CASES = [(seed, layers, width, fraction)
          for seed in _SEEDS
          for layers, width in _TOPOLOGIES
          for fraction in _FRACTIONS]
assert len(_CASES) >= 200

#: Chunk the matrix so pytest reports progress and failures stay addressable.
_CHUNK = 25
_NUM_CHUNKS = (len(_CASES) + _CHUNK - 1) // _CHUNK

#: Per-scheme sample counts kept small: the point is differential coverage,
#: not search quality.
_SAMPLES = 6


def _case_graph(seed: int, layers: int, width: int):
    return random_layered_dag(layers, width, seed=seed,
                              name=f"diff-{layers}x{width}-s{seed}")


def _assert_schedule_contract(result, graph, budget, ilp) -> None:
    """The registry-wide differential contract for one solve result."""
    label = f"{result.strategy} on {graph.name}"
    if result.matrices is not None:
        violations = validate_correctness_constraints(graph, result.matrices)
        assert violations == [], f"{label}: constraint violations {violations[:3]}"
    if result.feasible:
        assert result.matrices is not None, f"{label}: feasible without matrices"
        peak = schedule_peak_memory(graph, result.matrices)
        assert peak <= budget, \
            f"{label}: claims feasible but peak {peak} > budget {budget}"
        if ilp is not None and ilp.feasible:
            assert result.compute_cost >= ilp.compute_cost - _TOL * ilp.compute_cost, \
                f"{label}: beats the exact ILP ({result.compute_cost} < " \
                f"{ilp.compute_cost})"


@pytest.mark.parametrize("chunk", range(_NUM_CHUNKS))
def test_portfolio_differential_seed_matrix(chunk):
    """200 seeded random-graph cases: portfolio vs legacy oracle vs exact ILP."""
    for seed, layers, width, fraction in _CASES[chunk * _CHUNK:(chunk + 1) * _CHUNK]:
        graph = _case_graph(seed, layers, width)
        budget = tight_budget(graph, fraction)
        ilp = solve_ilp_rematerialization(graph, budget, generate_plan=False)
        _assert_schedule_contract(ilp, graph, budget, None)

        results = {}
        for scheme in PORTFOLIO_SCHEMES:
            result = solve_rounding_portfolio(
                graph, budget, scheme=scheme, num_samples=_SAMPLES,
                seed=seed, generate_plan=False)
            _assert_schedule_contract(result, graph, budget, ilp)
            results[scheme] = result

        # The exact solver proving infeasibility is the strongest verdict: no
        # valid schedule fits, so no rounding may claim one.
        if not ilp.feasible and "infeasible" in ilp.solver_status:
            for scheme, result in results.items():
                assert not result.feasible, \
                    f"{scheme} feasible on {graph.name} where ILP proved " \
                    f"budget {budget} infeasible"

        # Oracle 1: fixed_half must reproduce the legacy deterministic
        # two-phase rounding bit for bit (same LP, same threshold, same
        # min-R completion).
        legacy_det = solve_approx_lp_rounding(
            graph, budget, mode="deterministic", generate_plan=False)
        fixed = results["fixed_half"]
        assert fixed.feasible == legacy_det.feasible, \
            f"fixed_half vs legacy deterministic disagree on {graph.name}"
        if fixed.feasible:
            assert np.array_equal(fixed.matrices.R, legacy_det.matrices.R)
            assert np.array_equal(fixed.matrices.S, legacy_det.matrices.S)

        # Oracle 2: the randomized scheme shares the legacy randomized mode's
        # draw stream, so equal seeds and sample counts round identically.
        legacy_rand = solve_approx_lp_rounding(
            graph, budget, mode="randomized", num_samples=_SAMPLES,
            seed=seed, generate_plan=False)
        randomized = results["randomized"]
        assert randomized.feasible == legacy_rand.feasible, \
            f"randomized vs legacy randomized disagree on {graph.name}"
        if randomized.feasible:
            assert np.array_equal(randomized.matrices.R, legacy_rand.matrices.R)
            assert np.array_equal(randomized.matrices.S, legacy_rand.matrices.S)

        # Dominance: the sweep always tries 0.5, so whenever the fixed
        # threshold is feasible the sweep is too, and at least as cheap.
        sweep = results["threshold_sweep"]
        if fixed.feasible:
            assert sweep.feasible, \
                f"threshold_sweep infeasible where fixed_half succeeded " \
                f"on {graph.name}"
            assert sweep.compute_cost <= fixed.compute_cost + _TOL, \
                f"threshold_sweep worse than its own 0.5 candidate on " \
                f"{graph.name}"


# --------------------------------------------------------------------------- #
# Registry-wide hypothesis layer
# --------------------------------------------------------------------------- #
_service = SolveService(cache=None)
_registry = default_registry()

if HAVE_HYPOTHESIS:
    _SETTINGS = dict(deadline=None, max_examples=10,
                     suppress_health_check=[HealthCheck.too_slow])

    @st.composite
    def solver_dags(draw):
        layers = draw(st.integers(min_value=3, max_value=5))
        width = draw(st.integers(min_value=1, max_value=2))
        seed = draw(st.integers(min_value=0, max_value=10_000))
        return random_layered_dag(layers, width, seed=seed)


def _options_for(spec, graph) -> SolverOptions:
    """Cheap options per strategy; min_r gets an explicit checkpoint set."""
    if spec.key == "min_r":
        return SolverOptions(checkpoints=tuple(range(0, graph.size, 2)),
                             generate_plan=False)
    if spec.key == "race":
        return SolverOptions(deadline_s=30.0, num_samples=4, seed=0,
                             generate_plan=False)
    if spec.key == "checkmate_bnb":
        # The reference branch-and-bound explores one LP per node; cap the
        # tree so a dense random DAG cannot stall the whole suite.
        return SolverOptions(max_nodes=64, generate_plan=False)
    return SolverOptions(time_limit_s=60.0, num_samples=4, seed=0,
                         generate_plan=False)


def _registry_contract_case(graph, fraction):
    """All registered strategies: valid, budget-honest, never beat the ILP."""
    budget = tight_budget(graph, fraction)
    ilp = _service.solve(graph, "checkmate_ilp", budget,
                         SolverOptions(time_limit_s=60.0, generate_plan=False))
    for spec in _registry:
        if spec.key == "checkmate_ilp":
            result = ilp
        else:
            result = _service.solve(graph, spec.key, budget,
                                    _options_for(spec, graph), strict=False)
        _assert_schedule_contract(result, graph, budget, ilp)


if HAVE_HYPOTHESIS:
    @given(solver_dags(), st.sampled_from(_FRACTIONS))
    @settings(**_SETTINGS)
    def test_every_registry_strategy_respects_the_contract(graph, fraction):
        _registry_contract_case(graph, fraction)
else:  # fallback: a fixed slice of the same space, so the gate never vanishes
    @pytest.mark.parametrize("seed", range(5))
    def test_every_registry_strategy_respects_the_contract(seed):
        _registry_contract_case(random_layered_dag(4, 2, seed=seed), 0.6)
