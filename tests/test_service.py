"""Tests for the unified solve-service layer (registry, cache, sweep)."""

import numpy as np
import pytest

from helpers import ample_budget, tight_budget

from repro.autodiff import make_training_graph
from repro.baselines import STRATEGIES
from repro.core import DFGraph, NodeInfo, linear_graph
from repro.cost_model import FlopCostModel
from repro.experiments import budget_grid, budget_sweep, build_training_graph
from repro.service import (
    PlanCache,
    SolveService,
    SolverOptions,
    SolverSpec,
    SweepCell,
    default_registry,
    graph_content_hash,
)


def fresh_service(**kwargs) -> SolveService:
    return SolveService(**kwargs)


def make_chain_train(n=6):
    fwd = linear_graph(n, cost=[1, 50, 2, 30, 4, 10][:n], memory=[8, 2, 16, 4, 32, 1][:n])
    return make_training_graph(fwd)


class TestGraphHash:
    def test_stable_across_reconstruction(self):
        a = make_chain_train()
        b = make_chain_train()
        assert a is not b
        assert graph_content_hash(a) == graph_content_hash(b)

    def test_stable_for_preset_rebuild(self):
        a = build_training_graph("vgg16", batch_size=1, resolution=32)
        b = build_training_graph("vgg16", batch_size=1, resolution=32)
        assert graph_content_hash(a) == graph_content_hash(b)

    def test_sensitive_to_costs_memories_and_edges(self):
        base = make_chain_train()
        h = graph_content_hash(base)
        costs = list(base.cost_vector)
        costs[0] += 1.0
        assert graph_content_hash(base.with_costs(costs)) != h
        mems = [int(m) for m in base.memory_vector]
        mems[-1] += 1
        assert graph_content_hash(base.with_memories(mems)) != h
        # Same nodes, different topology.
        nodes = [NodeInfo(f"n{i}", 1.0, 1) for i in range(3)]
        g1 = DFGraph(nodes=nodes, deps={0: [], 1: [0], 2: [1]})
        g2 = DFGraph(nodes=nodes, deps={0: [], 1: [0], 2: [0, 1]})
        assert graph_content_hash(g1) != graph_content_hash(g2)

    def test_sensitive_to_overheads_and_meta(self):
        nodes = [NodeInfo("a", 1.0, 1), NodeInfo("b", 1.0, 1)]
        g1 = DFGraph(nodes=nodes, deps={0: [], 1: [0]}, parameter_memory=0)
        g2 = DFGraph(nodes=nodes, deps={0: [], 1: [0]}, parameter_memory=64)
        g3 = DFGraph(nodes=nodes, deps={0: [], 1: [0]}, meta={"n_forward": 2})
        assert len({graph_content_hash(g) for g in (g1, g2, g3)}) == 3

    def test_memoized_on_instance(self):
        g = make_chain_train()
        assert graph_content_hash(g) is graph_content_hash(g)

    def test_numpy_meta_values_hash_safely(self):
        # meta is Dict[str, object]: ndarray values must not crash the memo
        # equality check, must hash by full contents (repr truncates), and
        # in-place array mutation must invalidate the memo.
        def make(arr):
            nodes = [NodeInfo("a", 1.0, 1), NodeInfo("b", 1.0, 1)]
            return DFGraph(nodes=nodes, deps={0: [], 1: [0]},
                           meta={"mask": arr})

        big = np.arange(2000)  # large enough for repr's "..." truncation
        g = make(big.copy())
        h1 = graph_content_hash(g)
        assert graph_content_hash(g) == h1  # second lookup: no crash
        changed = big.copy()
        changed[-1] += 1  # beyond the repr ellipsis
        assert graph_content_hash(make(changed)) != h1
        g.meta["mask"][0] += 1
        assert graph_content_hash(g) != h1

    def test_meta_mutation_invalidates_memo(self):
        g = make_chain_train()
        before = graph_content_hash(g)
        g.meta["custom_tag"] = "v2"
        assert graph_content_hash(g) != before
        # In-place mutation of a nested container must also invalidate the
        # memo (the snapshot is a deep copy, not a shared reference).
        nested_before = graph_content_hash(g)
        first_key = next(iter(g.meta["grad_index"]))
        g.meta["grad_index"][first_key] += 1
        assert graph_content_hash(g) != nested_before


class TestRegistry:
    def test_absorbs_all_table1_strategies(self):
        registry = default_registry()
        for key in STRATEGIES:
            assert key in registry
        assert len(registry.table1_entries()) == len(STRATEGIES) == 10

    def test_extra_solvers_registered_uniformly(self):
        registry = default_registry()
        assert "checkmate_bnb" in registry
        assert "min_r" in registry
        assert not registry.get("checkmate_bnb").in_table1

    def test_unknown_key_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="available"):
            default_registry().get("definitely_not_a_solver")

    def test_no_silent_overwrite(self):
        registry = default_registry()
        spec = registry.get("checkmate_ilp")
        with pytest.raises(KeyError):
            registry.register(spec)
        registry.register(spec, overwrite=True)  # explicit is allowed

    def test_option_map_routes_only_declared_options(self):
        options = SolverOptions(time_limit_s=30, allowance=0.2, seed=7)
        registry = default_registry()
        ilp_kwargs = options.kwargs_for(registry.get("checkmate_ilp").option_map)
        assert ilp_kwargs == {"time_limit_s": 30}
        heuristic_kwargs = options.kwargs_for(registry.get("chen_sqrt_n").option_map)
        assert heuristic_kwargs == {}
        # The MILP time limit must NOT silently shrink the approximation's LP
        # limit; only the dedicated lp_time_limit_s field reaches it.
        approx_kwargs = options.kwargs_for(registry.get("checkmate_approx").option_map)
        assert approx_kwargs == {"allowance": 0.2, "seed": 7}
        lp_options = SolverOptions(lp_time_limit_s=45)
        assert lp_options.kwargs_for(registry.get("checkmate_approx").option_map) \
            == {"lp_time_limit_s": 45}

    def test_cache_token_ignores_irrelevant_options(self):
        registry = default_registry()
        heuristic_map = registry.get("chen_sqrt_n").option_map
        a = SolverOptions(time_limit_s=10).cache_token(heuristic_map)
        b = SolverOptions(time_limit_s=99).cache_token(heuristic_map)
        assert a == b  # the heuristic never sees the time limit
        ilp_map = registry.get("checkmate_ilp").option_map
        assert (SolverOptions(time_limit_s=10).cache_token(ilp_map)
                != SolverOptions(time_limit_s=99).cache_token(ilp_map))


class TestSolveAndCache:
    def test_solve_matches_direct_call(self):
        graph = make_chain_train()
        budget = ample_budget(graph)
        service = fresh_service()
        via_service = service.solve(graph, "linearized_greedy", budget)
        direct = STRATEGIES["linearized_greedy"].solve(graph, budget)
        assert via_service.feasible and direct.feasible
        assert via_service.compute_cost == direct.compute_cost
        assert np.array_equal(via_service.matrices.R, direct.matrices.R)
        assert np.array_equal(via_service.matrices.S, direct.matrices.S)

    def test_cache_hit_and_miss_counters(self):
        graph = make_chain_train()
        budget = tight_budget(graph, 0.6)
        service = fresh_service()
        service.solve(graph, "linearized_greedy", budget)
        assert service.stats.solver_calls == 1
        assert service.stats.cache_misses == 1
        service.solve(graph, "linearized_greedy", budget)
        assert service.stats.solver_calls == 1  # answered from cache
        assert service.stats.cache_hits == 1
        # Different budget -> different cell -> miss.
        service.solve(graph, "linearized_greedy", budget + 1)
        assert service.stats.solver_calls == 2

    def test_cache_shared_across_reconstructed_graphs(self):
        service = fresh_service()
        budget = tight_budget(make_chain_train(), 0.6)
        service.solve(make_chain_train(), "checkmate_approx", budget)
        result = service.solve(make_chain_train(), "checkmate_approx", budget)
        assert service.stats.solver_calls == 1
        assert result.feasible

    def test_options_participate_in_cache_key(self):
        graph = make_chain_train()
        budget = tight_budget(graph, 0.6)
        service = fresh_service()
        service.solve(graph, "checkmate_approx", budget, SolverOptions(allowance=0.1))
        service.solve(graph, "checkmate_approx", budget, SolverOptions(allowance=0.3))
        assert service.stats.solver_calls == 2

    def test_use_cache_false_always_solves(self):
        graph = make_chain_train()
        budget = tight_budget(graph, 0.6)
        service = fresh_service()
        service.solve(graph, "linearized_greedy", budget, use_cache=False)
        service.solve(graph, "linearized_greedy", budget, use_cache=False)
        assert service.stats.solver_calls == 2

    def test_disabled_cache_service(self):
        graph = make_chain_train()
        service = fresh_service(cache=None)
        budget = tight_budget(graph, 0.6)
        service.solve(graph, "linearized_greedy", budget)
        service.solve(graph, "linearized_greedy", budget)
        assert service.stats.solver_calls == 2
        # No cache was consulted, so neither hit nor miss counters move.
        assert service.stats.cache_hits == 0
        assert service.stats.cache_misses == 0

    def test_lru_eviction(self):
        graph = make_chain_train()
        service = fresh_service(cache=PlanCache(max_entries=1))
        b1, b2 = tight_budget(graph, 0.6), tight_budget(graph, 0.7)
        service.solve(graph, "linearized_greedy", b1)
        service.solve(graph, "linearized_greedy", b2)  # evicts b1
        service.solve(graph, "linearized_greedy", b1)
        assert service.stats.solver_calls == 3

    def test_infeasible_results_cached_too(self):
        graph = make_chain_train()
        service = fresh_service()
        result = service.solve(graph, "checkmate_ilp", 1,
                               SolverOptions(time_limit_s=5))
        assert not result.feasible
        again = service.solve(graph, "checkmate_ilp", 1, SolverOptions(time_limit_s=5))
        assert not again.feasible
        assert service.stats.solver_calls == 1

    def test_timeout_without_incumbent_not_cached(self):
        # "No incumbent at the wall-clock limit" is load-dependent; replaying
        # it from the cache would turn a transient timeout into permanent
        # infeasibility.  Proven infeasibility (covered above) stays cached.
        from repro.solvers.common import build_scheduled_result

        graph = make_chain_train()

        def flaky_solver(g, budget=None, **kw):
            return build_scheduled_result("flaky", g, None, budget=int(budget),
                                          feasible=False, solver_status="time_limit")

        registry = default_registry()
        registry.register(SolverSpec(key="flaky", description="stub",
                                     solve=flaky_solver))
        service = fresh_service(registry=registry)
        service.solve(graph, "flaky", 100)
        service.solve(graph, "flaky", 100)
        assert service.stats.solver_calls == 2  # never answered from cache

    def test_unserializable_result_does_not_fail_disk_store(self, tmp_path):
        # A custom solver with exotic (non-JSON) result fields must not abort
        # the solve at disk-store time, nor leave partial tmp files behind.
        from repro.core import ScheduledResult

        graph = make_chain_train()

        def exotic_solver(g, budget=None, **kw):
            # budget={1,2} breaks json.dump; solve_time_s=None breaks payload
            # construction itself (float(None)) -- both must be survivable.
            return ScheduledResult(strategy="exotic", graph=g, matrices=None,
                                   plan=None, compute_cost=1.0, peak_memory=0,
                                   feasible=False, budget={1, 2},
                                   solve_time_s=None,
                                   solver_status="infeasible")

        registry = default_registry()
        registry.register(SolverSpec(key="exotic", description="stub",
                                     solve=exotic_solver))
        service = fresh_service(registry=registry,
                                cache=PlanCache(cache_dir=str(tmp_path)))
        result = service.solve(graph, "exotic", 100)
        assert not result.feasible
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_budget_zero_is_a_real_budget(self):
        # Regression: `int(budget) if budget else None` used to turn budget=0
        # into "unbounded" and report feasibility.
        graph = make_chain_train()
        service = fresh_service()
        result = service.solve(graph, "checkpoint_all", 0)
        assert result.budget == 0
        assert not result.feasible

    def test_not_applicable_strategy_yields_infeasible(self, diamond_train):
        service = fresh_service()
        result = service.solve(diamond_train, "griewank_logn",
                               ample_budget(diamond_train))
        assert not result.feasible
        assert "not-applicable" in result.solver_status
        with pytest.raises(ValueError):
            service.solve(diamond_train, "griewank_logn",
                          ample_budget(diamond_train), use_cache=False, strict=True)

    def test_misconfiguration_propagates_even_non_strict(self):
        # Only StrategyNotApplicableError becomes a 'not-applicable' result;
        # a genuinely bad option must surface, not masquerade as infeasible.
        graph = make_chain_train()
        service = fresh_service()
        with pytest.raises(ValueError, match="allowance"):
            service.solve(graph, "checkmate_approx", ample_budget(graph),
                          SolverOptions(allowance=2.0))

    def test_not_applicable_placeholder_never_cached(self, diamond_train):
        # A strict=True call after a non-strict one on the same cell must still
        # raise: placeholders for raised strategies are not cacheable results.
        service = fresh_service()
        budget = ample_budget(diamond_train)
        service.solve(diamond_train, "griewank_logn", budget)
        assert service.stats.cache_hits == 0
        with pytest.raises(ValueError):
            service.solve(diamond_train, "griewank_logn", budget, strict=True)
        # And the non-strict path re-derives it rather than hitting the cache.
        again = service.solve(diamond_train, "griewank_logn", budget)
        assert "not-applicable" in again.solver_status
        assert service.stats.cache_hits == 0

    def test_extra_solvers_through_service(self):
        graph = make_chain_train(4)
        service = fresh_service()
        budget = ample_budget(graph)
        bnb = service.solve(graph, "checkmate_bnb", budget)
        assert bnb.feasible
        minr = service.solve(graph, "min_r", budget,
                             SolverOptions(checkpoints=(1, 3)))
        assert minr.feasible
        assert minr.extra["checkpoints"] == [1, 3]


class TestDiskCache:
    def test_roundtrip_across_service_instances(self, tmp_path):
        graph = make_chain_train()
        budget = tight_budget(graph, 0.6)
        first = fresh_service(cache=PlanCache(cache_dir=str(tmp_path)))
        original = first.solve(graph, "checkmate_approx", budget)
        assert first.stats.solver_calls == 1

        # A new process would start with an empty in-memory tier but the same
        # directory: the plan must come back from disk, not from a solver.
        second = fresh_service(cache=PlanCache(cache_dir=str(tmp_path)))
        restored = second.solve(graph, "checkmate_approx", budget)
        assert second.stats.solver_calls == 0
        assert restored.feasible == original.feasible
        assert restored.compute_cost == pytest.approx(original.compute_cost)
        assert np.array_equal(restored.matrices.R, original.matrices.R)
        assert np.array_equal(restored.matrices.S, original.matrices.S)
        # Solver metadata survives the disk roundtrip.
        assert restored.extra["lp_objective"] == pytest.approx(
            original.extra["lp_objective"])
        assert (restored.plan is None) == (original.plan is None)

    def test_plan_flag_roundtrips(self, tmp_path):
        graph = make_chain_train()
        budget = ample_budget(graph)
        first = fresh_service(cache=PlanCache(cache_dir=str(tmp_path)))
        original = first.solve(graph, "checkmate_approx", budget,
                               SolverOptions(generate_plan=False))
        assert original.plan is None
        second = fresh_service(cache=PlanCache(cache_dir=str(tmp_path)))
        restored = second.solve(graph, "checkmate_approx", budget,
                                SolverOptions(generate_plan=False))
        assert second.stats.solver_calls == 0
        assert restored.plan is None

    def test_corrupt_disk_entry_degrades_to_miss(self, tmp_path):
        graph = make_chain_train()
        budget = ample_budget(graph)
        service = fresh_service(cache=PlanCache(cache_dir=str(tmp_path)))
        service.solve(graph, "linearized_greedy", budget)
        for path in tmp_path.iterdir():
            path.write_text("{not json")
        fresh = fresh_service(cache=PlanCache(cache_dir=str(tmp_path)))
        result = fresh.solve(graph, "linearized_greedy", budget)
        assert fresh.stats.solver_calls == 1
        assert result.feasible


class TestSweep:
    def test_parallel_identical_to_sequential(self):
        graph = make_chain_train()
        budgets = [tight_budget(graph, f) for f in (0.55, 0.7, 0.9)]
        strategies = ("checkpoint_all", "linearized_greedy", "checkmate_approx")
        sequential = fresh_service().sweep(
            make_chain_train(), fresh_service().grid(strategies, budgets),
            options=SolverOptions(time_limit_s=30), parallel=False)
        parallel = fresh_service().sweep(
            make_chain_train(), fresh_service().grid(strategies, budgets),
            options=SolverOptions(time_limit_s=30), parallel=True, max_workers=4)
        assert len(sequential) == len(parallel) == len(strategies) * len(budgets)
        for seq, par in zip(sequential, parallel):
            assert seq.strategy == par.strategy
            assert seq.feasible == par.feasible
            assert seq.compute_cost == par.compute_cost
            assert seq.peak_memory == par.peak_memory
            if seq.matrices is None:
                assert par.matrices is None
            else:
                assert np.array_equal(seq.matrices.R, par.matrices.R)
                assert np.array_equal(seq.matrices.S, par.matrices.S)

    def test_results_keep_cell_order(self):
        graph = make_chain_train()
        cells = [SweepCell("checkpoint_all", None),
                 SweepCell("linearized_sqrt_n", tight_budget(graph, 0.8)),
                 SweepCell("checkpoint_all", tight_budget(graph, 0.9))]
        results = fresh_service().sweep(graph, cells, max_workers=3)
        assert [r.budget for r in results] == [None, tight_budget(graph, 0.8),
                                               tight_budget(graph, 0.9)]

    def test_unknown_strategy_fails_before_solving(self):
        graph = make_chain_train()
        service = fresh_service()
        with pytest.raises(KeyError):
            service.sweep(graph, [("checkpoint_all", None), ("nope", None)])
        assert service.stats.solver_calls == 0

    def test_empty_cells(self):
        assert fresh_service().sweep(make_chain_train(), []) == []

    def test_duplicate_cells_solved_once(self):
        # budget_grid can emit duplicate budgets on tiny graphs; identical
        # cells in one sweep must be single-flighted, not raced in parallel.
        graph = make_chain_train()
        budget = ample_budget(graph)
        service = fresh_service()
        results = service.sweep(graph, [("checkmate_approx", budget)] * 4,
                                max_workers=4)
        assert len(results) == 4
        assert service.stats.solver_calls == 1
        assert all(r is results[0] for r in results)

    def test_warm_cache_sweep_is_solver_free(self):
        graph = make_chain_train()
        budgets = [tight_budget(graph, f) for f in (0.6, 0.8)]
        service = fresh_service()
        cells = service.grid(("checkpoint_all", "checkmate_approx"), budgets)
        service.sweep(graph, cells)
        calls_after_cold = service.stats.solver_calls
        # checkpoint_all has no budget knob but distinct budgets are distinct
        # cells; every cell must have invoked a solver exactly once.
        assert calls_after_cold == len(cells)
        service.sweep(graph, cells)
        assert service.stats.solver_calls == calls_after_cold


class TestBudgetSweepThroughService:
    #: Inline replica of the pre-service sequential Figure-5 loop, kept as the
    #: reference semantics for the experiment.
    @staticmethod
    def _seed_budget_sweep(graph, budgets, strategies, ilp_time_limit_s=120.0):
        from repro.baselines.griewank import is_linear_forward_graph
        from repro.solvers.common import build_scheduled_result

        def solve_one(info, budget):
            kwargs = {}
            if info.key == "checkmate_ilp":
                kwargs["time_limit_s"] = ilp_time_limit_s
            try:
                return info.solve(graph, budget, **kwargs)
            except ValueError as exc:
                return build_scheduled_result(info.key, graph, None, budget=budget,
                                              feasible=False,
                                              solver_status=f"not-applicable: {exc}")

        is_linear = is_linear_forward_graph(graph)
        points = []
        for key in strategies:
            info = STRATEGIES[key]
            if info.linear_only and not is_linear:
                continue
            if not info.has_budget_knob:
                result = solve_one(info, max(budgets))
                for budget in budgets:
                    fits = result.feasible and result.peak_memory <= budget
                    points.append((key, budget, fits,
                                   result.compute_cost if fits else float("inf"),
                                   result.peak_memory))
                continue
            for budget in budgets:
                result = solve_one(info, budget)
                ok = result.feasible and result.peak_memory <= budget
                points.append((key, budget, ok,
                               result.compute_cost if ok else float("inf"),
                               result.peak_memory if result.matrices is not None else 0))
        return points

    def test_unet_preset_identical_to_seed_loop_and_cached(self):
        """Acceptance: U-Net sweep matches the seed loop; warm rerun solves nothing."""
        graph = build_training_graph("unet", scale="ci")
        budgets = budget_grid(graph, num_budgets=3, low_fraction=0.55)
        strategies = ("checkpoint_all", "ap_sqrt_n", "ap_greedy",
                      "linearized_sqrt_n", "linearized_greedy", "checkmate_approx")

        expected = self._seed_budget_sweep(graph, budgets, strategies)
        service = fresh_service()
        points = budget_sweep(graph, budgets, strategies=strategies, service=service)

        assert [(p.strategy, p.budget, p.feasible, p.compute_cost, p.peak_memory)
                for p in points] == expected

        # Warm rerun: identical points, zero solver invocations.
        calls_after_cold = service.stats.solver_calls
        assert calls_after_cold > 0
        again = budget_sweep(graph, budgets, strategies=strategies, service=service)
        assert service.stats.solver_calls == calls_after_cold
        assert [(p.strategy, p.budget, p.feasible, p.compute_cost, p.peak_memory)
                for p in again] == expected

    def test_linear_chain_identical_to_seed_loop(self, tiny_vgg_train):
        budgets = budget_grid(tiny_vgg_train, num_budgets=2, low_fraction=0.6)
        strategies = ("checkpoint_all", "chen_sqrt_n", "chen_greedy",
                      "linearized_greedy", "checkmate_approx")
        expected = self._seed_budget_sweep(tiny_vgg_train, budgets, strategies)
        points = budget_sweep(tiny_vgg_train, budgets, strategies=strategies,
                              service=fresh_service())
        assert [(p.strategy, p.budget, p.feasible, p.compute_cost, p.peak_memory)
                for p in points] == expected

    def test_sequential_flag_matches_parallel(self):
        graph = make_chain_train()
        budgets = budget_grid(graph, num_budgets=2)
        kwargs = dict(strategies=("checkpoint_all", "linearized_greedy"),
                      ilp_time_limit_s=30)
        par = budget_sweep(graph, budgets, service=fresh_service(), **kwargs)
        seq = budget_sweep(graph, budgets, service=fresh_service(), parallel=False,
                           **kwargs)
        assert [(p.strategy, p.budget, p.feasible, p.compute_cost) for p in par] \
            == [(p.strategy, p.budget, p.feasible, p.compute_cost) for p in seq]


class TestStrategyMatrixFromRegistry:
    def test_table1_rendering_excludes_extra_solvers(self):
        from repro.experiments import strategy_matrix_rows

        service = fresh_service()
        assert len(service.registry) > 10  # bnb + min_r registered
        rows = strategy_matrix_rows(service)
        assert len(rows) == 10
        keys = {r[0] for r in rows}
        assert "checkmate_bnb" not in keys and "min_r" not in keys
