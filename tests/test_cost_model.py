"""Tests for the FLOP / profile / uniform cost models and memory accounting."""

import numpy as np
import pytest

from repro.autodiff import make_training_graph
from repro.cost_model import (
    CPU_DEVICE,
    NVIDIA_V100,
    FlopCostModel,
    ProfileCostModel,
    UniformCostModel,
    memory_breakdown,
)
from repro.models import vgg16


@pytest.fixture(scope="module")
def vgg_forward():
    return vgg16(batch_size=2, resolution=32)


class TestFlopAndUniform:
    def test_flop_model_is_identity(self, vgg_forward):
        costs = FlopCostModel().costs(vgg_forward)
        assert np.allclose(costs, vgg_forward.cost_vector)

    def test_flop_model_scaling(self, vgg_forward):
        assert np.allclose(FlopCostModel(scale=2.0).costs(vgg_forward),
                           2 * vgg_forward.cost_vector)

    def test_flop_model_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            FlopCostModel(scale=0)

    def test_uniform_model(self, vgg_forward):
        assert np.allclose(UniformCostModel().costs(vgg_forward), 1.0)

    def test_apply_returns_new_graph(self, vgg_forward):
        g2 = UniformCostModel().apply(vgg_forward)
        assert g2.total_cost() == vgg_forward.size
        assert vgg_forward.total_cost() != vgg_forward.size


class TestProfileModel:
    def test_costs_positive_and_finite(self, vgg_forward):
        costs = ProfileCostModel().costs(vgg_forward)
        assert np.all(costs > 0)
        assert np.all(np.isfinite(costs))

    def test_deterministic(self, vgg_forward):
        a = ProfileCostModel(seed=1).costs(vgg_forward)
        b = ProfileCostModel(seed=1).costs(vgg_forward)
        assert np.array_equal(a, b)

    def test_seed_changes_jitter(self, vgg_forward):
        a = ProfileCostModel(seed=1).costs(vgg_forward)
        b = ProfileCostModel(seed=2).costs(vgg_forward)
        assert not np.array_equal(a, b)
        assert np.allclose(a, b, rtol=0.2)  # jitter is small

    def test_faster_device_is_faster(self, vgg_forward):
        v100 = ProfileCostModel(device=NVIDIA_V100).costs(vgg_forward).sum()
        cpu = ProfileCostModel(device=CPU_DEVICE).costs(vgg_forward).sum()
        assert v100 < cpu

    def test_big_layers_cost_more(self, vgg_forward):
        costs = ProfileCostModel().costs(vgg_forward)
        flops = vgg_forward.cost_vector
        heaviest = int(np.argmax(flops))
        lightest = int(np.argmin(flops + (flops == 0) * flops.max()))
        assert costs[heaviest] > costs[lightest]

    def test_works_on_training_graph(self, vgg_forward):
        train = make_training_graph(vgg_forward)
        costs = ProfileCostModel().costs(train)
        assert costs.shape == (train.size,)
        assert np.all(costs > 0)

    def test_nonuniform_costs(self, vgg_forward):
        # The paper's motivation: per-layer costs vary by orders of magnitude.
        costs = ProfileCostModel().costs(vgg_forward)
        assert costs.max() / costs.min() > 3


class TestDeviceSpecs:
    def test_v100_matches_paper_description(self):
        assert NVIDIA_V100.memory_gb == pytest.approx(16.0)
        assert NVIDIA_V100.peak_flops > 1e13

    def test_device_memory_property(self):
        assert CPU_DEVICE.memory_bytes == int(CPU_DEVICE.memory_gb * 2**30)


class TestMemoryBreakdown:
    def test_features_dominate_parameters_at_large_batch(self):
        g = vgg16(batch_size=64, resolution=64)
        b = memory_breakdown(g)
        assert b.features > b.parameters
        assert 0.0 < b.feature_fraction() < 1.0

    def test_totals_add_up(self, vgg_forward):
        b = memory_breakdown(vgg_forward)
        assert b.total == b.features + b.parameters + b.parameter_gradients + b.workspace + b.inputs

    def test_gradients_match_parameters(self, vgg_forward):
        b = memory_breakdown(vgg_forward)
        assert b.parameter_gradients == b.parameters

    def test_as_row_shape(self, vgg_forward):
        assert len(memory_breakdown(vgg_forward).as_row()) == 7
