"""Shared fixtures: small graphs used throughout the test-suite."""

from __future__ import annotations

import pytest

from repro.autodiff import BackwardConfig, make_training_graph
from repro.core import DFGraph, NodeInfo, linear_graph
from repro.cost_model import FlopCostModel
from repro.models import resnet_tiny, unet, vgg16


@pytest.fixture
def chain5() -> DFGraph:
    """A 5-node unit linear forward chain."""
    return linear_graph(5, cost=1.0, memory=1)


@pytest.fixture
def chain5_train(chain5) -> DFGraph:
    """Training graph (10 nodes) of the 5-node chain, unit-ish costs."""
    return make_training_graph(chain5)


@pytest.fixture
def varied_chain_train() -> DFGraph:
    """A chain with strongly non-uniform costs and memories, differentiated."""
    fwd = linear_graph(6, cost=[1, 50, 2, 30, 4, 10], memory=[8, 2, 16, 4, 32, 1])
    return make_training_graph(fwd)


@pytest.fixture
def diamond_graph() -> DFGraph:
    """A small non-linear DAG: one fork/join (residual-style) plus a tail.

        0 -> 1 -> 3 -> 4
        0 ------> 3          (skip edge)
    """
    nodes = [NodeInfo(f"n{i}", cost=float(i + 1), memory=2 + i) for i in range(5)]
    deps = {0: [], 1: [0], 2: [1], 3: [0, 2], 4: [3]}
    return DFGraph(nodes=nodes, deps=deps, name="diamond")


@pytest.fixture
def diamond_train(diamond_graph) -> DFGraph:
    return make_training_graph(diamond_graph)


@pytest.fixture(scope="session")
def tiny_vgg_train() -> DFGraph:
    """A small VGG16 training graph with FLOP costs (46 nodes)."""
    return FlopCostModel().apply(make_training_graph(vgg16(batch_size=2, resolution=32)))


@pytest.fixture(scope="session")
def tiny_unet_train() -> DFGraph:
    """A small U-Net training graph: the non-linear workload."""
    fwd = unet(batch_size=1, resolution=(32, 32), base_filters=4, depth=2, convs_per_block=1)
    return FlopCostModel().apply(make_training_graph(fwd))


@pytest.fixture(scope="session")
def tiny_resnet_train() -> DFGraph:
    """A small residual network training graph."""
    return FlopCostModel().apply(make_training_graph(resnet_tiny(batch_size=1, resolution=16)))
