"""End-to-end numeric tests: rematerialized plans compute identical results."""

import numpy as np
import pytest

from helpers import tight_budget

from repro.core import (
    checkpoint_all_schedule,
    checkpoint_last_node_schedule,
    generate_execution_plan,
)
from repro.execution import (
    execute_checkpoint_all,
    execute_plan,
    make_numeric_chain,
    make_numeric_dag,
)
from repro.core.simulator import PlanSimulationError
from repro.solvers import solve_approx_lp_rounding, solve_ilp_rematerialization


class TestNumericGraphs:
    def test_chain_builder_shapes(self):
        numeric = make_numeric_chain(num_layers=4, width=8, seed=0)
        assert numeric.graph.size == 6  # input + 4 layers + loss
        assert numeric.graph.is_linear_chain()

    def test_dag_builder_deterministic(self):
        a = make_numeric_dag(num_nodes=8, seed=3)
        b = make_numeric_dag(num_nodes=8, seed=3)
        assert list(a.graph.edges()) == list(b.graph.edges())

    def test_missing_function_rejected(self):
        from repro.execution.ops import NumericGraph
        numeric = make_numeric_chain(3)
        funcs = dict(numeric.functions)
        funcs.pop(0)
        with pytest.raises(ValueError):
            NumericGraph(graph=numeric.graph, functions=funcs)


class TestReferenceExecution:
    def test_checkpoint_all_plan_matches_reference(self):
        numeric = make_numeric_chain(num_layers=5, width=8, seed=1)
        reference = execute_checkpoint_all(numeric)
        plan = generate_execution_plan(numeric.graph, checkpoint_all_schedule(numeric.graph))
        result = execute_plan(numeric, plan)
        for node, value in reference.outputs.items():
            if node in result.outputs:
                np.testing.assert_allclose(result.outputs[node], value)
        assert result.outputs[numeric.graph.terminal_node] == pytest.approx(
            reference.outputs[numeric.graph.terminal_node])


class TestRematerializedExecution:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_lazy_schedule_matches_reference(self, seed):
        numeric = make_numeric_dag(num_nodes=9, width=6, seed=seed)
        reference = execute_checkpoint_all(numeric)
        plan = generate_execution_plan(numeric.graph,
                                       checkpoint_last_node_schedule(numeric.graph))
        result = execute_plan(numeric, plan)
        np.testing.assert_allclose(result.outputs[numeric.graph.terminal_node],
                                   reference.outputs[numeric.graph.terminal_node])
        assert result.num_compute > reference.num_compute

    def test_ilp_schedule_matches_reference_and_saves_memory(self):
        numeric = make_numeric_chain(num_layers=8, width=16, seed=2)
        graph = numeric.graph
        reference = execute_checkpoint_all(numeric)

        budget = tight_budget(graph, 0.55)
        solved = solve_ilp_rematerialization(graph, budget)
        assert solved.feasible
        result = execute_plan(numeric, solved.plan)
        np.testing.assert_allclose(result.outputs[graph.terminal_node],
                                   reference.outputs[graph.terminal_node])
        assert result.peak_live_bytes <= reference.peak_live_bytes

    def test_approx_schedule_matches_reference(self):
        numeric = make_numeric_chain(num_layers=8, width=16, seed=4)
        graph = numeric.graph
        reference = execute_checkpoint_all(numeric)
        solved = solve_approx_lp_rounding(graph, tight_budget(graph, 0.6))
        assert solved.feasible
        result = execute_plan(numeric, solved.plan)
        np.testing.assert_allclose(result.outputs[graph.terminal_node],
                                   reference.outputs[graph.terminal_node])

    def test_compute_counts_reported(self):
        numeric = make_numeric_chain(num_layers=5, width=4)
        plan = generate_execution_plan(numeric.graph,
                                       checkpoint_last_node_schedule(numeric.graph))
        result = execute_plan(numeric, plan)
        assert sum(result.compute_counts.values()) == result.num_compute
        assert max(result.compute_counts.values()) > 1  # something was rematerialized

    def test_record_outputs_subset(self):
        numeric = make_numeric_chain(num_layers=4, width=4)
        plan = generate_execution_plan(numeric.graph, checkpoint_all_schedule(numeric.graph))
        result = execute_plan(numeric, plan, record_outputs=[numeric.graph.terminal_node])
        assert set(result.outputs) == {numeric.graph.terminal_node}

    def test_bad_plan_raises(self):
        from repro.core.plan import AllocateRegister, ComputeNode, ExecutionPlan
        numeric = make_numeric_chain(num_layers=3, width=4)
        plan = ExecutionPlan()
        plan.append(AllocateRegister(0, 2, 4))
        plan.append(ComputeNode(0, 2))  # parent value missing
        with pytest.raises(PlanSimulationError):
            execute_plan(numeric, plan)
