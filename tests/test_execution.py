"""End-to-end numeric tests: rematerialized plans compute identical results."""

import numpy as np
import pytest

from helpers import tight_budget

from repro.core import (
    checkpoint_all_schedule,
    checkpoint_last_node_schedule,
    generate_execution_plan,
)
from repro.execution import (
    execute_checkpoint_all,
    execute_plan,
    make_numeric_chain,
    make_numeric_dag,
)
from repro.core.simulator import PlanSimulationError
from repro.solvers import solve_approx_lp_rounding, solve_ilp_rematerialization


class TestNumericGraphs:
    def test_chain_builder_shapes(self):
        numeric = make_numeric_chain(num_layers=4, width=8, seed=0)
        assert numeric.graph.size == 6  # input + 4 layers + loss
        assert numeric.graph.is_linear_chain()

    def test_dag_builder_deterministic(self):
        a = make_numeric_dag(num_nodes=8, seed=3)
        b = make_numeric_dag(num_nodes=8, seed=3)
        assert list(a.graph.edges()) == list(b.graph.edges())

    def test_missing_function_rejected(self):
        from repro.execution.ops import NumericGraph
        numeric = make_numeric_chain(3)
        funcs = dict(numeric.functions)
        funcs.pop(0)
        with pytest.raises(ValueError):
            NumericGraph(graph=numeric.graph, functions=funcs)


class TestReferenceExecution:
    def test_checkpoint_all_plan_matches_reference(self):
        numeric = make_numeric_chain(num_layers=5, width=8, seed=1)
        reference = execute_checkpoint_all(numeric)
        plan = generate_execution_plan(numeric.graph, checkpoint_all_schedule(numeric.graph))
        result = execute_plan(numeric, plan)
        for node, value in reference.outputs.items():
            if node in result.outputs:
                np.testing.assert_allclose(result.outputs[node], value)
        assert result.outputs[numeric.graph.terminal_node] == pytest.approx(
            reference.outputs[numeric.graph.terminal_node])


class TestRematerializedExecution:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_lazy_schedule_matches_reference(self, seed):
        numeric = make_numeric_dag(num_nodes=9, width=6, seed=seed)
        reference = execute_checkpoint_all(numeric)
        plan = generate_execution_plan(numeric.graph,
                                       checkpoint_last_node_schedule(numeric.graph))
        result = execute_plan(numeric, plan)
        np.testing.assert_allclose(result.outputs[numeric.graph.terminal_node],
                                   reference.outputs[numeric.graph.terminal_node])
        assert result.num_compute > reference.num_compute

    def test_ilp_schedule_matches_reference_and_saves_memory(self):
        numeric = make_numeric_chain(num_layers=8, width=16, seed=2)
        graph = numeric.graph
        reference = execute_checkpoint_all(numeric)

        budget = tight_budget(graph, 0.55)
        solved = solve_ilp_rematerialization(graph, budget)
        assert solved.feasible
        result = execute_plan(numeric, solved.plan)
        np.testing.assert_allclose(result.outputs[graph.terminal_node],
                                   reference.outputs[graph.terminal_node])
        assert result.peak_live_bytes <= reference.peak_live_bytes

    def test_approx_schedule_matches_reference(self):
        numeric = make_numeric_chain(num_layers=8, width=16, seed=4)
        graph = numeric.graph
        reference = execute_checkpoint_all(numeric)
        solved = solve_approx_lp_rounding(graph, tight_budget(graph, 0.6))
        assert solved.feasible
        result = execute_plan(numeric, solved.plan)
        np.testing.assert_allclose(result.outputs[graph.terminal_node],
                                   reference.outputs[graph.terminal_node])

    def test_compute_counts_reported(self):
        numeric = make_numeric_chain(num_layers=5, width=4)
        plan = generate_execution_plan(numeric.graph,
                                       checkpoint_last_node_schedule(numeric.graph))
        result = execute_plan(numeric, plan)
        assert sum(result.compute_counts.values()) == result.num_compute
        assert max(result.compute_counts.values()) > 1  # something was rematerialized

    def test_record_outputs_subset(self):
        numeric = make_numeric_chain(num_layers=4, width=4)
        plan = generate_execution_plan(numeric.graph, checkpoint_all_schedule(numeric.graph))
        result = execute_plan(numeric, plan, record_outputs=[numeric.graph.terminal_node])
        assert set(result.outputs) == {numeric.graph.terminal_node}

    def test_bad_plan_raises(self):
        from repro.core.plan import AllocateRegister, ComputeNode, ExecutionPlan
        numeric = make_numeric_chain(num_layers=3, width=4)
        plan = ExecutionPlan()
        plan.append(AllocateRegister(0, 2, 4))
        plan.append(ComputeNode(0, 2))  # parent value missing
        with pytest.raises(PlanSimulationError):
            execute_plan(numeric, plan)


# --------------------------------------------------------------------------- #
# Register-reuse contract: executor and simulator account and raise alike
# --------------------------------------------------------------------------- #
def _chain_numeric_and_plan_builders():
    """A 3-node chain (32 B per value) plus plan-statement shorthands."""
    from repro.core.plan import (
        AllocateRegister,
        ComputeNode,
        DeallocateRegister,
        ExecutionPlan,
    )
    numeric = make_numeric_chain(num_layers=1, width=4, seed=0)  # input, layer, loss

    def plan_of(*statements):
        plan = ExecutionPlan(statements=list(statements),
                             graph_name=numeric.graph.name)
        return plan

    return (numeric, plan_of, AllocateRegister, ComputeNode, DeallocateRegister)


class TestRegisterReuseContract:
    """The confirmed accounting bugs: recompute into a still-live register."""

    def test_executor_does_not_double_count_recompute(self):
        # 3 compute statements, one register reused for node 0 (32 B values):
        # the old executor charged 32 B per compute without releasing the
        # replaced value (96 B "peak"); the true peak holds node 0 once plus
        # node 1 once = 64 B.
        numeric, plan_of, Alloc, Compute, Dealloc = _chain_numeric_and_plan_builders()
        plan = plan_of(
            Alloc(0, 0, 32), Compute(0, 0), Compute(0, 0),
            Alloc(1, 1, 32), Compute(1, 1),
            Dealloc(0, 0), Dealloc(1, 1),
        )
        plan.validate_structure()  # repeated compute per register is legal
        result = execute_plan(numeric, plan)
        assert result.peak_live_bytes == 64
        assert result.num_compute == 3
        assert result.compute_counts == {0: 2, 1: 1}

    def test_simulator_refcount_survives_recompute_then_dealloc(self):
        # Two computes into one register then a single dealloc: the old
        # simulator leaked the refcount, leaving node 0 "resident" after its
        # register was freed -- so the dependent compute below silently
        # passed validation.  It must raise.
        from repro.core.simulator import simulate_plan
        numeric, plan_of, Alloc, Compute, Dealloc = _chain_numeric_and_plan_builders()
        graph = numeric.graph
        plan = plan_of(
            Alloc(0, 0, 32), Compute(0, 0), Compute(0, 0), Dealloc(0, 0),
            Alloc(1, 1, 32), Compute(1, 1),  # parent 0 is dead: must raise
        )
        with pytest.raises(PlanSimulationError, match="not resident"):
            simulate_plan(graph, plan)
        with pytest.raises(PlanSimulationError, match="not resident"):
            execute_plan(numeric, plan)

    def test_simulator_memory_constant_across_recompute(self):
        from repro.core.simulator import simulate_plan
        numeric, plan_of, Alloc, Compute, Dealloc = _chain_numeric_and_plan_builders()
        plan = plan_of(
            Alloc(0, 0, 32), Compute(0, 0), Compute(0, 0),
            Alloc(1, 1, 32), Compute(1, 1),
            Dealloc(0, 0), Dealloc(1, 1),
        )
        trace = simulate_plan(numeric.graph, plan)
        overhead = numeric.graph.constant_overhead
        assert trace.peak_memory == overhead + 64
        # After both deallocations everything is released again.
        assert trace.memory_by_statement[-1] == overhead

    @pytest.mark.parametrize("mutation", ["dead_compute", "dead_dealloc",
                                          "realloc_live", "foreign_node"])
    def test_executor_and_simulator_raise_identically(self, mutation):
        from repro.core.simulator import simulate_plan
        numeric, plan_of, Alloc, Compute, Dealloc = _chain_numeric_and_plan_builders()
        if mutation == "dead_compute":
            plan = plan_of(Alloc(0, 0, 32), Compute(0, 0), Dealloc(0, 0),
                           Compute(0, 0))
        elif mutation == "dead_dealloc":
            plan = plan_of(Alloc(0, 0, 32), Compute(0, 0), Dealloc(0, 0),
                           Dealloc(0, 0))
        elif mutation == "realloc_live":
            plan = plan_of(Alloc(0, 0, 32), Compute(0, 0), Alloc(0, 1, 32))
        else:  # register allocated for node 0, computed with node 1
            plan = plan_of(Alloc(0, 0, 32), Compute(0, 0), Alloc(1, 1, 32),
                           Compute(1, 0))
        with pytest.raises(PlanSimulationError) as sim_err:
            simulate_plan(numeric.graph, plan)
        with pytest.raises(PlanSimulationError) as exec_err:
            execute_plan(numeric, plan)
        assert str(sim_err.value) == str(exec_err.value)

    def test_duplicated_value_survives_one_dealloc(self):
        # Node 0 computed into two registers: deallocating either copy keeps
        # the node resident (residency = "some register holds the value").
        from repro.core.simulator import simulate_plan
        numeric, plan_of, Alloc, Compute, Dealloc = _chain_numeric_and_plan_builders()
        plan = plan_of(
            Alloc(0, 0, 32), Compute(0, 0),
            Alloc(1, 0, 32), Compute(1, 0),
            Dealloc(0, 0),                     # first copy freed
            Alloc(2, 1, 32), Compute(2, 1),    # parent still resident via %1
            Dealloc(1, 0), Dealloc(2, 1),
        )
        result = execute_plan(numeric, plan)
        assert result.peak_live_bytes == 64  # both copies live at once
        trace = simulate_plan(numeric.graph, plan)
        assert trace.peak_memory == numeric.graph.constant_overhead + 64

    def test_algorithm1_plans_unchanged_by_fixes(self):
        # Plans lowered from (R, S) never recompute into a live register, so
        # the fixes must not move their accounting.
        numeric = make_numeric_chain(num_layers=6, width=8, seed=5)
        plan = generate_execution_plan(numeric.graph,
                                       checkpoint_last_node_schedule(numeric.graph))
        from repro.core.simulator import simulate_plan
        result = execute_plan(numeric, plan)
        trace = simulate_plan(numeric.graph, plan)
        assert (result.peak_live_bytes + numeric.graph.constant_overhead
                == trace.peak_memory)
