"""Tests for the observability stack: tracer, metrics registry, exposition.

Covers the span lifecycle (nesting, buffering-until-flush, thread affinity,
sampling), trace propagation through the JobQueue, the Prometheus text
exposition (label escaping, histogram bucket monotonicity, the strict
validator), the Chrome trace-event export and its round-trip through
``span_tree``/``spans_from_tree``, and the LatencyWindow quantile edge cases.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (
    Counter,
    Histogram,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    flatten_numeric,
    format_waterfall,
    install_phase_histograms,
    set_tracer,
    span_tree,
    spans_from_tree,
    validate_prometheus_text,
)
from repro.obs.trace import TraceStore
from repro.server import JobQueue
from repro.server.metrics import LatencyWindow
from repro.service import SolveService


@pytest.fixture
def tracer():
    """A fresh enabled tracer installed as the process tracer."""
    tracer = Tracer()
    tracer.enable()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


# --------------------------------------------------------------------------- #
# Span lifecycle
# --------------------------------------------------------------------------- #
class TestSpans:
    def test_nested_spans_share_trace_and_link_parents(self, tracer):
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        (trace_id,) = tracer.store.trace_ids()
        spans = {s.name: s for s in tracer.store.spans(trace_id)}
        assert set(spans) == {"outer", "middle", "inner", "sibling"}
        assert spans["outer"].parent_id is None
        assert spans["middle"].parent_id == spans["outer"].span_id
        assert spans["inner"].parent_id == spans["middle"].span_id
        assert spans["sibling"].parent_id == spans["outer"].span_id
        assert len({s.trace_id for s in spans.values()}) == 1
        for name in ("middle", "inner", "sibling"):
            assert spans[name].start_s >= spans["outer"].start_s
            assert spans[name].end_s <= spans["outer"].end_s

    def test_spans_buffer_until_root_exit(self, tracer):
        with tracer.span("root"):
            with tracer.span("child"):
                pass
            # The child has finished but the trace is still open: nothing
            # is visible in the store yet (spans flush in one batch).
            assert tracer.store.trace_ids() == []
        assert len(tracer.store.spans(tracer.store.trace_ids()[0])) == 2

    def test_consecutive_roots_get_distinct_traces(self, tracer):
        for _ in range(3):
            with tracer.span("root"):
                pass
        assert len(tracer.store.trace_ids()) == 3

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer()
        with tracer.span("ignored", attr=1) as span:
            span.set_attribute("more", 2)
        assert tracer.store.trace_ids() == []

    def test_attributes_survive_to_the_store(self, tracer):
        with tracer.span("op", strategy="ilp") as span:
            span.set_attribute("cache_hit", True)
        (trace_id,) = tracer.store.trace_ids()
        (span,) = tracer.store.spans(trace_id)
        assert span.attributes == {"strategy": "ilp", "cache_hit": True}

    def test_thread_affinity(self, tracer):
        """Each span records the thread that ran it; contexts hand traces over."""
        with tracer.span("root"):
            ctx = tracer.current_context()

            def work():
                with tracer.context(*ctx):
                    with tracer.span("worker-side"):
                        pass

            thread = threading.Thread(target=work, name="obs-worker")
            thread.start()
            thread.join()
        (trace_id,) = tracer.store.trace_ids()
        spans = {s.name: s for s in tracer.store.spans(trace_id)}
        assert spans["worker-side"].thread_name == "obs-worker"
        assert spans["worker-side"].thread_id != spans["root"].thread_id
        assert spans["worker-side"].parent_id == spans["root"].span_id

    def test_record_span_and_child_span(self, tracer):
        import time
        start = time.perf_counter()
        end = start + 0.25
        with tracer.span("root"):
            assert tracer.record_child_span("pre-measured", start, end, k="v")
        (trace_id,) = tracer.store.trace_ids()
        spans = {s.name: s for s in tracer.store.spans(trace_id)}
        assert spans["pre-measured"].duration_s == pytest.approx(0.25)
        assert spans["pre-measured"].parent_id == spans["root"].span_id
        assert spans["pre-measured"].attributes == {"k": "v"}
        # Outside any trace, record_child_span declines...
        assert not tracer.record_child_span("orphan", start, end)
        # ...but record_span with an explicit trace id records directly.
        tracer.record_span("explicit", "trace-x", start, end)
        (span,) = tracer.store.spans("trace-x")
        assert span.name == "explicit"

    def test_sample_rate_zero_drops_whole_trace(self, tracer):
        tracer.enable(sample_rate=0.0)
        with tracer.span("root"):
            assert tracer.thread_has_trace()
            assert tracer.current_trace_id() is None
            with tracer.span("child"):
                pass
            # Sampled-out traces swallow pre-measured spans without falling
            # back to a fresh trace.
            assert tracer.record_child_span("late", 0.0, 1.0)
        assert tracer.store.trace_ids() == []

    def test_span_end_hook_sees_batched_pairs(self, tracer):
        batches = []
        tracer.on_span_end = batches.append
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert len(batches) == 1  # one flush for the whole trace
        names = [name for name, _ in batches[0]]
        assert sorted(names) == ["child", "root"]
        assert all(duration >= 0.0 for _, duration in batches[0])

    def test_store_bounds_traces_and_spans(self):
        store = TraceStore(max_traces=2, max_spans_per_trace=3)
        for t in range(4):
            for s in range(5):
                store.add((f"s{s}", f"t{t}", s + 1, None, 0.0, 1.0, 0, "m", None))
        assert store.trace_ids() == ["t2", "t3"]  # LRU kept the newest two
        assert len(store.spans("t3")) == 3
        assert store.stats()["dropped_spans"] > 0


# --------------------------------------------------------------------------- #
# JobQueue trace propagation
# --------------------------------------------------------------------------- #
class TestJobQueueTracing:
    def test_job_inherits_submitter_trace(self, tracer, chain5_train):
        with JobQueue(SolveService(), num_workers=1) as queue:
            with tracer.span("request"):
                request_trace = tracer.current_trace_id()
                job = queue.submit_solve(chain5_train, "checkpoint_all")
            assert job.wait(30)
        assert job.trace_id == request_trace
        names = {s.name for s in tracer.store.spans(job.trace_id)}
        assert {"queue-wait", "job-run", "solve"} <= names
        assert job.phases and "solve" in job.phases

    def test_programmatic_submit_opens_fresh_trace(self, tracer, chain5_train):
        with JobQueue(SolveService(), num_workers=1) as queue:
            job = queue.submit_solve(chain5_train, "checkpoint_all")
            assert job.wait(30)
        assert job.trace_id is not None
        assert {s.name for s in tracer.store.spans(job.trace_id)} >= {"job-run"}

    def test_deduplicated_jobs_share_one_trace(self, tracer, chain5_train):
        queue = JobQueue(SolveService(), num_workers=1)
        try:
            # Submit before the workers start so the three jobs coalesce
            # into one flight -- and therefore one shared trace.
            jobs = [queue.submit_solve(chain5_train, "checkpoint_all")
                    for _ in range(3)]
            queue.start()
            for job in jobs:
                assert job.wait(30)
        finally:
            queue.shutdown(wait=True)
        assert jobs[1].deduplicated and jobs[2].deduplicated
        assert len({job.trace_id for job in jobs}) == 1


# --------------------------------------------------------------------------- #
# Metrics registry and Prometheus exposition
# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_labels_and_monotonicity(self):
        counter = Counter("repro_requests_total", labelnames=("endpoint",))
        counter.inc(endpoint="/v1/solve")
        counter.inc(2.5, endpoint="/v1/solve")
        assert counter.value(endpoint="/v1/solve") == pytest.approx(3.5)
        with pytest.raises(ValueError):
            counter.inc(-1.0, endpoint="/v1/solve")
        with pytest.raises(ValueError):
            counter.inc(route="/v1/solve")  # wrong label name

    def test_histogram_buckets_cumulative_and_monotone(self):
        hist = Histogram("repro_latency_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        cumulative, total, count = hist.snapshot()
        assert cumulative == [1.0, 3.0, 4.0, 5.0]  # ends in the +Inf bucket
        assert all(b >= a for a, b in zip(cumulative, cumulative[1:]))
        assert count == 5.0
        assert total == pytest.approx(56.05)

    def test_observe_many_at_matches_individual_observes(self):
        one = Histogram("h_one", buckets=(1.0, 2.0))
        many = Histogram("h_many", buckets=(1.0, 2.0))
        values = (0.5, 1.5, 3.0, 0.1)
        for v in values:
            one.observe_at((), v)
        many.observe_many_at([((), v) for v in values])
        assert one.snapshot() == many.snapshot()

    def test_registry_get_or_create_and_type_conflicts(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total")
        assert registry.counter("repro_x_total") is a
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total")
        with pytest.raises(ValueError):
            registry.counter("repro_x_total", labelnames=("other",))

    def test_prometheus_render_escapes_label_values(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_odd_total", "help with\nnewline",
                                   labelnames=("path",))
        hostile = 'va"lue\\with\nhostile chars'
        counter.inc(path=hostile)
        text = registry.render_prometheus()
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        families = validate_prometheus_text(text)
        assert families["repro_odd_total"] == 1

    def test_prometheus_render_round_trips_histograms(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_phase_seconds",
                                  labelnames=("phase",), buckets=(0.1, 1.0))
        hist.observe(0.05, phase="solve")
        hist.observe(20.0, phase="solve")
        hist.observe(0.5, phase="decode")
        text = registry.render_prometheus()
        families = validate_prometheus_text(text)
        # 2 label sets x 3 cumulative buckets, plus sum/count per label set.
        assert families["repro_phase_seconds_bucket"] == 6
        assert families["repro_phase_seconds_sum"] == 2
        assert families["repro_phase_seconds_count"] == 2
        assert 'le="+Inf"' in text

    def test_validator_rejects_malformed_text(self):
        with pytest.raises(ValueError):
            validate_prometheus_text("bad metric line without value")
        with pytest.raises(ValueError):
            validate_prometheus_text('m{l="unterminated} 1.0')
        # Broken bucket monotonicity is caught, not just syntax.
        broken = (
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1.0"} 3\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1.0\n"
            "h_count 3\n"
        )
        with pytest.raises(ValueError):
            validate_prometheus_text(broken)

    def test_flatten_numeric_skips_non_numeric(self):
        flat = flatten_numeric(
            {"jobs": {"done": 3, "name": "x"}, "uptime_s": 1.5, "flag": True},
            prefix="repro")
        # Strings drop out; booleans become 0/1 gauges.
        assert flat == {"repro_jobs_done": 3.0, "repro_uptime_s": 1.5,
                        "repro_flag": 1.0}

    def test_install_phase_histograms_bridges_tracer(self, tracer):
        registry = MetricsRegistry()
        install_phase_histograms(tracer, registry)
        with tracer.span("solve"):
            pass
        hist = registry.histogram("repro_phase_seconds", labelnames=("phase",))
        _, _, count = hist.snapshot(phase="solve")
        assert count == 1.0


# --------------------------------------------------------------------------- #
# Chrome trace export and tree round-trip
# --------------------------------------------------------------------------- #
class TestExport:
    def _sample_trace(self, tracer):
        with tracer.span("solve", strategy="checkmate_ilp"):
            with tracer.span("compile"):
                pass
            with tracer.span("ilp-solve"):
                pass
        (trace_id,) = tracer.store.trace_ids()
        return tracer.store.spans(trace_id)

    def test_chrome_trace_structure(self, tracer):
        spans = self._sample_trace(tracer)
        payload = json.loads(json.dumps(chrome_trace(spans)))
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"solve", "compile", "ilp-solve"}
        for event in complete:
            assert event["dur"] >= 0 and {"ts", "pid", "tid"} <= set(event)
        assert any(e["name"] == "thread_name" for e in meta)
        solve = next(e for e in complete if e["name"] == "solve")
        assert solve["args"]["strategy"] == "checkmate_ilp"

    def test_span_tree_round_trip(self, tracer):
        spans = self._sample_trace(tracer)
        tree = json.loads(json.dumps(span_tree(spans)))
        assert [node["name"] for node in tree] == ["solve"]
        assert [c["name"] for c in tree[0]["children"]] == ["compile",
                                                            "ilp-solve"]
        rebuilt = spans_from_tree(tree, trace_id="remote")
        assert [(s.name, s.parent_id) for s in rebuilt] == \
            [(s.name, s.parent_id) for s in spans]
        for original, copy in zip(spans, rebuilt):
            assert copy.duration_s == pytest.approx(original.duration_s)
        # The rebuilt spans drive the same renderers as local ones.
        assert "solve" in format_waterfall(rebuilt)
        assert len(chrome_trace(rebuilt)["traceEvents"]) >= 3

    def test_orphan_spans_degrade_to_roots(self):
        orphan = [("child", "t", 7, 99, 0.0, 1.0, 0, "m", None)]
        store = TraceStore()
        store.add_many(orphan)
        tree = span_tree(store.spans("t"))
        assert [n["name"] for n in tree] == ["child"]


# --------------------------------------------------------------------------- #
# LatencyWindow quantiles
# --------------------------------------------------------------------------- #
class TestLatencyWindow:
    def test_empty_window(self):
        window = LatencyWindow()
        assert window.quantile(0.5) is None
        snap = window.snapshot()
        assert snap["count"] == 0 and snap["p99_s"] is None

    def test_single_sample_every_quantile(self):
        window = LatencyWindow()
        window.record(0.25)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert window.quantile(q) == pytest.approx(0.25)

    def test_extreme_quantiles_hit_min_and_max(self):
        window = LatencyWindow()
        for v in (3.0, 1.0, 2.0):
            window.record(v)
        assert window.quantile(0.0) == pytest.approx(1.0)
        assert window.quantile(1.0) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            window.quantile(1.5)

    def test_window_slides_but_totals_accumulate(self):
        window = LatencyWindow(maxlen=2)
        for v in (10.0, 1.0, 2.0):
            window.record(v)
        snap = window.snapshot()
        assert snap["count"] == 3 and snap["window"] == 2
        assert snap["total_s"] == pytest.approx(13.0)
        assert window.quantile(1.0) == pytest.approx(2.0)  # 10.0 rotated out

    def test_p99_tracks_tail(self):
        window = LatencyWindow()
        for _ in range(99):
            window.record(0.01)
        window.record(5.0)
        assert window.quantile(0.99) == pytest.approx(0.01)
        assert window.quantile(1.0) == pytest.approx(5.0)
        assert window.snapshot()["p99_s"] == pytest.approx(0.01)
