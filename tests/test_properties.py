"""Property-based tests (hypothesis) for the core invariants of the system."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.autodiff import make_training_graph
from repro.core import (
    checkpoint_all_schedule,
    compute_free_events,
    generate_execution_plan,
    linear_graph,
    random_layered_dag,
    schedule_compute_cost,
    schedule_peak_memory,
    simulate_plan,
    validate_correctness_constraints,
)
from repro.solvers import solve_min_r
from repro.baselines import segment_checkpoint_schedule

_SETTINGS = dict(deadline=None, max_examples=25,
                 suppress_health_check=[HealthCheck.too_slow])


@st.composite
def small_dags(draw):
    """Random layered DAGs with 4-8 layers, used as solver inputs."""
    layers = draw(st.integers(min_value=3, max_value=6))
    width = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_layered_dag(layers, width, seed=seed)


@st.composite
def chain_training_graphs(draw):
    """Training graphs of small chains with random positive costs and memories."""
    n = draw(st.integers(min_value=2, max_value=6))
    costs = draw(st.lists(st.floats(min_value=0.5, max_value=20), min_size=n, max_size=n))
    mems = draw(st.lists(st.integers(min_value=1, max_value=32), min_size=n, max_size=n))
    return make_training_graph(linear_graph(n, cost=costs, memory=mems))


@given(small_dags())
@settings(**_SETTINGS)
def test_checkpoint_all_is_always_valid(graph):
    matrices = checkpoint_all_schedule(graph)
    assert validate_correctness_constraints(graph, matrices) == []
    assert schedule_compute_cost(graph, matrices) == graph.total_cost()


@given(small_dags(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(**_SETTINGS)
def test_min_r_produces_valid_schedules_for_random_S(graph, seed):
    """Phase two of Algorithm 2 must repair any random checkpoint policy."""
    rng = np.random.default_rng(seed)
    n = graph.size
    S = (rng.random((n, n)) < 0.3).astype(np.uint8)
    matrices = solve_min_r(graph, S)
    assert validate_correctness_constraints(graph, matrices) == []
    # min-R never computes a node before its frontier stage.
    assert np.all(np.triu(matrices.R, k=1) == 0)


@given(small_dags(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(**_SETTINGS)
def test_no_double_deallocation_theorem(graph, seed):
    """Theorem 4.1: FREE events never free the same value twice in a stage."""
    rng = np.random.default_rng(seed)
    n = graph.size
    S = (rng.random((n, n)) < 0.4).astype(np.uint8)
    matrices = solve_min_r(graph, S)
    events = compute_free_events(graph, matrices)
    for t in range(n):
        freed = [i for (tt, _k), nodes in events.items() if tt == t for i in nodes]
        assert len(freed) == len(set(freed))


@given(small_dags(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(**_SETTINGS)
def test_plans_respect_dependencies_and_schedule_peak(graph, seed):
    """Algorithm 1 lowers any feasible (R, S) into a dependency-correct plan
    whose simulated peak never exceeds the paper's U accounting."""
    rng = np.random.default_rng(seed)
    n = graph.size
    S = (rng.random((n, n)) < 0.5).astype(np.uint8)
    matrices = solve_min_r(graph, S)
    plan = generate_execution_plan(graph, matrices)
    trace = simulate_plan(graph, plan)  # raises on dependency violation
    assert trace.peak_memory <= schedule_peak_memory(graph, matrices)
    assert np.isclose(trace.total_cost, schedule_compute_cost(graph, matrices))


@given(chain_training_graphs(), st.data())
@settings(**_SETTINGS)
def test_segment_schedules_valid_for_any_checkpoint_subset(graph, data):
    """Every checkpoint-set baseline yields a correct schedule, whatever the set."""
    n_forward = graph.meta["n_forward"]
    subset = data.draw(st.sets(st.integers(min_value=0, max_value=n_forward - 1)))
    matrices = segment_checkpoint_schedule(graph, subset)
    assert validate_correctness_constraints(graph, matrices) == []
    # Recomputation is bounded by roughly one extra forward pass.
    assert matrices.R.sum() <= graph.size + n_forward + 2


@given(chain_training_graphs())
@settings(**_SETTINGS)
def test_training_graph_structure_properties(graph):
    """Gradient graphs are topologically ordered, flagged, and memory-matched."""
    n_forward = graph.meta["n_forward"]
    assert graph.size == 2 * n_forward
    for i, gid in graph.meta["grad_index"].items():
        assert graph.memory(gid) == graph.memory(i)
        assert graph.nodes[gid].is_backward
    assert all(i < j for i, j in graph.edges())
