"""Tests for the pluggable worker backends, admission control, deadlines,
the shared cross-process plan cache, and client retry.

The process-pool tests spawn real worker processes (spawn context: each
worker pays the interpreter + numpy/scipy import cost, ~1s on a small
machine), so backends are module-scoped where possible and every test
asserts on *deltas* of the cumulative backend stats.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest

from repro.baselines import solve_checkpoint_all
from repro.experiments import build_training_graph
from repro.server import JobQueue, JobState, ServeAPIError, ServeClient, SolveServer
from repro.server.backends import (
    ProcessBackend,
    SolveWork,
    ThreadBackend,
    make_backend,
)
from repro.server.jobs import QueueFullError
from repro.service import PlanCache, SolverOptions, SolverSpec, SolveService, default_registry
from repro.utils.serialization import (
    OPTIONS_FORMAT,
    options_from_wire,
    options_to_wire,
    result_to_wire,
    schedule_to_json,
)

from helpers import ample_budget, tight_budget


FULL_OPTIONS = SolverOptions(
    time_limit_s=12.5,
    lp_time_limit_s=3.25,
    mip_gap=0.015,
    allowance=0.9,
    rounding_mode="deterministic",
    num_samples=3,
    seed=7,
    generate_plan=True,
    max_nodes=500,
    checkpoints=(4, 1, 2),
    deadline_s=2.5,
    entrants=("approx_fixed_half", "checkmate_ilp"),
)


def _never() -> bool:
    return False


# --------------------------------------------------------------------------- #
# Options wire format
# --------------------------------------------------------------------------- #
class TestOptionsWire:
    def test_round_trip_every_field(self):
        # Guard against the dataclass growing a field the wire format forgets.
        wire = options_to_wire(FULL_OPTIONS)
        assert wire["format"] == OPTIONS_FORMAT
        import dataclasses

        field_names = {f.name for f in dataclasses.fields(SolverOptions)}
        assert set(wire["fields"]) == field_names
        restored = options_from_wire(wire)
        assert restored == FULL_OPTIONS
        assert isinstance(restored.checkpoints, tuple)

    def test_none_fields_omitted(self):
        wire = options_to_wire(SolverOptions(seed=3))
        assert wire["fields"] == {"seed": 3}
        assert options_from_wire(wire) == SolverOptions(seed=3)

    def test_rejects_unknown_fields_and_bad_format(self):
        with pytest.raises(ValueError):
            options_from_wire({"format": OPTIONS_FORMAT,
                               "fields": {"warp_factor": 9}})
        with pytest.raises(ValueError):
            options_from_wire({"format": "something/else", "fields": {}})

    def test_json_safe(self):
        wire = options_to_wire(FULL_OPTIONS)
        assert options_from_wire(json.loads(json.dumps(wire))) == FULL_OPTIONS


# --------------------------------------------------------------------------- #
# Process backend (module-scoped pool: spawn cost is paid once)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def shared_cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("plans"))


@pytest.fixture(scope="module")
def process_queue(shared_cache_dir):
    service = SolveService(cache=PlanCache(max_entries=64,
                                           cache_dir=shared_cache_dir))
    queue = JobQueue(service, num_workers=2, backend="process")
    queue.start()
    yield queue
    queue.shutdown(wait=True, drain=False)


@pytest.fixture(scope="module")
def mlp_train():
    return build_training_graph("linear_mlp", scale="ci")


def _worker_solver_calls(backend) -> int:
    return backend.stats()["worker_totals"]["solver_calls"]


class TestProcessBackend:
    def test_options_round_trip_through_worker_process(self, process_queue,
                                                       chain5_train):
        """Every SolverOptions field survives a real pool round trip: the
        worker decodes the wire options and echoes them back re-encoded."""
        backend = process_queue.backend
        work = SolveWork(chain5_train, "checkpoint_all",
                         float(ample_budget(chain5_train)), FULL_OPTIONS)
        response = backend._ship(backend._encode(work), _never)
        assert response["ok"], response.get("error")
        assert response["options_echo"] == options_to_wire(FULL_OPTIONS)
        assert options_from_wire(response["options_echo"]) == FULL_OPTIONS

    def test_duplicate_submissions_one_solver_call_across_processes(
            self, process_queue, mlp_train):
        """8 identical submissions through the process backend -> exactly one
        solver invocation across all worker processes (single-flighting at the
        queue plus the shared cache tiers below it)."""
        before = _worker_solver_calls(process_queue.backend)
        budget = float(tight_budget(mlp_train, 0.61))
        jobs = [process_queue.submit_solve(mlp_train, "checkmate_ilp", budget)
                for _ in range(8)]
        for job in jobs:
            assert job.wait(120)
            assert job.state is JobState.DONE, job.error
        costs = {job.result.compute_cost for job in jobs}
        assert len(costs) == 1
        after = _worker_solver_calls(process_queue.backend)
        assert after - before == 1

    def test_repeat_submission_answers_from_parent_cache(self, process_queue,
                                                         mlp_train):
        budget = float(tight_budget(mlp_train, 0.63))
        first = process_queue.submit_solve(mlp_train, "checkmate_ilp", budget)
        assert first.wait(120) and first.state is JobState.DONE
        shipped = process_queue.backend.stats()["tasks_shipped"]
        again = process_queue.submit_solve(mlp_train, "checkmate_ilp", budget)
        assert again.wait(60) and again.state is JobState.DONE
        assert process_queue.backend.stats()["tasks_shipped"] == shipped
        assert again.result.compute_cost == first.result.compute_cost

    def test_byte_identical_schedule_thread_vs_process(self, process_queue,
                                                       mlp_train):
        """The same cell solved in-process and in a worker process must yield
        byte-identical schedule JSON (acceptance criterion)."""
        budget = float(tight_budget(mlp_train, 0.65))
        work = SolveWork(mlp_train, "checkmate_ilp", budget, None)
        local = ThreadBackend(SolveService(cache=None)).run(work, _never)
        remote = process_queue.backend.run(work, _never)
        assert local.feasible and remote.feasible
        assert schedule_to_json(mlp_train, local.matrices, strategy="checkmate_ilp") \
            == schedule_to_json(mlp_train, remote.matrices, strategy="checkmate_ilp")

    def test_metrics_expose_backend_and_workers(self, process_queue):
        metrics = process_queue.metrics()
        backend = metrics["backend"]
        assert backend["name"] == "process"
        assert backend["pool_size"] == 2
        assert backend["tasks_shipped"] >= 1
        assert set(backend["worker_totals"]) == {"solver_calls", "cache_hits",
                                                 "disk_hits"}
        for stats in backend["workers"].values():
            assert "solver_calls" in stats

    def test_execute_falls_back_to_local(self, process_queue):
        """Execute jobs (results carry live tensors: no wire format) run on
        the parent service, counted as local fallbacks."""
        graph = build_training_graph("linear_mlp", scale="ci")
        before = process_queue.backend.stats()["local_fallbacks"]
        job = process_queue.submit_execute(graph, "checkpoint_all",
                                           float(ample_budget(graph)))
        assert job.wait(120)
        assert job.state is JobState.DONE, job.error
        assert process_queue.backend.stats()["local_fallbacks"] == before + 1

    def test_make_backend_rejects_unknown_name(self):
        with pytest.raises(ValueError):
            make_backend("fibers", SolveService())


class TestSharedDiskCache:
    def test_worker_disk_hit_after_other_process_solved(self, shared_cache_dir,
                                                        chain5_train):
        """Worker-to-worker sharing: a fresh worker process answers from the
        shared disk tier without invoking its solver."""
        budget = float(ample_budget(chain5_train))
        work = SolveWork(chain5_train, "checkmate_ilp", budget, None)

        def fresh_backend():
            service = SolveService(cache=PlanCache(max_entries=4,
                                                   cache_dir=shared_cache_dir))
            return ProcessBackend(service, num_workers=1).start()

        first = fresh_backend()
        try:
            result = first.run(work, _never)
            assert result.feasible
            assert _worker_solver_calls(first) == 1
        finally:
            first.shutdown()

        second = fresh_backend()
        try:
            # Bypass the parent cache tiers: ship straight to the worker so
            # the hit we observe is the *worker's* disk-store lookup.
            response = second._ship(second._encode(work), _never)
            assert response["ok"], response.get("error")
            assert response["stats"]["solver_calls"] == 0
            assert response["stats"]["disk_hits"] == 1
        finally:
            second.shutdown()


class TestWorkerCrash:
    def test_crash_fails_job_and_pool_recovers(self, mlp_train):
        """SIGKILL the worker mid-solve: the flight fails with a structured
        worker-crash payload, the pool is rebuilt, and the next solve
        succeeds -- the queue never hangs."""
        service = SolveService(cache=None)
        backend = ProcessBackend(service, num_workers=1)
        with JobQueue(service, num_workers=1, backend=backend) as queue:
            (pid,) = backend.worker_pids()
            # A solve slow enough to be running when the signal lands.
            job = queue.submit_solve(mlp_train, "checkmate_bnb",
                                     float(tight_budget(mlp_train, 0.5)))
            deadline = time.monotonic() + 30
            while job.state is JobState.QUEUED and time.monotonic() < deadline:
                time.sleep(0.01)
            time.sleep(0.3)  # let the task reach the worker
            os.kill(pid, signal.SIGKILL)
            assert job.wait(60)
            assert job.state is JobState.FAILED
            assert job.error_info is not None
            assert job.error_info["type"] == "worker-crash"
            assert "worker process died" in job.error
            stats = backend.stats()
            assert stats["crashes"] >= 1
            assert stats["pool_rebuilds"] >= 1

            retry = queue.submit_solve(mlp_train, "checkpoint_all",
                                       float(ample_budget(mlp_train)))
            assert retry.wait(120)
            assert retry.state is JobState.DONE, retry.error

    def test_worker_exception_comes_back_structured(self, process_queue,
                                                    chain5_train):
        """A worker-side solver exception fails the job with the remote
        type/message, not a pickling error and not a hang."""
        job = process_queue.submit_solve(
            chain5_train, "min_r",
            options=SolverOptions(checkpoints=(999,)))  # out-of-range: raises
        assert job.wait(60)
        assert job.state is JobState.FAILED
        assert job.error_info is not None
        assert job.error_info["type"] not in (None, "worker-crash")
        assert job.error


# --------------------------------------------------------------------------- #
# Admission control + deadlines (thread backend: gates work in-process)
# --------------------------------------------------------------------------- #
def gated_registry():
    registry = default_registry()
    release = threading.Event()

    def gated(graph, budget=None, **kwargs):
        assert release.wait(30), "gate was never released"
        return solve_checkpoint_all(graph, budget)

    registry.register(SolverSpec(
        key="gated", description="blocks until released (test fixture)",
        solve=gated))
    return registry, release


class TestAdmissionControl:
    def test_sheds_beyond_max_queue_depth(self, chain5_train):
        registry, release = gated_registry()
        queue = JobQueue(SolveService(registry=registry, cache=None),
                         num_workers=1, max_queue_depth=1)
        with queue:
            running = queue.submit_solve(chain5_train, "gated", 101.0)
            deadline = time.monotonic() + 10
            while running.state is JobState.QUEUED and time.monotonic() < deadline:
                time.sleep(0.01)
            queued = queue.submit_solve(chain5_train, "gated", 102.0)
            with pytest.raises(QueueFullError) as excinfo:
                queue.submit_solve(chain5_train, "gated", 103.0)
            assert excinfo.value.retry_after_s >= 1.0
            assert excinfo.value.limit == 1
            # Joining an existing flight costs nothing: never shed.
            joiner = queue.submit_solve(chain5_train, "gated", 102.0)
            release.set()
            for job in (running, queued, joiner):
                assert job.wait(30)
                assert job.state is JobState.DONE
            metrics = queue.metrics()
            assert metrics["jobs"]["shed"] == 1
            assert metrics["max_queue_depth"] == 1

    def test_http_503_with_retry_after(self, chain5_train):
        registry, release = gated_registry()
        queue = JobQueue(SolveService(registry=registry, cache=None),
                         num_workers=1, max_queue_depth=1)
        server = SolveServer(port=0, queue=queue)
        server.start()
        try:
            client = ServeClient(server.url, max_retries=0)
            client.submit_solve(strategy="gated", graph=chain5_train, budget=201.0)
            time.sleep(0.2)  # let the first flight start running
            client.submit_solve(strategy="gated", graph=chain5_train, budget=202.0)
            with pytest.raises(ServeAPIError) as excinfo:
                client.submit_solve(strategy="gated", graph=chain5_train,
                                    budget=203.0)
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after >= 1
        finally:
            release.set()
            server.stop()

    def test_deadline_expires_queued_job(self, chain5_train):
        """A job whose deadline passes while it waits behind a long solve is
        expired when the worker reaches it -- before any solver time is spent
        on it -- not run to completion late."""
        registry, release = gated_registry()
        queue = JobQueue(SolveService(registry=registry, cache=None),
                         num_workers=1)
        with queue:
            blocker = queue.submit_solve(chain5_train, "gated", 301.0)
            doomed = queue.submit_solve(chain5_train, "gated", 302.0,
                                        deadline_s=0.05)
            time.sleep(0.1)  # deadline passes while doomed is still queued
            release.set()
            assert doomed.wait(30)
            assert doomed.state is JobState.FAILED
            assert doomed.error_info["type"] == "deadline-exceeded"
            assert doomed.error_info["waited_s"] >= 0.05
            assert "deadline exceeded" in doomed.error
            assert blocker.wait(30)
            assert blocker.state is JobState.DONE
            assert queue.metrics()["jobs"]["expired"] == 1

    def test_default_deadline_applies(self, chain5_train):
        registry, release = gated_registry()
        queue = JobQueue(SolveService(registry=registry, cache=None),
                         num_workers=1, default_deadline_s=600.0)
        with queue:
            job = queue.submit_solve(chain5_train, "gated", 304.0)
            assert job.deadline_at is not None
            assert job.to_dict()["deadline_at"] == job.deadline_at
            release.set()
            assert job.wait(30)

    def test_validation(self):
        with pytest.raises(ValueError):
            JobQueue(SolveService(), max_queue_depth=0)
        with pytest.raises(ValueError):
            JobQueue(SolveService(), default_deadline_s=-1.0)
        queue = JobQueue(SolveService(), num_workers=1)
        with queue, pytest.raises(ValueError):
            queue.submit_solve(build_training_graph("linear_mlp"),
                               "checkpoint_all", deadline_s=-2.0)


# --------------------------------------------------------------------------- #
# Client retry
# --------------------------------------------------------------------------- #
class TestClientRetry:
    def _client_with_script(self, script):
        client = ServeClient("http://test.invalid", max_retries=2,
                             backoff_s=0.01, backoff_cap_s=0.02)
        calls = []
        sleeps = []

        def fake_once(method, path, payload=None):
            calls.append((method, path))
            action = script[min(len(calls) - 1, len(script) - 1)]
            if isinstance(action, Exception):
                raise action
            return action

        client._request_once = fake_once
        client._sleep = sleeps.append
        return client, calls, sleeps

    def test_retries_503_until_success(self):
        client, calls, sleeps = self._client_with_script([
            ServeAPIError(503, "queue full", retry_after=0.01),
            ServeAPIError(503, "queue full", retry_after=0.01),
            '{"id": "j1"}',
        ])
        assert client._request("POST", "/v1/solve", {}) == {"id": "j1"}
        assert len(calls) == 3
        assert len(sleeps) == 2
        assert all(delay >= 0.01 for delay in sleeps)

    def test_gives_up_after_max_retries(self):
        client, calls, _ = self._client_with_script([
            ServeAPIError(503, "queue full", retry_after=0.01),
        ])
        with pytest.raises(ServeAPIError) as excinfo:
            client._request("POST", "/v1/solve", {})
        assert excinfo.value.status == 503
        assert len(calls) == 3  # initial + 2 retries

    def test_non_503_never_retried(self):
        client, calls, _ = self._client_with_script([
            ServeAPIError(400, "bad request"),
        ])
        with pytest.raises(ServeAPIError):
            client._request("POST", "/v1/solve", {})
        assert len(calls) == 1

    def test_retry_delay_honors_server_hint(self):
        client = ServeClient("http://test.invalid", backoff_s=0.01,
                             backoff_cap_s=0.02)
        delay = client._retry_delay(0, retry_after=5.0)
        assert delay >= 5.0
        assert client._retry_delay(0, retry_after=None) <= 0.02


# --------------------------------------------------------------------------- #
# Disk store under concurrent writers
# --------------------------------------------------------------------------- #
class TestConcurrentDiskStore:
    def test_hammered_store_never_serves_torn_json(self, tmp_path, chain5_train):
        """Many threads rewriting the same key while readers poll: every read
        is either a miss or a fully valid result, and no temp files leak."""
        cache_dir = str(tmp_path / "store")
        result = solve_checkpoint_all(chain5_train,
                                      float(ample_budget(chain5_train)))
        writers = [PlanCache(max_entries=0, cache_dir=cache_dir)
                   for _ in range(4)]
        reader = PlanCache(max_entries=0, cache_dir=cache_dir)
        key = "deadbeef" * 8
        errors = []
        stop = threading.Event()

        def write_loop(cache):
            try:
                while not stop.is_set():
                    cache.put(key, result)
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        def read_loop():
            try:
                while not stop.is_set():
                    got = reader.get(key, chain5_train)
                    if got is not None:
                        assert got.feasible
                        assert got.compute_cost == result.compute_cost
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = ([threading.Thread(target=write_loop, args=(c,))
                    for c in writers]
                   + [threading.Thread(target=read_loop) for _ in range(3)])
        for t in threads:
            t.start()
        time.sleep(1.0)
        stop.set()
        for t in threads:
            t.join(10)
        assert not errors, errors
        final = reader.get(key, chain5_train)
        assert final is not None and final.feasible
        leftovers = [f for f in os.listdir(cache_dir) if ".tmp." in f]
        assert leftovers == []

    def test_torn_file_on_disk_degrades_to_miss(self, tmp_path, chain5_train):
        cache_dir = str(tmp_path / "store")
        cache = PlanCache(max_entries=0, cache_dir=cache_dir)
        result = solve_checkpoint_all(chain5_train,
                                      float(ample_budget(chain5_train)))
        key = "cafebabe" * 8
        cache.put(key, result)
        path = os.path.join(cache_dir, f"{key}.json")
        payload = json.dumps(result_to_wire(result))
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(payload[: len(payload) // 2])  # simulate a torn write
        assert cache.get(key, chain5_train) is None


# --------------------------------------------------------------------------- #
# End-to-end: process daemon over HTTP with one grafted trace tree
# --------------------------------------------------------------------------- #
class TestProcessDaemonEndToEnd:
    def test_trace_tree_spans_submitter_and_worker_process(self, tmp_path):
        from repro.obs import Tracer, set_tracer

        graph = build_training_graph("linear_mlp", scale="ci")
        cache = PlanCache(max_entries=16, cache_dir=str(tmp_path / "plans"))
        previous = set_tracer(Tracer())  # keep the process tracer pristine
        server = SolveServer(port=0, service=SolveService(cache=cache),
                             num_workers=1, backend="process", tracing=True)
        server.start()
        try:
            client = ServeClient(server.url)
            handle = client.submit_solve(strategy="checkmate_ilp", graph=graph,
                                         budget=float(tight_budget(graph, 0.7)))
            status = client.wait(handle["job_id"], timeout=120)
            assert status["state"] == "done", status.get("error")
            trace = client.trace(handle["job_id"])
            phases = trace["phases"]
            # Submitter-side phases and worker-side phases in ONE tree.
            assert "queue-wait" in phases
            assert "job-run" in phases
            assert "solve" in phases  # recorded inside the worker process
            tree = trace["tree"]

            def find(node, name):
                if node["name"] == name:
                    return node
                for child in node.get("children", ()):
                    hit = find(child, name)
                    if hit is not None:
                        return hit
                return None

            job_run = next(filter(None, (find(root, "job-run")
                                         for root in tree)), None)
            assert job_run is not None
            assert find(job_run, "solve") is not None

            health = client.healthz()
            assert health["backend"] == "process"
            metrics = client.metrics()
            assert metrics["backend"]["name"] == "process"
            assert metrics["backend"]["tasks_shipped"] >= 1
        finally:
            server.stop()
            set_tracer(previous)
