"""Tests for warm-started sweeps, infeasibility pre-checks and Pareto tracing.

The acceptance criteria of the incremental-sweep PR live here:

* warm-started solves return the *same* objective as cold solves,
  cell-for-cell (warm seeding is a pure speed hint, never a result change);
* the objective is monotone non-increasing in budget for the exact solvers
  and the LP relaxation -- the invariant every warm shortcut leans on;
* the arithmetic minimum-feasible-budget floor agrees with what the solver
  itself reports, and the learned-infeasibility memo kicks in on repeats;
* parallel and sequential sweeps of the same cells produce identical
  schedules (deterministic descending-budget chain scheduling);
* the bisection Pareto tracer reaches the same frontier as a dense budget
  grid with at most half the solver calls.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import ample_budget

from repro.autodiff import make_training_graph
from repro.core import linear_graph
from repro.core.schedule import validate_correctness_constraints
from repro.core.simulator import schedule_peak_memory
from repro.experiments import build_training_graph
from repro.service import SolveService, SweepCell, trace_pareto_frontier
from repro.solvers import (
    FormulationCache,
    WarmSeed,
    budget_floor_margin,
    min_feasible_budget_floor,
    set_compiled_formulation_enabled,
    set_formulation_cache,
    solve_branch_and_bound_schedule,
    solve_ilp_rematerialization,
    solve_lp_relaxation,
    tighten_schedule,
    warm_seed_from_result,
)
from repro.solvers.warm import _PROVEN_OPTIMAL_STATUSES


def make_chain_train(n=6, salt=0.0):
    """A small training graph; ``salt`` perturbs costs to force a fresh
    compiled formulation (the process-wide FormulationCache and its learned
    infeasibility memo are keyed by graph content)."""
    costs = [c + salt for c in [1, 50, 2, 30, 4, 10][:n]]
    fwd = linear_graph(n, cost=costs, memory=[8, 2, 16, 4, 32, 1][:n])
    return make_training_graph(fwd)


def assert_costs_close(a: float, b: float, rtol: float = 1e-4) -> None:
    assert abs(a - b) <= rtol * max(abs(a), abs(b), 1.0), (a, b)


# --------------------------------------------------------------------------- #
# Schedule tightening
# --------------------------------------------------------------------------- #
class TestTightenSchedule:
    def test_never_worse_and_still_valid(self):
        g = make_chain_train()
        res = solve_ilp_rematerialization(g, ample_budget(g))
        assert res.feasible
        tightened = tighten_schedule(g, res.matrices)
        assert validate_correctness_constraints(g, tightened) == []
        assert schedule_peak_memory(g, tightened) <= res.peak_memory
        from repro.core.schedule import schedule_compute_cost
        assert schedule_compute_cost(g, tightened) <= res.compute_cost + 1e-9

    def test_seed_peak_reflects_tightened_schedule(self):
        g = make_chain_train()
        # With an ample budget the MILP may keep dead values resident; the
        # seed must measure what the schedule *needs*, not the slack.
        res = solve_ilp_rematerialization(g, ample_budget(g))
        seed = warm_seed_from_result(g, res)
        assert seed is not None
        assert seed.proven_optimal
        assert seed.peak_memory <= res.peak_memory
        assert seed.fits(float(seed.peak_memory))

    def test_infeasible_result_yields_no_seed(self):
        g = make_chain_train()
        res = solve_ilp_rematerialization(g, float(g.constant_overhead))
        assert not res.feasible
        assert warm_seed_from_result(g, res) is None


# --------------------------------------------------------------------------- #
# Budget floor + learned-infeasibility memo
# --------------------------------------------------------------------------- #
class TestBudgetFloor:
    def test_floor_agrees_with_legacy_solver(self):
        # Ground truth without the pre-check: the legacy (non-compiled)
        # formulation has no floor shortcut, so it exercises HiGHS for real.
        g = make_chain_train(salt=0.125)
        floor = min_feasible_budget_floor(g)
        below = floor - budget_floor_margin(g) - 1.0
        set_compiled_formulation_enabled(False)
        try:
            raw = solve_ilp_rematerialization(g, below)
        finally:
            set_compiled_formulation_enabled(True)
        assert not raw.feasible  # the arithmetic floor never contradicts HiGHS

    def test_floor_shortcut_then_memo(self):
        set_formulation_cache(FormulationCache())  # isolate the memo
        g = make_chain_train(salt=0.25)
        floor = min_feasible_budget_floor(g)
        below = floor - budget_floor_margin(g) - 1.0
        first = solve_ilp_rematerialization(g, below)
        assert not first.feasible
        assert first.solver_status == "infeasible-below-floor"
        assert first.extra["infeasible_shortcut"] == "floor"
        second = solve_ilp_rematerialization(g, below)
        assert second.solver_status == "infeasible-memo"
        # Even lower budgets hit the memo without any arithmetic re-derivation.
        third = solve_branch_and_bound_schedule(g, below - 5.0)
        assert not third.feasible
        assert third.solver_status in ("infeasible-below-floor", "infeasible-memo")

    def test_lp_relaxation_is_not_floored(self):
        # Fractional FREE lets the LP shed parent memory mid-stage, so the
        # integral floor must NOT short-circuit the relaxation.
        set_formulation_cache(FormulationCache())
        g = make_chain_train(salt=0.375)
        floor = min_feasible_budget_floor(g)
        below = floor - budget_floor_margin(g) - 1.0
        lp = solve_lp_relaxation(g, below)
        assert lp.status != "infeasible-below-floor"

    def test_solvable_just_above_floor(self):
        g = make_chain_train()
        floor = min_feasible_budget_floor(g)
        res = solve_ilp_rematerialization(g, floor + budget_floor_margin(g))
        # The floor is a lower bound, not the exact min-feasible budget, but
        # for a chain the bottleneck stage is achievable.
        assert res.feasible


# --------------------------------------------------------------------------- #
# Solver-level warm paths
# --------------------------------------------------------------------------- #
class TestWarmSolverPaths:
    def test_ilp_reuses_proven_fitting_seed(self):
        g = make_chain_train()
        cold_hi = solve_ilp_rematerialization(g, ample_budget(g))
        seed = warm_seed_from_result(g, cold_hi)
        budget = float(seed.peak_memory)  # the seed fits exactly
        warm = solve_ilp_rematerialization(g, budget, warm_start=seed)
        assert warm.solver_status == "warm-reused-optimal"
        assert warm.extra["warm_start"]["kind"] == "incumbent_prune"
        cold = solve_ilp_rematerialization(g, budget)
        assert cold.feasible
        assert_costs_close(warm.compute_cost, cold.compute_cost)

    def test_ilp_bound_skip_for_unproven_seed(self):
        g = make_chain_train()
        cold_hi = solve_ilp_rematerialization(g, ample_budget(g))
        proven = warm_seed_from_result(g, cold_hi)
        unproven = WarmSeed(
            matrices=proven.matrices, objective=proven.objective,
            peak_memory=proven.peak_memory, proven_optimal=False,
            source_budget=proven.source_budget, source_status="node-limit")
        budget = float(unproven.peak_memory)
        warm = solve_ilp_rematerialization(g, budget, warm_start=unproven)
        # The LP certificate proves the seed gap-optimal without a MILP solve.
        assert warm.solver_status == "warm-bound-skip"
        assert warm.extra["warm_start"]["kind"] == "bound_skip"
        assert warm.extra["proven_optimal"] is True
        cold = solve_ilp_rematerialization(g, budget)
        assert_costs_close(warm.compute_cost, cold.compute_cost)

    def test_ilp_ignores_non_fitting_seed(self):
        g = make_chain_train()
        cold_hi = solve_ilp_rematerialization(g, ample_budget(g))
        seed = warm_seed_from_result(g, cold_hi)
        floor = min_feasible_budget_floor(g)
        tight = floor + budget_floor_margin(g)
        if seed.fits(tight):
            pytest.skip("seed fits every budget on this graph")
        warm = solve_ilp_rematerialization(g, tight, warm_start=seed)
        cold = solve_ilp_rematerialization(g, tight)
        assert warm.feasible == cold.feasible
        if cold.feasible:
            assert_costs_close(warm.compute_cost, cold.compute_cost)

    def test_bnb_reuses_proven_fitting_seed(self):
        g = make_chain_train(n=4)
        cold_hi = solve_branch_and_bound_schedule(g, ample_budget(g))
        seed = warm_seed_from_result(g, cold_hi)
        assert seed is not None and seed.proven_optimal
        budget = float(seed.peak_memory)
        warm = solve_branch_and_bound_schedule(g, budget, warm_start=seed)
        assert warm.solver_status == "warm-reused-optimal"
        assert warm.extra["nodes_explored"] == 0
        cold = solve_branch_and_bound_schedule(g, budget)
        assert_costs_close(warm.compute_cost, cold.compute_cost)

    def test_bnb_cutoff_with_unproven_seed_matches_cold(self):
        g = make_chain_train(n=4)
        cold_hi = solve_branch_and_bound_schedule(g, ample_budget(g))
        proven = warm_seed_from_result(g, cold_hi)
        unproven = WarmSeed(
            matrices=proven.matrices, objective=proven.objective,
            peak_memory=proven.peak_memory, proven_optimal=False,
            source_budget=proven.source_budget, source_status="node-limit")
        budget = float(unproven.peak_memory)
        warm = solve_branch_and_bound_schedule(g, budget, warm_start=unproven)
        cold = solve_branch_and_bound_schedule(g, budget)
        assert warm.feasible and cold.feasible
        assert_costs_close(warm.compute_cost, cold.compute_cost)
        # A warm B&B with a cutoff must never return worse than the seed.
        assert warm.compute_cost <= unproven.objective * (1 + 1e-9)


# --------------------------------------------------------------------------- #
# Budget monotonicity
# --------------------------------------------------------------------------- #
class TestBudgetMonotonicity:
    """Objective non-increasing in budget -- the invariant behind every
    warm-start shortcut.  Feasibility must also be monotone (once feasible,
    larger budgets stay feasible)."""

    def _budgets(self, g, k=4):
        lo = min_feasible_budget_floor(g) + budget_floor_margin(g)
        hi = float(ample_budget(g))
        return list(np.linspace(lo, hi, k))

    @pytest.mark.parametrize("preset", ["linear_mlp", "linear_cnn"])
    def test_ilp_monotone_on_presets(self, preset):
        g = build_training_graph(preset)
        results = [solve_ilp_rematerialization(g, b) for b in self._budgets(g)]
        feas = [r.feasible for r in results]
        assert feas == sorted(feas)  # once True, stays True
        costs = [r.compute_cost for r in results if r.feasible]
        assert costs, "no feasible budget in the sampled range"
        for prev, nxt in zip(costs, costs[1:]):
            assert nxt <= prev * (1 + 5e-4)

    def test_bnb_monotone_on_chain(self):
        g = make_chain_train(n=5)
        results = [solve_branch_and_bound_schedule(g, b)
                   for b in self._budgets(g)]
        costs = [r.compute_cost for r in results if r.feasible]
        assert costs
        for prev, nxt in zip(costs, costs[1:]):
            assert nxt <= prev * (1 + 5e-4)

    @pytest.mark.parametrize("graph_factory", [
        make_chain_train, lambda: build_training_graph("linear_mlp")])
    def test_lp_relaxation_monotone(self, graph_factory):
        g = graph_factory()
        results = [solve_lp_relaxation(g, b) for b in self._budgets(g)]
        objs = [r.objective for r in results if r.feasible]
        assert objs
        for prev, nxt in zip(objs, objs[1:]):
            assert nxt <= prev * (1 + 5e-4)


# --------------------------------------------------------------------------- #
# Service-level warm sweeps
# --------------------------------------------------------------------------- #
class TestWarmSweepService:
    def _cells(self, g, k=6):
        lo = min_feasible_budget_floor(g) + budget_floor_margin(g)
        hi = float(ample_budget(g))
        return [SweepCell("checkmate_ilp", b) for b in np.linspace(lo, hi, k)]

    def test_warm_equals_cold_cell_for_cell(self):
        g = build_training_graph("linear_cnn")
        cells = self._cells(g)
        warm_svc, cold_svc = SolveService(), SolveService()
        warm = warm_svc.sweep(g, cells, parallel=False, warm_start=True)
        cold = cold_svc.sweep(g, cells, parallel=False, warm_start=False)
        for w, c in zip(warm, cold):
            assert w.feasible == c.feasible
            if w.feasible:
                assert_costs_close(w.compute_cost, c.compute_cost)
        assert warm_svc.stats.warm_seeds > 0
        assert cold_svc.stats.warm_seeds == 0

    def test_parallel_equals_sequential(self):
        g = make_chain_train()
        budgets = [float(b) for b in
                   np.linspace(min_feasible_budget_floor(g) + budget_floor_margin(g),
                               ample_budget(g), 4)]
        cells = ([SweepCell("checkmate_ilp", b) for b in budgets]
                 + [SweepCell("checkmate_bnb", b) for b in budgets])
        seq_svc, par_svc = SolveService(), SolveService()
        seq = seq_svc.sweep(g, cells, parallel=False)
        par = par_svc.sweep(g, cells, parallel=True, max_workers=4)
        for s, p in zip(seq, par):
            assert s.feasible == p.feasible
            if s.feasible:
                assert_costs_close(s.compute_cost, p.compute_cost)
                assert s.peak_memory == p.peak_memory

    def test_warm_counters_and_reset(self):
        g = make_chain_train()
        svc = SolveService()
        hi = float(ample_budget(g))
        svc.sweep(g, [SweepCell("checkmate_ilp", hi + 64.0),
                      SweepCell("checkmate_ilp", hi)], parallel=False)
        stats = svc.statistics()
        assert stats["warm_seeds"] >= 1
        assert stats["incumbent_prunes"] + stats["bound_skips"] >= 1
        svc.stats.reset()
        stats = svc.statistics()
        assert stats["warm_seeds"] == 0
        assert stats["incumbent_prunes"] == 0
        assert stats["bound_skips"] == 0
        assert stats["infeasible_shortcuts"] == 0

    def test_infeasible_shortcut_counter_moves(self):
        set_formulation_cache(FormulationCache())
        g = make_chain_train(salt=0.5)
        svc = SolveService()
        below = min_feasible_budget_floor(g) - budget_floor_margin(g) - 2.0
        res = svc.solve(g, "checkmate_ilp", below)
        assert not res.feasible
        assert svc.statistics()["infeasible_shortcuts"] == 1

    def test_warm_result_statuses_stay_proven(self):
        # Warm shortcut statuses must be members of the proven-optimal set,
        # otherwise seeds derived *from* warm results would lose provenness
        # and chains would degrade to cutoff-only after the first reuse.
        g = make_chain_train()
        svc = SolveService()
        cells = self._cells(g, k=5)
        results = svc.sweep(g, cells, parallel=False)
        for r in results:
            if r.feasible and r.extra.get("warm_start", {}).get("kind") in (
                    "incumbent_prune", "bound_skip"):
                assert r.solver_status in _PROVEN_OPTIMAL_STATUSES

    def test_cache_hits_do_not_recount_warm(self):
        g = make_chain_train()
        svc = SolveService()
        hi = float(ample_budget(g))
        svc.sweep(g, [SweepCell("checkmate_ilp", hi + 64.0),
                      SweepCell("checkmate_ilp", hi)], parallel=False)
        seeds_before = svc.statistics()["warm_seeds"]
        svc.solve(g, "checkmate_ilp", hi)  # cache hit replays the warm result
        assert svc.statistics()["warm_seeds"] == seeds_before

    def test_neighbor_lookup_survives_eviction(self):
        from repro.service import PlanCache
        g = make_chain_train()
        svc = SolveService(cache=PlanCache(max_entries=2))
        hi = float(ample_budget(g))
        for b in (hi + 128.0, hi + 64.0, hi):
            svc.solve(g, "checkmate_ilp", b)
        # Oldest entry evicted; the family index must not dangle.
        stats = svc.cache.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        assert svc.solve(g, "checkmate_ilp", hi).feasible


# --------------------------------------------------------------------------- #
# Pareto tracing
# --------------------------------------------------------------------------- #
class TestParetoTracer:
    def test_matches_dense_grid_with_half_the_calls(self):
        g = build_training_graph("linear_cnn")
        front = SolveService().pareto(g, "checkmate_ilp")
        # Rebuild the dense grid the trace's (low, high, resolution) implies.
        steps = int(round((front.high - front.low) / front.resolution))
        grid = list(np.linspace(front.low, front.high, steps + 1))
        dense_svc = SolveService()
        dense = dense_svc.sweep(
            g, [SweepCell("checkmate_ilp", b) for b in grid], parallel=False)

        # Every probed point matches the dense cell at the same budget.
        by_idx = {int(round((p.budget - front.low) / front.resolution)): p
                  for p in front.points}
        for idx, point in by_idx.items():
            cell = dense[idx]
            assert point.feasible == cell.feasible
            if point.feasible:
                assert_costs_close(point.compute_cost, cell.compute_cost,
                                   rtol=1e-3)

        # Same frontier: the distinct cost steps agree.
        def steps_of(costs, rtol=1e-3):
            out = []
            for c in costs:
                if not out or abs(c - out[-1]) > rtol * max(abs(out[-1]), 1.0):
                    out.append(c)
            return out

        dense_steps = steps_of([r.compute_cost for r in dense if r.feasible])
        front_steps = steps_of([p.compute_cost for p in front.feasible_points])
        assert len(dense_steps) == len(front_steps)
        for a, b in zip(dense_steps, front_steps):
            assert_costs_close(a, b, rtol=1e-3)

        # ...with at most half the solver calls of the dense grid.
        assert front.solver_calls <= (steps + 1) // 2

    def test_costs_monotone_and_knees_decreasing(self):
        g = make_chain_train()
        front = SolveService().pareto(g, "checkmate_ilp")
        feas = front.feasible_points
        assert feas
        for prev, nxt in zip(feas, feas[1:]):
            assert nxt.compute_cost <= prev.compute_cost * (1 + 5e-4)
        knees = front.knees()
        assert len(knees) >= 1
        for prev, nxt in zip(knees, knees[1:]):
            assert nxt.compute_cost < prev.compute_cost

    def test_infeasible_low_endpoint_is_reported(self):
        set_formulation_cache(FormulationCache())
        g = make_chain_train(salt=0.625)
        floor = min_feasible_budget_floor(g)
        low = floor - 50 * budget_floor_margin(g)
        front = SolveService().pareto(g, "checkmate_ilp", low=low)
        assert front.points[0].budget == pytest.approx(low)
        assert not front.points[0].feasible
        assert front.feasible_points  # the upper end of the range still solves

    def test_round_trip_to_dict(self):
        g = make_chain_train()
        front = SolveService().pareto(g, "checkmate_ilp")
        payload = front.to_dict()
        assert payload["num_points"] == len(front.points)
        assert payload["points"][0]["budget"] == front.points[0].budget
        assert payload["solver_calls"] == front.solver_calls

    def test_rejects_bad_inputs(self):
        g = make_chain_train()
        svc = SolveService()
        with pytest.raises(ValueError, match="budget knob"):
            svc.pareto(g, "min_r")
        with pytest.raises(ValueError, match="resolution"):
            svc.pareto(g, "checkmate_ilp", resolution=-1.0)
        with pytest.raises(ValueError, match="empty"):
            svc.pareto(g, "checkmate_ilp", low=100.0, high=50.0)

    def test_warm_seeding_fires_during_trace(self):
        g = build_training_graph("linear_cnn")
        svc = SolveService()
        front = svc.pareto(g, "checkmate_ilp")
        stats = svc.statistics()
        assert stats["warm_seeds"] >= 1
        assert front.solver_calls == stats["solver_calls"]
