"""Tests for the solve-as-a-service subsystem: job queue, HTTP API, metrics.

The end-to-end dedup test is the PR's acceptance criterion: N concurrent
clients submitting the identical (graph, strategy, budget) cell must trigger
exactly one solver invocation, all receive identical results, and the
``/v1/metrics`` counters must reflect the deduplication.
"""

from __future__ import annotations

import threading

import pytest

from repro.baselines import solve_checkpoint_all
from repro.server import (
    Job,
    JobQueue,
    JobState,
    ServeAPIError,
    ServeClient,
    SolveServer,
)
from repro.service import (
    PlanCache,
    SolverOptions,
    SolverRegistry,
    SolverSpec,
    SolveService,
    default_registry,
)

from helpers import ample_budget


# --------------------------------------------------------------------------- #
# Instrumented registries
# --------------------------------------------------------------------------- #
class Gate:
    """A solver whose execution blocks until released, counting invocations."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def solve(self, graph, budget=None, **kwargs):
        with self._lock:
            self.calls += 1
        self.started.set()
        assert self.release.wait(30), "gate was never released"
        return solve_checkpoint_all(graph, budget)


def counting_registry(wrapped_key: str = "ap_sqrt_n"):
    """The default registry plus a gate solver and a counted wrapper."""
    registry = default_registry()
    gate = Gate()
    registry.register(SolverSpec(
        key="gated", description="blocks until released (test fixture)",
        solve=gate.solve))
    inner = registry.get(wrapped_key)
    counter = {"calls": 0}
    lock = threading.Lock()

    def counted(graph, budget=None, **kwargs):
        with lock:
            counter["calls"] += 1
        return inner.solve(graph, budget, **kwargs)

    registry.register(SolverSpec(
        key=wrapped_key, description=inner.description, solve=counted,
        option_map=inner.option_map), overwrite=True)
    return registry, gate, counter


def failing_registry():
    registry = default_registry()

    def explode(graph, budget=None, **kwargs):
        raise RuntimeError("synthetic solver crash")

    registry.register(SolverSpec(
        key="explode", description="always fails (test fixture)", solve=explode))
    return registry


# --------------------------------------------------------------------------- #
# JobQueue lifecycle (no HTTP)
# --------------------------------------------------------------------------- #
class TestJobQueueLifecycle:
    def test_submit_and_complete(self, chain5_train):
        with JobQueue(SolveService(), num_workers=2) as queue:
            job = queue.submit_solve(chain5_train, "checkpoint_all")
            assert job.wait(30)
            assert job.state is JobState.DONE
            assert job.result.feasible
            assert job.started_at is not None and job.finished_at is not None
            assert job.error is None

    def test_failed_job_reports_error(self, chain5_train):
        with JobQueue(SolveService(registry=failing_registry(), cache=None),
                      num_workers=1) as queue:
            job = queue.submit_solve(chain5_train, "explode")
            assert job.wait(30)
            assert job.state is JobState.FAILED
            assert "synthetic solver crash" in job.error
            assert job.result is None

    def test_unknown_strategy_rejected_at_submission(self, chain5_train):
        with JobQueue(SolveService(), num_workers=1) as queue:
            with pytest.raises(KeyError):
                queue.submit_solve(chain5_train, "not-a-strategy")

    def test_cancel_queued_job(self, chain5_train, diamond_train):
        registry, gate, _ = counting_registry()
        with JobQueue(SolveService(registry=registry, cache=None),
                      num_workers=1) as queue:
            blocker = queue.submit_solve(chain5_train, "gated")
            assert gate.started.wait(30)
            victim = queue.submit_solve(diamond_train, "checkpoint_all")
            cancelled = queue.cancel(victim.id)
            assert cancelled.state is JobState.CANCELLED
            assert victim.wait(1)
            gate.release.set()
            assert blocker.wait(30)
            assert blocker.state is JobState.DONE
            # The cancelled job never ran.
            assert victim.started_at is None
            assert victim.result is None

    def test_cancelling_whole_flight_skips_solver(self, chain5_train, diamond_train):
        registry, gate, counter = counting_registry()
        with JobQueue(SolveService(registry=registry, cache=None),
                      num_workers=1) as queue:
            blocker = queue.submit_solve(chain5_train, "gated")
            assert gate.started.wait(30)
            budget = ample_budget(diamond_train)
            jobs = [queue.submit_solve(diamond_train, "ap_sqrt_n", budget)
                    for _ in range(3)]
            assert [j.deduplicated for j in jobs] == [False, True, True]
            for j in jobs:
                queue.cancel(j.id)
            gate.release.set()
            assert blocker.wait(30)
            queue.shutdown(wait=True)  # drain: pops the abandoned flight
            assert counter["calls"] == 0
            assert all(j.state is JobState.CANCELLED for j in jobs)

    def test_cancel_terminal_job_is_noop(self, chain5_train):
        with JobQueue(SolveService(), num_workers=1) as queue:
            job = queue.submit_solve(chain5_train, "checkpoint_all")
            assert job.wait(30)
            assert queue.cancel(job.id).state is JobState.DONE

    def test_priority_orders_queued_work(self, chain5_train, diamond_train,
                                         varied_chain_train):
        registry, gate, _ = counting_registry()
        order = []
        with JobQueue(SolveService(registry=registry, cache=None),
                      num_workers=1) as queue:
            blocker = queue.submit_solve(chain5_train, "gated")
            assert gate.started.wait(30)
            low = queue.submit_solve(diamond_train, "checkpoint_all", priority=5)
            high = queue.submit_solve(varied_chain_train, "checkpoint_all",
                                      priority=-5)
            gate.release.set()
            for job in (blocker, low, high):
                assert job.wait(30)
            order = sorted([low, high], key=lambda j: j.started_at)
        assert order[0] is high  # lower priority value ran first

    def test_sweep_job(self, chain5_train):
        with JobQueue(SolveService(), num_workers=2) as queue:
            budget = ample_budget(chain5_train)
            job = queue.submit_sweep(
                chain5_train, [("checkpoint_all", budget), ("chen_sqrt_n", budget)])
            assert job.wait(30)
            assert job.state is JobState.DONE
            assert [r.strategy for r in job.result] == \
                   ["checkpoint-all", "chen-sqrt(n)"]

    def test_sweep_requires_cells(self, chain5_train):
        with JobQueue(SolveService(), num_workers=1) as queue:
            with pytest.raises(ValueError):
                queue.submit_sweep(chain5_train, [])

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            JobQueue(SolveService(), num_workers=0)

    def test_history_pruning_keeps_active_jobs(self, chain5_train):
        with JobQueue(SolveService(), num_workers=1, max_history=3) as queue:
            jobs = [queue.submit_solve(chain5_train, "checkpoint_all",
                                       ample_budget(chain5_train) + i)
                    for i in range(6)]
            for j in jobs:
                assert j.wait(30)
            assert len(queue.jobs()) <= 3

    def test_restart_after_undrained_shutdown(self, chain5_train):
        # A drain=False shutdown must retire queued flights: a later restart
        # + identical submission must run fresh, not dedup onto a dead flight.
        queue = JobQueue(SolveService(), num_workers=1)  # never started yet
        budget = ample_budget(chain5_train)
        first = queue.submit_solve(chain5_train, "checkpoint_all", budget)
        queue.shutdown(wait=True, drain=False)
        assert first.state is JobState.CANCELLED
        try:
            queue.start()
            second = queue.submit_solve(chain5_train, "checkpoint_all", budget)
            assert not second.deduplicated
            assert second.wait(30)
            assert second.state is JobState.DONE
        finally:
            queue.shutdown(wait=True, drain=False)

    def test_late_joiner_survives_flight_cancellation(self, chain5_train):
        # A submission that joins a flight after its abandonment verdict must
        # be re-flown, not spuriously settled as cancelled.
        registry = default_registry()
        release = threading.Event()
        started = threading.Event()
        calls = {"n": 0}

        def cancellable(graph, budget=None, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                started.set()
                assert release.wait(30)
                # Simulates the should_cancel verdict firing mid-flight.
                from repro.service import SolveCancelledError
                raise SolveCancelledError("all members cancelled")
            return solve_checkpoint_all(graph, budget)

        registry.register(SolverSpec(key="cancellable",
                                     description="test fixture",
                                     solve=cancellable))
        with JobQueue(SolveService(registry=registry, cache=None),
                      num_workers=1) as queue:
            first = queue.submit_solve(chain5_train, "cancellable")
            assert started.wait(30)
            queue.cancel(first.id)
            late = queue.submit_solve(chain5_train, "cancellable")
            assert late.deduplicated  # joined the in-flight group
            release.set()
            assert late.wait(30)
            assert late.state is JobState.DONE
            assert first.state is JobState.CANCELLED

    def test_metrics_shape(self, chain5_train):
        with JobQueue(SolveService(), num_workers=1) as queue:
            job = queue.submit_solve(chain5_train, "checkpoint_all")
            assert job.wait(30)
            metrics = queue.metrics()
            assert metrics["jobs"]["submitted"] == 1
            assert metrics["jobs_by_state"]["done"] == 1
            assert metrics["solve_latency"]["count"] == 1
            assert metrics["service"]["solver_calls"] == 1
            assert metrics["service"]["cache"]["misses"] == 1


# --------------------------------------------------------------------------- #
# HTTP API end-to-end
# --------------------------------------------------------------------------- #
@pytest.fixture()
def server():
    with SolveServer(port=0, num_workers=2) as srv:
        yield srv


@pytest.fixture()
def client(server):
    return ServeClient(server.url, timeout=30)


class TestHttpApi:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == 2

    def test_solve_by_graph_upload(self, client, chain5_train):
        handle = client.submit_solve(graph=chain5_train,
                                     strategy="checkpoint_all")
        status = client.wait(handle["job_id"], timeout=30)
        assert status["state"] == "done"
        payload = client.result(handle["job_id"])
        assert payload["result"]["feasible"] is True
        assert payload["result"]["strategy"] == "checkpoint-all"

    def test_solve_by_preset(self, client):
        handle = client.submit_solve(preset="resnet_tiny",
                                     strategy="checkpoint_all")
        status = client.wait(handle["job_id"], timeout=60)
        assert status["state"] == "done"
        assert client.result(handle["job_id"])["result"]["feasible"] is True

    def test_sweep_grid(self, client):
        handle = client.submit_sweep(preset="resnet_tiny",
                                     strategies=["checkpoint_all", "ap_sqrt_n"],
                                     budgets=[None, 8 * 2**30])
        status = client.wait(handle["job_id"], timeout=60)
        assert status["state"] == "done"
        results = client.result(handle["job_id"])["results"]
        assert len(results) == 4

    def test_lint_by_preset(self, client):
        report = client.lint(preset="deepblock")
        assert report["ok"] is True
        assert report["counts"]["error"] == 0
        # The identity aliases surface as C002 fusion-candidate infos.
        assert any(d["code"] == "C002" for d in report["diagnostics"])

    def test_lint_by_graph_upload_with_budget(self, client, chain5_train):
        report = client.lint(graph=chain5_train, budget=1.0)
        assert any(d["code"] == "B001" for d in report["diagnostics"])
        assert report["ok"] is True  # B001 is a warning

    def test_execute_by_preset(self, client):
        handle = client.submit_execute(preset="linear_mlp",
                                       strategy="checkmate_ilp",
                                       budget=8 * 2**30, seed=1)
        status = client.wait(handle["job_id"], timeout=120)
        assert status["state"] == "done", status
        payload = client.result(handle["job_id"])
        report = payload["report"]
        assert report["ok"] is True
        assert report["executed"] is True
        assert report["outputs_match"] is True
        assert report["measured_peak_bytes"] == report["predicted_plan_peak"]
        assert payload["job"]["kind"] == "execute"

    def test_execute_by_graph_upload(self, client):
        from repro.experiments.presets import build_training_graph

        graph = build_training_graph("linear_cnn", scale="ci")
        budget = graph.constant_overhead + 0.8 * graph.total_activation_memory()
        handle = client.submit_execute(graph=graph, strategy="checkmate_ilp",
                                       budget=budget)
        status = client.wait(handle["job_id"], timeout=120)
        assert status["state"] == "done", status
        report = client.result(handle["job_id"])["report"]
        assert report["ok"] is True
        assert report["within_budget"] is True
        assert report["measured_peak_bytes"] <= budget

    def test_execute_rejects_graph_without_metadata(self, client, chain5_train):
        # chain5_train is a hand-built graph: no builder op types to bind.
        with pytest.raises(ServeAPIError) as err:
            client.submit_execute(graph=chain5_train, strategy="checkpoint_all")
        assert err.value.status == 400
        assert "not executable" in err.value.message

    def test_execute_validates_payload(self, client):
        with pytest.raises(ServeAPIError) as err:
            client.submit_execute(preset="linear_mlp", strategy="nope")
        assert err.value.status == 404
        with pytest.raises(ServeAPIError) as err:
            client._request("POST", "/v1/execute",
                            {"preset": "linear_mlp", "strategy": "checkpoint_all",
                             "seed": "zero"})
        assert err.value.status == 400
        assert "seed" in err.value.message

    def test_execute_counts_in_metrics(self, client):
        handle = client.submit_execute(preset="linear_mlp",
                                       strategy="checkpoint_all")
        client.wait(handle["job_id"], timeout=120)
        metrics = client.metrics()
        assert metrics["service"]["executions"] >= 1

    def test_result_conflict_while_pending(self, chain5_train):
        # A queued/running job answers 409, not a broken payload.
        registry, gate, _ = counting_registry()
        with SolveServer(port=0, service=SolveService(registry=registry),
                         num_workers=1) as gated_srv:
            gated_client = ServeClient(gated_srv.url, timeout=30)
            handle = gated_client.submit_solve(graph=chain5_train,
                                               strategy="gated")
            assert gate.started.wait(30)
            with pytest.raises(ServeAPIError) as err:
                gated_client.result(handle["job_id"])
            assert err.value.status == 409
            gate.release.set()

    def test_cancel_endpoint(self, chain5_train, diamond_train):
        registry, gate, _ = counting_registry()
        with SolveServer(port=0, service=SolveService(registry=registry),
                         num_workers=1) as srv:
            client = ServeClient(srv.url, timeout=30)
            client.submit_solve(graph=chain5_train, strategy="gated")
            assert gate.started.wait(30)
            victim = client.submit_solve(graph=diamond_train,
                                         strategy="checkpoint_all")
            assert client.cancel(victim["job_id"])["state"] == "cancelled"
            with pytest.raises(ServeAPIError) as err:
                client.result(victim["job_id"])
            assert err.value.status == 409
            assert "cancelled" in err.value.message
            gate.release.set()

    def test_failed_job_surfaces_error(self, chain5_train):
        with SolveServer(port=0,
                         service=SolveService(registry=failing_registry(),
                                              cache=None),
                         num_workers=1) as srv:
            client = ServeClient(srv.url, timeout=30)
            handle = client.submit_solve(graph=chain5_train, strategy="explode")
            status = client.wait(handle["job_id"], timeout=30)
            assert status["state"] == "failed"
            assert "synthetic solver crash" in status["error"]

    def test_error_statuses(self, client):
        with pytest.raises(ServeAPIError) as err:
            client.job("feedcafe0000")
        assert err.value.status == 404
        with pytest.raises(ServeAPIError) as err:
            client.submit_solve(preset="not-a-preset", strategy="checkpoint_all")
        assert err.value.status == 404
        with pytest.raises(ServeAPIError) as err:
            client.submit_solve(preset="resnet_tiny", strategy="checkpoint_all",
                                options={"warp_speed": True})
        assert err.value.status == 400
        with pytest.raises(ServeAPIError) as err:
            client.submit_solve(preset="resnet_tiny", strategy="checkpoint_all",
                                options={"checkpoints": 5})  # not iterable
        assert err.value.status == 400
        with pytest.raises(ServeAPIError) as err:
            client._request("GET", "/v1/nope")
        assert err.value.status == 404

    def test_keepalive_connection_survives_error_with_body(self, server):
        # An errored POST must still drain its body, or the next request on
        # the same HTTP/1.1 connection would parse leftover bytes.
        import http.client
        import json as json_mod
        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            body = json_mod.dumps({"pad": "x" * 4096})
            conn.request("POST", "/v1/nope", body=body,
                         headers={"Content-Type": "application/json"})
            assert conn.getresponse().read() and True  # 404, body consumed
            conn.request("GET", "/v1/healthz")
            response = conn.getresponse()
            assert response.status == 200
            assert json_mod.loads(response.read())["status"] == "ok"
        finally:
            conn.close()

    def test_strategies_and_presets_endpoints(self, client):
        strategies = {e["key"] for e in client.strategies()}
        assert {"checkpoint_all", "checkmate_ilp", "checkmate_approx"} <= strategies
        presets = client.presets()
        assert {p["key"] for p in presets["presets"]} >= {"unet", "vgg16"}

    def test_jobs_listing_filter(self, client, chain5_train):
        handle = client.submit_solve(graph=chain5_train, strategy="checkpoint_all")
        client.wait(handle["job_id"], timeout=30)
        assert any(j["id"] == handle["job_id"] for j in client.jobs("done"))
        assert client.jobs("queued") == []
        with pytest.raises(ServeAPIError):
            client.jobs("levitating")


class TestParetoApi:
    """The bisection frontier endpoint plus the warm-start observability it
    feeds: ``/v1/pareto`` round trip, and the ``/v1/metrics`` warm counters
    moving when a descending-budget sweep actually reuses incumbents."""

    def test_pareto_job_round_trip(self, client, chain5_train):
        handle = client.submit_pareto(graph=chain5_train,
                                      strategy="checkmate_ilp")
        status = client.wait(handle["job_id"], timeout=60)
        assert status["state"] == "done"
        front = client.result(handle["job_id"])["front"]
        assert front["strategy"] == "checkmate_ilp"
        assert front["num_points"] == len(front["points"]) >= 2
        assert front["solver_calls"] >= 1
        budgets = [p["budget"] for p in front["points"]]
        assert budgets == sorted(budgets)
        metrics = client.metrics()
        assert metrics["pareto_latency"]["count"] == 1
        # Whole-frontier traces must not pollute the per-solve quantiles.
        assert metrics["solve_latency"]["count"] == 0

    def test_pareto_deduplicates_identical_submissions(self, client, chain5_train):
        first = client.submit_pareto(graph=chain5_train, strategy="checkmate_ilp")
        second = client.submit_pareto(graph=chain5_train, strategy="checkmate_ilp")
        client.wait(first["job_id"], timeout=60)
        client.wait(second["job_id"], timeout=60)
        assert (client.result(first["job_id"])["front"]
                == client.result(second["job_id"])["front"])

    def test_pareto_validates_payload(self, client, chain5_train):
        with pytest.raises(ServeAPIError) as err:
            client.submit_pareto(graph=chain5_train, strategy="levitating")
        assert err.value.status in (400, 404)
        with pytest.raises(ServeAPIError) as err:
            client.submit_pareto(graph=chain5_train, strategy="checkmate_ilp",
                                 resolution=-4.0)
        assert err.value.status == 400
        with pytest.raises(ServeAPIError) as err:
            client.submit_pareto(graph=chain5_train, strategy="min_r")
        assert err.value.status == 400  # no budget knob to trace

    def test_warm_counters_move_in_metrics(self, client, chain5_train):
        ample = int(chain5_train.constant_overhead
                    + chain5_train.total_activation_memory() * 2 + 10)
        handle = client.submit_sweep(
            graph=chain5_train,
            cells=[("checkmate_ilp", ample + 64), ("checkmate_ilp", ample)])
        assert client.wait(handle["job_id"], timeout=60)["state"] == "done"
        service = client.metrics()["service"]
        for key in ("warm_seeds", "incumbent_prunes", "bound_skips",
                    "infeasible_shortcuts"):
            assert key in service
        assert service["warm_seeds"] >= 1
        assert service["incumbent_prunes"] + service["bound_skips"] >= 1

    def test_strategies_advertise_warm_capability(self, client):
        by_key = {e["key"]: e for e in client.strategies()}
        assert by_key["checkmate_ilp"]["warm_start_capable"] is True
        assert by_key["checkmate_bnb"]["warm_start_capable"] is True
        assert by_key["checkpoint_all"]["warm_start_capable"] is False


class TestSingleFlightE2E:
    """Acceptance: 8 concurrent duplicate U-Net submissions -> 1 solver call."""

    def test_concurrent_duplicates_share_one_solve(self):
        registry, gate, counter = counting_registry("checkmate_approx")
        service = SolveService(registry=registry, cache=PlanCache())
        with SolveServer(port=0, service=service, num_workers=1) as srv:
            client = ServeClient(srv.url, timeout=60)
            # Occupy the single worker so all 8 duplicates pile up queued.
            client.submit_solve(preset="resnet_tiny", strategy="gated")
            assert gate.started.wait(30)

            budget = 2 * 2**30
            handles, errors = [], []

            def submit():
                try:
                    handles.append(client.submit_solve(
                        preset="unet", strategy="checkmate_approx",
                        budget=budget, options={"seed": 0}))
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [threading.Thread(target=submit) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert len(handles) == 8
            # All 8 submissions landed while the flight was queued: exactly
            # one leader, seven followers.
            assert sum(h["deduplicated"] for h in handles) == 7

            gate.release.set()
            payloads = []
            for h in handles:
                status = client.wait(h["job_id"], timeout=120)
                assert status["state"] == "done"
                payloads.append(client.result(h["job_id"])["result"])

            # Exactly one solver invocation for all 8 jobs...
            assert counter["calls"] == 1
            # ...and byte-identical results.
            assert all(p == payloads[0] for p in payloads[1:])
            assert payloads[0]["feasible"] is True

            # A ninth, *sequential* identical submission is served by the
            # plan cache: still no extra solver call, and /v1/metrics shows
            # the cache hit.
            ninth = client.submit_solve(preset="unet",
                                        strategy="checkmate_approx",
                                        budget=budget, options={"seed": 0})
            assert client.wait(ninth["job_id"], timeout=60)["state"] == "done"
            assert counter["calls"] == 1

            metrics = client.metrics()
            assert metrics["jobs"]["deduplicated"] == 7
            cache = metrics["service"]["cache"]
            assert cache["hits"] >= 1
            assert cache["hit_rate"] > 0
            assert metrics["solve_latency"]["p50_s"] is not None
            assert metrics["solve_latency"]["p95_s"] is not None


class TestLatencyWindow:
    def test_quantiles(self):
        from repro.server import LatencyWindow
        window = LatencyWindow(maxlen=100)
        assert window.quantile(0.5) is None
        for v in range(1, 101):
            window.record(v / 100.0)
        snap = window.snapshot()
        assert snap["count"] == 100
        assert snap["p50_s"] == pytest.approx(0.5, abs=0.02)
        assert snap["p95_s"] == pytest.approx(0.95, abs=0.02)

    def test_window_bounded(self):
        from repro.server import LatencyWindow
        window = LatencyWindow(maxlen=10)
        for v in range(1000):
            window.record(float(v))
        snap = window.snapshot()
        assert snap["count"] == 1000
        assert snap["window"] == 10
        assert snap["p50_s"] >= 990  # only recent samples remain
