"""Tests for structural graph algorithms (ancestors, articulation points, generators)."""

import pytest

from repro.core import (
    DFGraph,
    NodeInfo,
    ancestors,
    articulation_points,
    descendants,
    linear_graph,
    linearized_chain_edges,
    random_layered_dag,
    transitive_closure,
)
from repro.core.graph_utils import is_topological_order


class TestAncestry:
    def test_ancestors_of_chain(self):
        g = linear_graph(5)
        assert ancestors(g, 4) == {0, 1, 2, 3}
        assert ancestors(g, 0) == set()

    def test_descendants_of_chain(self):
        g = linear_graph(5)
        assert descendants(g, 0) == {1, 2, 3, 4}
        assert descendants(g, 4) == set()

    def test_ancestors_with_skip(self, diamond_graph):
        assert ancestors(diamond_graph, 3) == {0, 1, 2}
        assert ancestors(diamond_graph, 1) == {0}

    def test_transitive_closure_matches_ancestors(self, diamond_graph):
        closure = transitive_closure(diamond_graph)
        for node in range(diamond_graph.size):
            assert closure[node] == frozenset(ancestors(diamond_graph, node))

    def test_is_topological_order(self, diamond_graph):
        assert is_topological_order(diamond_graph)


class TestArticulationPoints:
    def test_chain_interior_nodes_are_articulation_points(self):
        g = linear_graph(6)
        assert articulation_points(g) == [1, 2, 3, 4]

    def test_skip_connection_removes_aps(self, diamond_graph):
        aps = articulation_points(diamond_graph)
        # Nodes 1 and 2 sit inside the residual block and are bypassed by the
        # 0 -> 3 skip edge, so they cannot be articulation points.
        assert 1 not in aps and 2 not in aps
        assert 3 in aps  # the join node disconnects the tail

    def test_restrict_to_subset(self, diamond_graph):
        aps = articulation_points(diamond_graph, restrict_to=[0, 1, 2, 3])
        assert 4 not in aps

    def test_two_node_graph_has_no_aps(self):
        g = linear_graph(2)
        assert articulation_points(g) == []


class TestGenerators:
    def test_linear_graph_structure(self):
        g = linear_graph(4, cost=2.0, memory=3)
        assert g.is_linear_chain()
        assert g.total_cost() == 8.0
        assert g.total_activation_memory() == 12

    def test_linear_graph_per_node_values(self):
        g = linear_graph(3, cost=[1, 2, 3], memory=[4, 5, 6])
        assert g.cost(2) == 3 and g.memory(0) == 4

    def test_linear_graph_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            linear_graph(3, cost=[1, 2])

    def test_linear_graph_rejects_empty(self):
        with pytest.raises(ValueError):
            linear_graph(0)

    def test_linearized_chain_edges(self, diamond_graph):
        assert linearized_chain_edges(diamond_graph) == [(0, 1), (1, 2), (2, 3), (3, 4)]

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_random_layered_dag_is_valid(self, seed):
        g = random_layered_dag(n_layers=5, width=3, seed=seed)
        assert is_topological_order(g)
        assert g.sinks() == [g.terminal_node]
        # connected: every non-source node has a parent
        assert all(g.predecessors(j) for j in range(1, g.size))

    def test_random_layered_dag_deterministic(self):
        a = random_layered_dag(4, 2, seed=3)
        b = random_layered_dag(4, 2, seed=3)
        assert a.size == b.size
        assert list(a.edges()) == list(b.edges())
        assert list(a.cost_vector) == list(b.cost_vector)
